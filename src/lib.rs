//! # PIXEL — Photonic Neural Network Accelerator (reproduction)
//!
//! This meta-crate re-exports the four crates that make up the
//! reproduction of *PIXEL: Photonic Neural Network Accelerator*
//! (Shiflett, Wright, Karanth, Louri — HPCA 2020):
//!
//! * [`photonics`] — silicon-photonic device substrate (MRRs, MZIs,
//!   waveguides, lasers, detectors) with bit-true pulse-train simulation.
//! * [`electronics`] — 22 nm logic substrate (mini-DSENT technology model,
//!   CLA/shifter/Stripes/activation implementations).
//! * [`dnn`] — CNN substrate (layer zoo, op-count analysis, quantized
//!   inference).
//! * [`core`] — the PIXEL accelerator itself: EE/OE/OO OMAC units, tile
//!   fabric, and the energy/area/latency/EDP models behind every figure
//!   and table in the paper.
//! * [`obs`] — std-only observability: span timers, counters, JSONL
//!   tracing, and profile tables threaded through the crates above.
//! * [`serve`] — discrete-event inference-serving simulator (arrivals,
//!   admission queue, batching, tail latency) over the design models.
//! * [`fleet`] — sharded multi-fabric serving: pluggable request
//!   routing, per-tenant SLOs, and an energy-aware autoscaler over N
//!   serve machines.
//!
//! # Quickstart
//!
//! ```
//! use pixel::core::config::{AcceleratorConfig, Design};
//! use pixel::core::accelerator::Accelerator;
//! use pixel::dnn::zoo;
//!
//! let config = AcceleratorConfig::new(Design::Oo, 4, 16);
//! let accel = Accelerator::new(config);
//! let report = accel.evaluate(&zoo::lenet());
//! assert!(report.total_energy().value() > 0.0);
//! ```

pub use pixel_core as core;
pub use pixel_dnn as dnn;
pub use pixel_electronics as electronics;
pub use pixel_fleet as fleet;
pub use pixel_obs as obs;
pub use pixel_photonics as photonics;
pub use pixel_serve as serve;
pub use pixel_units as units;
