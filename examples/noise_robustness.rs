//! Failure injection: how much receiver noise can the all-optical design
//! absorb?
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```
//!
//! The OO accumulator produces multi-level amplitude signals, so its
//! comparator-ladder o/e converter is the analog weak point. This example
//! Monte-Carlos the bit-true OO multiply with Gaussian amplitude noise and
//! compares against the analytic comparator error model.

use pixel::core::robustness::noise_sweep;

fn main() {
    let bits = 8;
    let trials = 5_000;
    println!(
        "OO optical multiply under amplitude noise ({bits}-bit operands, {trials} trials/point)\n"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>20}",
        "sigma", "correct", "silent err", "detected", "analytic slot err"
    );
    for p in noise_sweep(
        bits,
        &[0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        trials,
        2020,
    ) {
        println!(
            "{:>6.2} {:>10.4} {:>12.4} {:>10.4} {:>20.3e}",
            p.sigma, p.correct_rate, p.silent_error_rate, p.detected_rate, p.analytic_slot_error
        );
    }
    println!(
        "\nReading: below σ ≈ 0.15 pulse units the comparator ladder absorbs\n\
         essentially all noise; past σ ≈ 0.3 silent errors dominate, which is\n\
         why the OO design's laser budget (Table II's 1.52× premium) buys\n\
         amplitude margin rather than speed."
    );
}
