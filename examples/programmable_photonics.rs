//! Programmable photonics: the related-work comparator (§VI-B).
//!
//! ```text
//! cargo run --example programmable_photonics
//! ```
//!
//! PIXEL's §VI-B contrasts it with coherent MZI-mesh processors (Miller's
//! universal couplers, Shen et al.'s nanophotonic circuits). This example
//! runs that alternative: a random weight matrix is SVD-factored onto two
//! Reck meshes plus attenuators, applied optically, and compared against
//! both the exact product and PIXEL's OO integer engine — making the
//! analog-vs-bit-exact trade concrete.

use pixel::core::coherent::CoherentEngine;
use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::omac::engine_for;
use pixel::photonics::complex::Complex;
use pixel::photonics::mesh::{BeamCoupler, MziMesh, Unitary};
use pixel::units::rng::SplitMix64;

fn main() {
    let mut rng = SplitMix64::seed_from_u64(2020);

    // 1. Miller's self-aligning beam coupler: the OO accumulate primitive.
    let target: Vec<Complex> = (0..4)
        .map(|_| Complex::new(rng.range_f64(0.1, 1.0), 0.0))
        .collect();
    let coupler = BeamCoupler::configure_for(&target);
    println!(
        "Miller beam coupler: {} MZIs funnel a 4-mode field with efficiency {:.9}",
        coupler.mzi_count(),
        coupler.efficiency(&target)
    );

    // 2. A Reck mesh implementing the 8-mode DFT.
    let dft = Unitary::dft(8);
    let mesh = MziMesh::synthesize(&dft);
    println!(
        "Reck mesh: {} MZIs realize the 8-mode DFT to {:.1e} max error",
        mesh.mzi_count(),
        mesh.to_unitary().distance(&dft)
    );

    // 3. Coherent matrix engine vs PIXEL OO on the same weights.
    let n = 6;
    let weights: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect())
        .collect();
    let engine = CoherentEngine::synthesize(&weights);
    let x: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let optical = engine.apply(&x);
    let exact: Vec<f64> = weights
        .iter()
        .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
        .collect();
    let worst = optical
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nCoherent engine: {} MZIs apply a {n}×{n} real matrix, max |error| {worst:.2e}",
        engine.mzi_count()
    );

    // PIXEL OO computes the same shape bit-exactly on quantized data.
    let oo = engine_for(&AcceleratorConfig::new(Design::Oo, 4, 8));
    let qx: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
    let qw: Vec<u64> = (0..n as u64).map(|i| 3 * i + 1).collect();
    let product = oo.inner_product(&qx, &qw);
    println!(
        "PIXEL OO:        bit-exact integer row product {product} (no analog error), \
         but one wavelength+chain per lane instead of a full mesh"
    );

    println!(
        "\nTrade summary: the mesh applies any matrix in one optical pass but\n\
         inherits analog precision and n(n−1) MZIs; PIXEL stays bit-exact with\n\
         bit-serial time and per-lane hardware — the distinction §VI-B draws."
    );
}
