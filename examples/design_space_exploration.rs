//! Design-space exploration: find the lanes × bits/lane sweet spot.
//!
//! ```text
//! cargo run --example design_space_exploration [network]
//! ```
//!
//! Sweeps lanes ∈ {2,4,8,16} × bits/lane ∈ {4,8,16,32} for every design
//! and reports the minimum-EDP configuration per design, reproducing the
//! paper's §V design-space methodology on any of the six networks
//! (default: GoogLeNet).

use pixel::core::accelerator::Accelerator;
use pixel::core::config::{AcceleratorConfig, Design};
use pixel::dnn::network::Network;
use pixel::dnn::zoo;

fn pick_network(name: &str) -> Option<Network> {
    zoo::all_networks()
        .into_iter()
        .find(|n| n.name().eq_ignore_ascii_case(name))
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "GoogLeNet".into());
    let Some(network) = pick_network(&name) else {
        eprintln!("unknown network {name:?}; try one of:");
        for n in zoo::all_networks() {
            eprintln!("  {}", n.name());
        }
        std::process::exit(1);
    };

    println!("Design-space exploration on {}\n", network.name());
    println!(
        "{:<4} {:>6} {:>6} {:>14} {:>14} {:>16}",
        "des", "lanes", "bits", "energy [mJ]", "latency [ms]", "EDP [mJ·ms]"
    );

    for design in Design::ALL {
        let mut best: Option<(usize, u32, f64, f64, f64)> = None;
        for lanes in [2usize, 4, 8, 16] {
            for bits in [4u32, 8, 16, 32] {
                let report = Accelerator::new(AcceleratorConfig::new(design, lanes, bits))
                    .evaluate(&network);
                let energy = report.total_energy().as_millijoules();
                let latency = report.total_latency().as_millis();
                let edp = report.edp().value() * 1e6;
                if best.is_none_or(|(_, _, _, _, e)| edp < e) {
                    best = Some((lanes, bits, energy, latency, edp));
                }
            }
        }
        let (lanes, bits, energy, latency, edp) = best.expect("non-empty sweep");
        println!(
            "{:<4} {lanes:>6} {bits:>6} {energy:>14.1} {latency:>14.2} {edp:>16.2}",
            design.label(),
        );
    }

    println!("\n(Each row is the minimum-EDP point of that design's 16-point sweep.)");
}
