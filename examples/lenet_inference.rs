//! Bit-true CNN inference through the optical hardware simulation.
//!
//! ```text
//! cargo run --release --example lenet_inference
//! ```
//!
//! Runs a quantized LeNet-5 forward pass three times — once with plain
//! integer arithmetic and once each through the bit-true OE and OO OMAC
//! simulations (MRR pulse-train ANDs, MZI-chain accumulation, comparator
//! o/e conversion) — and verifies the outputs are identical element for
//! element. This is the functional verification the paper's analytic
//! evaluation takes on trust.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::omac::engine_for;
use pixel::dnn::inference::{forward, DirectMac, LayerWeights};
use pixel::dnn::layer::Shape;
use pixel::dnn::quant::Precision;
use pixel::dnn::tensor::Tensor;
use pixel::dnn::zoo;
use pixel::units::rng::SplitMix64;
use std::time::Instant;

fn main() {
    let network = zoo::lenet();
    let precision = Precision::new(4);

    // Random quantized weights and a random 32×32 "digit".
    let mut rng = SplitMix64::seed_from_u64(2020);
    let weights: Vec<LayerWeights> = network
        .layers()
        .iter()
        .map(|l| LayerWeights::generate(l, || rng.range_u64(0, precision.max_value())))
        .collect();
    let input = Tensor::from_fn(Shape::square(32, 1), |_, _, _| {
        rng.range_u64(0, precision.max_value())
    });

    println!(
        "LeNet-5 quantized inference ({}-bit operands)\n",
        precision.bits()
    );

    let t0 = Instant::now();
    let reference =
        forward(&network, &input, &weights, &DirectMac, precision).expect("shapes are consistent");
    println!(
        "direct integer engine      {:>8.2?}  scores {:?}",
        t0.elapsed(),
        reference.to_flat()
    );

    for design in [Design::Oe, Design::Oo] {
        let engine = engine_for(&AcceleratorConfig::new(design, 4, precision.bits()));
        let t = Instant::now();
        let out = forward(&network, &input, &weights, engine.as_ref(), precision)
            .expect("shapes are consistent");
        println!(
            "{:<26} {:>8.2?}  scores {:?}",
            engine.name(),
            t.elapsed(),
            out.to_flat()
        );
        assert_eq!(
            out,
            reference,
            "{} diverged from the integer reference",
            engine.name()
        );
    }

    println!("\nAll engines produced bit-identical class scores.");
}
