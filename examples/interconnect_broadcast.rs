//! The paper's §III-A worked example on the functional fabric.
//!
//! ```text
//! cargo run --example interconnect_broadcast
//! ```
//!
//! Recreates Fig. 2's 4-OMAC configuration: four tiles fire their input
//! neuron lanes on their own wavelength blocks of a shared MWSR
//! waveguide (λ₀–λ₁₅); each OMAC drops its band, ANDs against its
//! pre-loaded synapse lane, and accumulates. The printed partial sum for
//! filter 0 is the paper's worked value (42).

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::interconnect::{Dimension, TileCoord, XyFabric};
use pixel::core::tile::Tile;
use pixel::photonics::signal::PulseTrain;

fn main() {
    // Fig. 2(b): 4 OMACs × 4 lanes, 4 bits/lane.
    let fabric = XyFabric::new(1, 4, 4);
    let bits = 4usize;

    // §II-B inputs: INL₀(2,4,6,9), INL₁(0,1,3,4), INL₂(3,5,1,2), INL₃(8,2,8,6).
    // Cycle 1 fires element 0 of each lane: (2, 0, 3, 8).
    let fired = [2u64, 0, 3, 8];
    let per_tile: Vec<Vec<PulseTrain>> = fired
        .iter()
        .map(|&v| {
            // Each OMAC transmits one neuron on its first owned wavelength
            // this cycle (remaining lanes dark).
            let mut lanes = vec![PulseTrain::from_bits(v, bits)];
            lanes.extend((1..4).map(|_| PulseTrain::dark(bits)));
            lanes
        })
        .collect();

    println!("MWSR broadcast on the x-dimension waveguide:");
    let signal = fabric
        .broadcast_row(&per_tile)
        .expect("4 tiles fit the plan");
    for (id, train) in signal.iter() {
        if train.total_amplitude() > 0.0 {
            println!(
                "  {id}: bits {:04b} (post-loss power {:.2})",
                train.to_bits().unwrap_or(0),
                train.total_amplitude()
            );
        }
    }
    println!(
        "  one-way line latency: {:.1} ps\n",
        fabric.line_latency(Dimension::X).as_picos()
    );

    // Filter 0 lives on tile (0,0): synapse lane SL₀ element 0 of each
    // lane = (6, 1, 2, 3).
    for design in Design::ALL {
        let mut tile = Tile::new(AcceleratorConfig::new(design, 4, 4), 4);
        tile.load_weights(&[6, 1, 2, 3]);
        let partial = tile.fire(&fired);
        println!(
            "{} OMAC 0 partial sum: {partial} (paper: 42)",
            design.label()
        );
        assert_eq!(partial, 42);
    }

    // Wavelength ownership sanity: Fig. 2(b)'s band plan.
    let band = fabric
        .tile_wavelengths(TileCoord { row: 0, col: 3 }, Dimension::X)
        .expect("tile 3 on fabric");
    println!(
        "\nOMAC 3 transmits on {} – {}",
        band[0],
        band[band.len() - 1]
    );
}
