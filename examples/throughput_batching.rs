//! Batched-inference throughput and fabric partitioning.
//!
//! ```text
//! cargo run --example throughput_batching
//! ```
//!
//! Two serving scenarios beyond the paper's single-image latency numbers:
//! (1) batch pipelining — throughput climbs from the single-image rate to
//! the bottleneck-layer bound; (2) fabric partitioning (§III-C(iii)) — a
//! big and a small network share the tile grid's rows concurrently.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::partition::{evaluate_partition, proportional_rows};
use pixel::core::throughput::batched;
use pixel::dnn::zoo;

fn main() {
    let config = AcceleratorConfig::new(Design::Oo, 4, 16);
    let net = zoo::zfnet();

    println!("Batched ZFNet inference on the OO design (4 lanes, 16 bits/lane)\n");
    println!(
        "{:>6} {:>16} {:>18}",
        "batch", "batch time [ms]", "inferences/sec"
    );
    for batch in [1usize, 2, 8, 32, 128, 512] {
        let t = batched(&config, &net, batch);
        println!(
            "{batch:>6} {:>16.1} {:>18.2}",
            t.batch_latency.as_millis(),
            t.inferences_per_second
        );
    }

    println!("\nRow partitioning: ZFNet + LeNet sharing a 4-row fabric (§III-C(iii))\n");
    let big = zoo::zfnet();
    let small = zoo::lenet();
    let rows = proportional_rows(4, &[&big, &small]);
    let report = evaluate_partition(&config, 4, &[(&big, rows[0]), (&small, rows[1])]);
    for p in &report.placements {
        println!(
            "  {:<10} {} rows  → {:>8.2} ms",
            p.network,
            p.rows,
            p.latency.as_millis()
        );
    }
    println!(
        "  makespan {:.2} ms vs sequential {:.2} ms (speedup ×{:.2});\n  the small job returns after {:.2} ms instead of waiting out the batch.",
        report.makespan.as_millis(),
        report.sequential.as_millis(),
        report.speedup(),
        report
            .placements
            .iter()
            .find(|p| p.network == "LeNet")
            .map(|p| p.latency.as_millis())
            .unwrap_or_default(),
    );
}
