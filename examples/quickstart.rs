//! Quickstart: evaluate a CNN on all three PIXEL designs.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds an accelerator per design at the paper's headline configuration
//! (4 lanes, 16 bits/lane), runs AlexNet inference through the analytic
//! models, and prints energy, latency and EDP side by side.

use pixel::core::accelerator::Accelerator;
use pixel::core::config::{AcceleratorConfig, Design};
use pixel::dnn::zoo;

fn main() {
    let network = zoo::alexnet();
    println!(
        "PIXEL quickstart — {} inference, 4 lanes, 16 bits/lane\n",
        network.name()
    );
    println!(
        "{:<4} {:>14} {:>14} {:>16}",
        "des", "energy [mJ]", "latency [ms]", "EDP [mJ·ms]"
    );

    let baseline = Accelerator::new(AcceleratorConfig::new(Design::Ee, 4, 16))
        .evaluate(&network)
        .edp();

    for design in Design::ALL {
        let config = AcceleratorConfig::new(design, 4, 16);
        let report = Accelerator::new(config).evaluate(&network);
        let edp = report.edp();
        println!(
            "{:<4} {:>14.1} {:>14.2} {:>16.2}   ({:+.1}% EDP vs EE)",
            design.label(),
            report.total_energy().as_millijoules(),
            report.total_latency().as_millis(),
            edp.value() * 1e6, // J·s → mJ·ms
            -edp.improvement_over(baseline) * 100.0,
        );
    }

    println!("\nPer-component energy of the OO design:");
    let report = Accelerator::new(AcceleratorConfig::new(Design::Oo, 4, 16)).evaluate(&network);
    let breakdown = report.energy_breakdown();
    for (label, value) in pixel::core::EnergyBreakdown::COMPONENT_LABELS
        .iter()
        .zip(breakdown.components())
    {
        println!("  {label:<6} {:>10.1} mJ", value.as_millijoules());
    }
}
