//! End-to-end classification through the optical hardware simulation.
//!
//! ```text
//! cargo run --release --example glyph_classification
//! ```
//!
//! Builds the synthetic glyph dataset, classifies it with a matched-filter
//! linear layer executed three ways — direct integers, the bit-true OE
//! MAC, the bit-true OO MAC — and sweeps the operand precision to show
//! accuracy is preserved under quantization and unchanged by which
//! hardware computes the inner products (they are bit-identical).

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::omac::engine_for;
use pixel::dnn::dataset::{template_weights, GlyphDataset};
use pixel::dnn::inference::{DirectMac, MacEngine};
use pixel::dnn::metrics::{accuracy, argmax};
use pixel::dnn::quant::Precision;

fn classify(engine: &dyn MacEngine, dataset: &GlyphDataset, per_class: usize) -> f64 {
    let templates = template_weights(dataset);
    let pairs: Vec<(usize, usize)> = dataset
        .batch(per_class, 99)
        .into_iter()
        .map(|ex| {
            let flat = ex.image.to_flat();
            let scores: Vec<u64> = templates
                .iter()
                .map(|t| {
                    let mass: u64 = t.iter().sum::<u64>().max(1);
                    #[allow(clippy::cast_precision_loss)]
                    let normalized = engine.inner_product(&flat, t) as f64 / (mass as f64).sqrt();
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        (normalized * 1000.0) as u64
                    }
                })
                .collect();
            (argmax(&scores), ex.label)
        })
        .collect();
    accuracy(&pairs)
}

fn main() {
    println!("Glyph classification through each MAC implementation\n");
    println!("{:>5} {:>44} {:>10}", "bits", "engine", "accuracy");
    for bits in [2u32, 4, 8] {
        let dataset = GlyphDataset::new(16, 6, Precision::new(bits));
        let direct = classify(&DirectMac, &dataset, 10);
        println!(
            "{bits:>5} {:>44} {:>9.1}%",
            "direct integer",
            direct * 100.0
        );
        for design in [Design::Oe, Design::Oo] {
            let engine = engine_for(&AcceleratorConfig::new(design, 4, bits.max(4)));
            let acc = classify(engine.as_ref(), &dataset, 10);
            println!("{bits:>5} {:>44} {:>9.1}%", engine.name(), acc * 100.0);
            assert!(
                (acc - direct).abs() < 1e-12,
                "optical engines are bit-identical to the integer path"
            );
        }
    }
    println!("\nAccuracy is engine-independent (bit-true equivalence) and robust to precision.");
}
