#!/usr/bin/env bash
# Offline CI: build, test, lint, and a smoke run of the reproduce binary.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt"
cargo fmt --all --check

echo "== build"
cargo build --release --workspace

echo "== test"
cargo test -q --workspace

echo "== clippy"
cargo clippy --all-targets --workspace -- -D warnings

echo "== doc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== reproduce smoke"
out=$(./target/release/reproduce table1 --profile)
echo "$out" | grep -q "== profile" || { echo "profile table missing" >&2; exit 1; }
echo "$out" | grep -q "dnn/analysis/layers" || { echo "expected counter missing" >&2; exit 1; }
./target/release/reproduce --list > /dev/null
serve_out=$(./target/release/reproduce serve --jobs 2)
echo "$serve_out" | grep -q "saturation knee" || { echo "serve knee line missing" >&2; exit 1; }
if ./target/release/reproduce no-such-artifact 2> /dev/null; then
  echo "unknown artifact should fail" >&2
  exit 1
fi

echo "== ok"
