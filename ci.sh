#!/usr/bin/env bash
# Offline CI: build, test, lint, and a smoke run of the reproduce binary.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt"
cargo fmt --all --check

echo "== build"
cargo build --release --workspace

echo "== test"
cargo test -q --workspace

echo "== lint"
# Deny mode: the checked-in baseline must stay empty and the tree clean,
# including under the stale-suppression check (X002) — and the analysis
# must be jobs-invariant.
./target/release/reproduce lint --deny --unused-suppressions
a=$(./target/release/reproduce lint --format json --jobs 1)
b=$(./target/release/reproduce lint --format json --jobs 4)
[ "$a" = "$b" ] || { echo "lint report differs across --jobs" >&2; exit 1; }

# Machine-readable lint report, archived as a build artifact.
./target/release/reproduce lint --format json > target/lint-report.json
grep -q '"version":1' target/lint-report.json \
  || { echo "lint-report.json malformed" >&2; exit 1; }

# Negative smoke: seed one violation of each rule family into a scratch
# file and assert the analyzer refuses it. The file is not referenced by
# any module tree, so cargo never compiles it; the trap guarantees
# cleanup even when an assertion fails.
smoke=crates/core/src/lint_smoke_tmp.rs
trap 'rm -f "$smoke"' EXIT
cat > "$smoke" <<'EOF'
pub fn smoke() {
    let _ = std::time::Instant::now();
    let design: Option<u32> = None;
    match design { _ => {} }
    let _ = design.unwrap();
}
pub fn smoke_energy(raw_energy: f64) -> f64 {
    raw_energy
}
pub fn smoke_metrics() {
    pixel_obs::add("Bad/Name", 1);
}
EOF
if ./target/release/reproduce lint --deny > /tmp/lint_smoke_out 2>&1; then
  echo "lint failed to flag the seeded violations" >&2
  exit 1
fi
for rule in D001 A001 P001 U001 O001; do
  grep -q "$rule" /tmp/lint_smoke_out || { echo "lint missed $rule" >&2; exit 1; }
done
rm -f "$smoke"
trap - EXIT

# Structural negative smoke: one violation per structural rule family —
# a leaf-crate dependency (G003), a panic path from a bin entry (P101),
# an unsanctioned thread spawn (C001), and a bogus DESIGN.md catalogue
# entry (S001). Deny mode must flag every one. None of the scratch
# files is referenced by a module tree, and DESIGN.md is restored from
# the backup whichever way the step exits.
g_smoke=crates/units/src/lint_smoke_tmp.rs
p_smoke=crates/bench/src/bin/lint_smoke_tmp.rs
c_smoke=crates/core/src/lint_smoke_tmp.rs
cp DESIGN.md /tmp/design_md_backup
trap 'rm -f "$g_smoke" "$p_smoke" "$c_smoke"; if [ -f /tmp/design_md_backup ]; then mv /tmp/design_md_backup DESIGN.md; fi' EXIT
echo 'use pixel_obs::span;' > "$g_smoke"
cat > "$p_smoke" <<'EOF'
fn main() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
}
EOF
cat > "$c_smoke" <<'EOF'
pub fn smoke() {
    std::thread::spawn(|| {});
}
EOF
echo 'And the catalogue also documents the imaginary rule S999.' >> DESIGN.md
if ./target/release/reproduce lint --deny > /tmp/lint_struct_smoke 2>&1; then
  echo "lint failed to flag the seeded structural violations" >&2
  exit 1
fi
for rule in G003 P101 C001 S001; do
  grep -q "$rule" /tmp/lint_struct_smoke || { echo "lint missed $rule" >&2; exit 1; }
done
rm -f "$g_smoke" "$p_smoke" "$c_smoke"
mv /tmp/design_md_backup DESIGN.md
trap - EXIT

# Serving policy code must never read wall-clock time directly — the
# vetted clock adapter (crates/serve/src/clock.rs, D001-exempt) is the
# only sanctioned boundary. Seed an unvetted read into the policy tree
# and assert D001 refuses it.
smoke=crates/serve/src/policy_clock_smoke_tmp.rs
trap 'rm -f "$smoke"' EXIT
cat > "$smoke" <<'EOF'
pub fn sneaky_policy_deadline() -> std::time::Instant {
    std::time::Instant::now()
}
EOF
if ./target/release/reproduce lint --deny > /tmp/lint_serve_smoke 2>&1; then
  echo "lint failed to flag a wall-clock read in serve policy code" >&2
  exit 1
fi
grep -q "D001" /tmp/lint_serve_smoke \
  || { echo "lint missed D001 in serve policy code" >&2; exit 1; }
rm -f "$smoke"
trap - EXIT

echo "== clippy"
cargo clippy --all-targets --workspace -- -D warnings

echo "== doc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== reproduce smoke"
out=$(./target/release/reproduce table1 --profile)
echo "$out" | grep -q "== profile" || { echo "profile table missing" >&2; exit 1; }
echo "$out" | grep -q "dnn.analysis.layers" || { echo "expected counter missing" >&2; exit 1; }
./target/release/reproduce --list > /dev/null
serve_out=$(./target/release/reproduce serve --jobs 2)
echo "$serve_out" | grep -q "saturation knee" || { echo "serve knee line missing" >&2; exit 1; }
if ./target/release/reproduce no-such-artifact 2> /dev/null; then
  echo "unknown artifact should fail" >&2
  exit 1
fi

echo "== flightrec smoke"
# The flight-recorder artifact with the machine-readable metrics stream:
# every emitted line must be flat JSON with a schema tag, validated line
# by line by the same parser the trace sink uses (checkjsonl exits
# non-zero on the first malformed line, failing the build).
# Captured, not piped: grep -q closing a pipe early would SIGPIPE the
# binary before the post-run --metrics write.
fr_out=$(./target/release/reproduce flightrec --quick --metrics /tmp/flightrec_metrics.jsonl)
echo "$fr_out" | grep -q "latency decomposition" || { echo "flightrec decomposition missing" >&2; exit 1; }
./target/release/reproduce checkjsonl /tmp/flightrec_metrics.jsonl
grep -q '"schema":"pixel.serve.event"' /tmp/flightrec_metrics.jsonl \
  || { echo "flightrec metrics missing event lines" >&2; exit 1; }
grep -q '"schema":"pixel.serve.window"' /tmp/flightrec_metrics.jsonl \
  || { echo "flightrec metrics missing window lines" >&2; exit 1; }
rm -f /tmp/flightrec_metrics.jsonl

echo "== pixel-served smoke"
# Start the live daemon on a free loopback port, run a short
# closed-loop burst through the load generator, and validate the
# emitted pixel.serve.* JSONL with the same checker as every other
# metrics artifact.
./target/release/pixel-served serve --rate 50 --requests 60 --seed 7 --scale 0.02 \
  --metrics /tmp/served_metrics.jsonl > /tmp/served_stdout.txt &
served_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" /tmp/served_stdout.txt 2> /dev/null && break
  sleep 0.1
done
served_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' /tmp/served_stdout.txt)
if [ -z "$served_port" ]; then
  echo "pixel-served did not report a listening port" >&2
  kill "$served_pid" 2> /dev/null || true
  exit 1
fi
load_out=$(./target/release/pixel-served load --port "$served_port" \
  --rate 50 --requests 60 --seed 7)
echo "$load_out" | grep -q "daemon stats" \
  || { echo "loadgen missing the daemon stats frame" >&2; exit 1; }
wait "$served_pid"
./target/release/reproduce checkjsonl /tmp/served_metrics.jsonl
grep -q '"schema":"pixel.serve.stats"' /tmp/served_metrics.jsonl \
  || { echo "live metrics missing the stats line" >&2; exit 1; }
grep -q '"schema":"pixel.serve.window"' /tmp/served_metrics.jsonl \
  || { echo "live metrics missing window lines" >&2; exit 1; }
grep -q '"mode":"live"' /tmp/served_metrics.jsonl \
  || { echo "live metrics missing the live-mode tag" >&2; exit 1; }
rm -f /tmp/served_metrics.jsonl /tmp/served_stdout.txt

echo "== oracle"
# The live daemon must match the simulator's predicted saturation knee
# and queue-wait/service split within the tolerances documented in
# DESIGN.md section 12 (oracle exits non-zero on any breach).
oracle_out=$(./target/release/reproduce oracle --quick)
echo "$oracle_out" | grep -q "^oracle: PASS" \
  || { echo "oracle did not pass:"; echo "$oracle_out"; exit 1; } >&2

echo "== fleet"
# The sharded-fleet artifact: quick mode at two worker counts must be
# byte-identical (the router-determinism guarantee the snapshot pins),
# carry the batch-merge comparison line, and emit a schema-tagged
# metrics stream.
fleet_a=$(./target/release/reproduce fleet --quick --jobs 1 --metrics /tmp/fleet_metrics.jsonl)
fleet_b=$(./target/release/reproduce fleet --quick --jobs 2)
[ "$fleet_a" = "$fleet_b" ] || { echo "fleet artifact differs across --jobs" >&2; exit 1; }
echo "$fleet_a" | grep -q "merge@" || { echo "fleet merge line missing" >&2; exit 1; }
echo "$fleet_a" | grep -q "savings@" || { echo "fleet savings line missing" >&2; exit 1; }
./target/release/reproduce checkjsonl /tmp/fleet_metrics.jsonl
grep -q '"schema":"pixel.fleet.point"' /tmp/fleet_metrics.jsonl \
  || { echo "fleet metrics missing point lines" >&2; exit 1; }

echo "== bench"
# The perf harness runs in full mode so the fresh report is
# mode-matched with the committed baseline — `--compare` now hard-fails
# on a schema or mode disagreement (a mean-statistics or quick-mode
# baseline must never be silently compared against a median full run).
# Wall-time deltas stay advisory (machine-to-machine noise must not
# fail CI), but `--check` is a hard gate on the *in-run* invariants:
# the batched fabric_conv_{ee,oe,oo} benches must beat their _scalar
# references by the documented speedup floor, and every bench —
# including the forward_* CNN replays — must report finite nonzero
# throughput.
./target/release/reproduce bench --jobs 1 --out target/BENCH_functional.json
if [ -f BENCH_functional.json ]; then
  ./target/release/reproduce bench --compare BENCH_functional.json target/BENCH_functional.json
fi
./target/release/reproduce bench --check target/BENCH_functional.json

echo "== ok"
