//! Pipelining: fitting multi-nanosecond logic into a 1 GHz clock.
//!
//! The paper's own example exposes the tension: the 8-bit CLA's critical
//! path is 2.95 ns, yet the electrical domain clocks at 1 GHz. The
//! resolution (standard, and implied by the paper's throughput-style
//! accounting) is pipelining: registers split the logic into stages of at
//! most one clock period. This module computes the required stage count,
//! the register overhead, and the resulting initiation latency for any
//! gate-level component.

use crate::dsent::DeviceEstimate;
use crate::gates::{GateCount, LogicDepth};
use crate::register::GATES_PER_FLIPFLOP;
use crate::technology::Technology;
use pixel_units::Time;

/// A pipelined wrapping of a combinational component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedComponent {
    /// Pipeline stages (1 = no registers needed).
    pub stages: u32,
    /// Logic levels per stage (balanced split).
    pub levels_per_stage: u32,
    /// Flip-flop overhead gates (stage registers).
    pub register_gates: GateCount,
    /// Latency from input to output: `stages` clock periods.
    pub latency: Time,
}

impl PipelinedComponent {
    /// Throughput in operations per second (one per cycle once full).
    #[must_use]
    pub fn throughput_hz(&self, clock_hz: f64) -> f64 {
        clock_hz
    }
}

/// Plans the pipeline for a component of `depth` logic levels and
/// `width` bits of cut state, at `clock_hz` under `tech`.
///
/// # Panics
///
/// Panics if the clock period is shorter than a single gate delay (the
/// component cannot be pipelined at gate granularity).
#[must_use]
pub fn pipeline(
    depth: LogicDepth,
    width: u32,
    clock_hz: f64,
    tech: &Technology,
) -> PipelinedComponent {
    let period = 1.0 / clock_hz;
    let per_level = tech.delay_per_level.value();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let levels_per_stage = (period / per_level).floor() as u32;
    assert!(
        levels_per_stage >= 1,
        "clock period shorter than one gate delay"
    );
    let stages = depth.get().div_ceil(levels_per_stage).max(1);
    // One register bank per internal cut.
    let register_gates =
        GateCount::new(u64::from(stages - 1) * u64::from(width) * GATES_PER_FLIPFLOP);
    PipelinedComponent {
        stages,
        levels_per_stage,
        register_gates,
        latency: Time::new(f64::from(stages) * period),
    }
}

/// Convenience: pipelines a [`DeviceEstimate`]'s critical path, returning
/// the plan plus the estimate with register area/energy folded in.
#[must_use]
pub fn pipeline_estimate(
    estimate: &DeviceEstimate,
    depth: LogicDepth,
    width: u32,
    clock_hz: f64,
    tech: &Technology,
) -> (PipelinedComponent, DeviceEstimate) {
    let plan = pipeline(depth, width, clock_hz, tech);
    let regs = crate::dsent::estimate(plan.register_gates, LogicDepth::new(1), tech);
    let mut combined = estimate.alongside(regs);
    combined.delay = plan.latency;
    (plan, combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cla::Cla;

    fn tech() -> Technology {
        Technology::bulk22lvt()
    }

    #[test]
    fn paper_cla_needs_three_stages_at_1ghz() {
        // LD(8) = 10 levels × 0.295 ns = 2.95 ns → 3 stages at 1 GHz
        // (⌊1 ns / 0.295 ns⌋ = 3 levels per stage).
        let cla = Cla::new(8);
        let plan = pipeline(cla.logic_depth(), 9, 1.0e9, &tech());
        assert_eq!(plan.levels_per_stage, 3);
        assert_eq!(plan.stages, 4); // ⌈10/3⌉
        assert!((plan.latency.as_nanos() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fast_clock_means_more_stages() {
        let cla = Cla::new(16);
        let slow = pipeline(cla.logic_depth(), 17, 0.5e9, &tech());
        let fast = pipeline(cla.logic_depth(), 17, 2.0e9, &tech());
        assert!(fast.stages > slow.stages);
        assert!(fast.register_gates > slow.register_gates);
    }

    #[test]
    fn shallow_logic_needs_no_registers() {
        let plan = pipeline(LogicDepth::new(2), 8, 1.0e9, &tech());
        assert_eq!(plan.stages, 1);
        assert_eq!(plan.register_gates.get(), 0);
    }

    #[test]
    #[should_panic(expected = "gate delay")]
    fn impossible_clock_rejected() {
        let _ = pipeline(LogicDepth::new(4), 8, 10.0e9, &tech());
    }

    #[test]
    fn pipelined_estimate_folds_register_overhead() {
        let cla = Cla::new(8);
        let base = crate::dsent::estimate(cla.gate_count(), cla.logic_depth(), &tech());
        let (plan, combined) = pipeline_estimate(&base, cla.logic_depth(), 9, 1.0e9, &tech());
        assert!(combined.area > base.area, "registers add area");
        assert_eq!(combined.delay, plan.latency);
        assert!((plan.throughput_hz(1.0e9) - 1.0e9).abs() < 1.0);
    }
}
