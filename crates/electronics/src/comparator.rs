//! Current-comparator ladder for multi-level amplitude resolution.
//!
//! The all-optical design's o/e converter (paper §II-A3, converter
//! design 2) sends the photocurrent through an array of current
//! comparators: comparator `k` fires when the current exceeds `k + ½`
//! unit-pulse levels, so the count of firing comparators is the pulse
//! count — a thermometer code that back-end logic turns into binary.

use crate::gates::{GateCount, LogicDepth};

/// Gates per analog current comparator (comparator + latch, NAND-equiv).
pub const GATES_PER_COMPARATOR: u64 = 12;

/// A ladder of `levels` current comparators resolving amplitudes 0..=levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComparatorLadder {
    levels: u32,
}

impl ComparatorLadder {
    /// Creates a ladder able to resolve amplitudes up to `levels` pulses.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn new(levels: u32) -> Self {
        assert!(levels > 0, "ladder needs at least one comparator");
        Self { levels }
    }

    /// Maximum resolvable level.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Thermometer code for a measured amplitude: `Some(k)` where `k` is
    /// the number of comparators that fire, or `None` on over-range.
    #[must_use]
    pub fn resolve(&self, amplitude: f64) -> Option<u32> {
        // Sub-half-pulse negative noise rounds to level 0; anything more
        // negative is a measurement fault.
        if amplitude < -0.5 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let level = amplitude.round().max(0.0) as u32;
        (level <= self.levels).then_some(level)
    }

    /// Thermometer→binary width needed for the resolved level.
    #[must_use]
    pub fn binary_width(&self) -> u32 {
        32 - self.levels.leading_zeros()
    }

    /// Gate count: comparators plus the thermometer-to-binary encoder
    /// (~4 gates per output bit per level group).
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        let comparators = u64::from(self.levels) * GATES_PER_COMPARATOR;
        let encoder = u64::from(self.levels) * u64::from(self.binary_width());
        GateCount::new(comparators + encoder)
    }

    /// Logic depth: 2 levels of comparison + encoder tree depth.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(2 + self.binary_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_exact_levels() {
        let l = ComparatorLadder::new(4);
        assert_eq!(l.resolve(0.0), Some(0));
        assert_eq!(l.resolve(1.02), Some(1));
        assert_eq!(l.resolve(3.96), Some(4));
        assert_eq!(l.resolve(4.6), None);
        assert_eq!(l.resolve(-0.4), Some(0));
        assert_eq!(l.resolve(-2.0), None);
    }

    #[test]
    fn binary_width_covers_levels() {
        assert_eq!(ComparatorLadder::new(1).binary_width(), 1);
        assert_eq!(ComparatorLadder::new(4).binary_width(), 3);
        assert_eq!(ComparatorLadder::new(7).binary_width(), 3);
        assert_eq!(ComparatorLadder::new(8).binary_width(), 4);
    }

    #[test]
    fn gate_count_grows_with_levels() {
        let small = ComparatorLadder::new(2).gate_count().get();
        let big = ComparatorLadder::new(8).gate_count().get();
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_levels_rejected() {
        let _ = ComparatorLadder::new(0);
    }
}
