//! Gate-count and logic-depth newtypes.
//!
//! Every electrical component in the paper is characterized first by how
//! many logic gates it needs and how many gate levels its critical path
//! crosses; these newtypes keep the two from being confused.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Number of logic gates in a component (paper's "GC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GateCount(u64);

impl GateCount {
    /// Creates a gate count.
    #[must_use]
    pub const fn new(gates: u64) -> Self {
        Self(gates)
    }

    /// Returns the raw count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the count as `f64` for estimator arithmetic.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for GateCount {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for GateCount {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for GateCount {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Sum for GateCount {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::new(0), Add::add)
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gates", self.0)
    }
}

/// Critical-path depth in gate levels (paper's "LD").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicDepth(u32);

impl LogicDepth {
    /// Creates a logic depth.
    #[must_use]
    pub const fn new(levels: u32) -> Self {
        Self(levels)
    }

    /// Returns the raw level count.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the depth as `f64`.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Serial composition: depths add along a pipeline.
    #[must_use]
    pub fn then(self, next: Self) -> Self {
        Self(self.0 + next.0)
    }

    /// Parallel composition: critical path is the deeper branch.
    #[must_use]
    pub fn alongside(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl fmt::Display for LogicDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} levels", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_arithmetic() {
        let a = GateCount::new(58);
        let b = GateCount::new(212);
        assert_eq!((a + b).get(), 270);
        assert_eq!((a * 4).get(), 232);
        let total: GateCount = [a, b, a].into_iter().sum();
        assert_eq!(total.get(), 328);
    }

    #[test]
    fn depth_composition() {
        let a = LogicDepth::new(4);
        let b = LogicDepth::new(10);
        assert_eq!(a.then(b).get(), 14);
        assert_eq!(a.alongside(b).get(), 10);
        assert_eq!(b.alongside(a).get(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(GateCount::new(212).to_string(), "212 gates");
        assert_eq!(LogicDepth::new(10).to_string(), "10 levels");
    }
}
