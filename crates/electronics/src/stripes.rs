//! Bit-true Stripes (STR) bit-serial MAC engine.
//!
//! Paper §II-B: Stripes processes a `p`-bit synapse serially over `p`
//! cycles. Each cycle, one synapse bit gates (ANDs) the whole input
//! neuron, the partial product is left-shifted by the bit position and
//! accumulated. All three accelerator designs (EE, OE, OO) follow this
//! dataflow; this module is the electrical reference implementation, built
//! structurally from the [`Cla`] and [`BarrelShifter`] models so the same
//! units that are costed are the units that compute.

use crate::cla::Cla;
use crate::gates::{GateCount, LogicDepth};
use crate::shifter::BarrelShifter;

/// Error returned when operands do not fit the configured precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandRangeError {
    /// Lane holding the offending value.
    pub lane: usize,
    /// The offending value.
    pub value: u64,
    /// The configured precision in bits.
    pub bits: u32,
}

impl std::fmt::Display for OperandRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operand {} on lane {} does not fit in {} bits",
            self.value, self.lane, self.bits
        )
    }
}

impl std::error::Error for OperandRangeError {}

/// Result of one STR multiply-accumulate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripesResult {
    /// The inner product Σᵢ neuronᵢ·synapseᵢ.
    pub value: u64,
    /// Serial cycles consumed (= synapse precision).
    pub cycles: u32,
    /// Bitwise AND operations performed.
    pub and_ops: u64,
    /// CLA additions performed.
    pub add_ops: u64,
    /// Barrel-shift operations performed.
    pub shift_ops: u64,
}

/// A bit-serial STR MAC over a fixed number of parallel lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripesMac {
    lanes: usize,
    bits: u32,
    accumulator: Cla,
    shifter: BarrelShifter,
}

impl StripesMac {
    /// Creates an STR MAC with `lanes` parallel input-neuron lanes at
    /// `bits` bits of precision for both neurons and synapses.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or if the accumulator for the requested
    /// configuration would exceed 64 bits.
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        assert!(lanes > 0, "at least one lane");
        let acc_width = Self::accumulator_width(lanes, bits);
        assert!(
            acc_width <= 64,
            "accumulator would need {acc_width} bits (>64); reduce lanes or precision"
        );
        Self {
            lanes,
            bits,
            accumulator: Cla::new(acc_width),
            shifter: BarrelShifter::new(acc_width),
        }
    }

    /// Accumulator width needed for `lanes` products of two `bits`-bit
    /// operands: `2·bits + ⌈log₂ lanes⌉`.
    #[must_use]
    pub fn accumulator_width(lanes: usize, bits: u32) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        let lane_bits = usize::BITS - (lanes.max(1) - 1).leading_zeros();
        2 * bits + lane_bits
    }

    /// Number of parallel lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Operand precision in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The accumulator CLA.
    #[must_use]
    pub fn accumulator(&self) -> &Cla {
        &self.accumulator
    }

    /// Validates that every operand fits the configured precision.
    fn check_operands(&self, values: &[u64]) -> Result<(), OperandRangeError> {
        let limit = if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        for (lane, &value) in values.iter().enumerate() {
            if value > limit {
                return Err(OperandRangeError {
                    lane,
                    value,
                    bits: self.bits,
                });
            }
        }
        Ok(())
    }

    /// Executes one MAC window: the inner product of `neurons` and
    /// `synapses` across all lanes, computed bit-serially exactly as the
    /// STR hardware does.
    ///
    /// # Examples
    ///
    /// The paper's §II-B worked example — cycle 1's partial sum is 42:
    ///
    /// ```
    /// # fn main() -> Result<(), pixel_electronics::stripes::OperandRangeError> {
    /// use pixel_electronics::stripes::StripesMac;
    ///
    /// let mac = StripesMac::new(4, 4);
    /// let result = mac.mac(&[2, 0, 3, 8], &[6, 1, 2, 3])?;
    /// assert_eq!(result.value, 42);
    /// assert_eq!(result.cycles, 4); // p cycles for a p-bit synapse
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`OperandRangeError`] if any operand exceeds the precision.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `lanes` long.
    pub fn mac(
        &self,
        neurons: &[u64],
        synapses: &[u64],
    ) -> Result<StripesResult, OperandRangeError> {
        assert_eq!(neurons.len(), self.lanes, "one neuron per lane");
        assert_eq!(synapses.len(), self.lanes, "one synapse per lane");
        self.check_operands(neurons)?;
        self.check_operands(synapses)?;

        let mut acc = 0u64;
        let mut and_ops = 0u64;
        let mut add_ops = 0u64;
        let mut shift_ops = 0u64;

        for bit in 0..self.bits {
            // Cycle `bit`: gate every neuron with its synapse's bit `bit`,
            // sum across lanes, shift into place, accumulate.
            let mut cycle_sum = 0u64;
            for lane in 0..self.lanes {
                let gate = (synapses[lane] >> bit) & 1 == 1;
                let partial = if gate { neurons[lane] } else { 0 };
                and_ops += u64::from(self.bits);
                let (sum, carry) = self.accumulator.add(cycle_sum, partial, false);
                debug_assert!(!carry, "lane sum overflowed accumulator");
                cycle_sum = sum;
                add_ops += 1;
            }
            let shifted = self.shifter.shift_left(cycle_sum, bit);
            shift_ops += 1;
            let (sum, carry) = self.accumulator.add(acc, shifted, false);
            debug_assert!(!carry, "accumulator overflow");
            acc = sum;
            add_ops += 1;
        }

        Ok(StripesResult {
            value: acc,
            cycles: self.bits,
            and_ops,
            add_ops,
            shift_ops,
        })
    }

    /// Total gate count of the datapath: per-lane AND arrays, the lane
    /// adder tree (modelled as `lanes` accumulator-width CLAs), the barrel
    /// shifter and the accumulator.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        let and_gates = GateCount::new(u64::from(self.bits) * self.lanes as u64);
        let adders = GateCount::new(self.accumulator.gate_count().get() * self.lanes as u64);
        and_gates + adders + self.shifter.gate_count() + self.accumulator.gate_count()
    }

    /// Critical-path depth of one cycle: AND (1) → lane adder tree →
    /// shifter → accumulator.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(1)
            .then(self.accumulator.logic_depth())
            .then(self.shifter.logic_depth())
            .then(self.accumulator.logic_depth())
    }

    /// Reference inner product in plain integer arithmetic.
    #[must_use]
    pub fn reference(neurons: &[u64], synapses: &[u64]) -> u64 {
        neurons.iter().zip(synapses).map(|(&n, &s)| n * s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn paper_worked_example() {
        // §II-B: INL (2,0,3,8) · SL (6,1,2,3) + 0 = 42.
        let mac = StripesMac::new(4, 4);
        let r = mac.mac(&[2, 0, 3, 8], &[6, 1, 2, 3]).unwrap();
        assert_eq!(r.value, 42);
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn single_lane_multiply() {
        let mac = StripesMac::new(1, 8);
        let r = mac.mac(&[200], &[131]).unwrap();
        assert_eq!(r.value, 200 * 131);
        assert_eq!(r.cycles, 8);
    }

    #[test]
    fn rejects_out_of_range_operand() {
        let mac = StripesMac::new(2, 4);
        let err = mac.mac(&[16, 0], &[1, 1]).unwrap_err();
        assert_eq!(err.lane, 0);
        assert_eq!(err.value, 16);
        assert!(err.to_string().contains("4 bits"));
    }

    #[test]
    fn accumulator_width_formula() {
        assert_eq!(StripesMac::accumulator_width(1, 4), 8);
        assert_eq!(StripesMac::accumulator_width(4, 4), 10);
        assert_eq!(StripesMac::accumulator_width(5, 4), 11);
        assert_eq!(StripesMac::accumulator_width(16, 8), 20);
    }

    #[test]
    fn op_counters_match_structure() {
        let mac = StripesMac::new(4, 4);
        let r = mac.mac(&[1, 2, 3, 4], &[5, 6, 7, 8]).unwrap();
        // p cycles × lanes AND-gatings of p bits each.
        assert_eq!(r.and_ops, 4 * 4 * 4);
        // Per cycle: `lanes` tree adds + 1 accumulate.
        assert_eq!(r.add_ops, 4 * (4 + 1));
        assert_eq!(r.shift_ops, 4);
    }

    #[test]
    fn zero_synapses_produce_zero() {
        let mac = StripesMac::new(3, 8);
        let r = mac.mac(&[255, 255, 255], &[0, 0, 0]).unwrap();
        assert_eq!(r.value, 0);
    }

    #[test]
    fn gate_count_and_depth_are_positive_and_monotone() {
        let small = StripesMac::new(2, 4);
        let big = StripesMac::new(8, 8);
        assert!(big.gate_count() > small.gate_count());
        assert!(big.logic_depth() >= small.logic_depth());
    }

    #[test]
    fn matches_integer_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x0571_29E5);
        for _ in 0..96 {
            let lanes = rng.range_usize(1, 8);
            let bits = rng.range_u32(1, 12);
            let limit = (1u64 << bits) - 1;
            let neurons: Vec<u64> = (0..lanes).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..lanes).map(|_| rng.range_u64(0, limit)).collect();
            let mac = StripesMac::new(lanes, bits);
            let r = mac.mac(&neurons, &synapses).unwrap();
            assert_eq!(
                r.value,
                StripesMac::reference(&neurons, &synapses),
                "lanes={lanes} bits={bits}"
            );
        }
    }
}
