//! Barrel left-shifter: gate model plus bit-true implementation.
//!
//! The STR accumulate path shifts each partial product left by the synapse
//! bit position before adding. A barrel shifter of width `n` uses
//! `⌈log₂ n⌉` mux stages; each stage is `n` 2:1 muxes at ~3 gates each.

use crate::gates::{GateCount, LogicDepth};

/// A logarithmic barrel left-shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrelShifter {
    width: u32,
}

impl BarrelShifter {
    /// Gates per 2:1 multiplexer.
    pub const GATES_PER_MUX: u64 = 3;

    /// Creates a shifter of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "shifter width must be 1..=64");
        Self { width }
    }

    /// Bit width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of mux stages: `⌈log₂ n⌉`.
    #[must_use]
    pub fn stages(&self) -> u32 {
        if self.width <= 1 {
            0
        } else {
            32 - (self.width - 1).leading_zeros()
        }
    }

    /// Gate count: `stages × width × 3`.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        GateCount::new(u64::from(self.stages()) * u64::from(self.width) * Self::GATES_PER_MUX)
    }

    /// Logic depth: one mux (2 gate levels) per stage.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(self.stages() * 2)
    }

    /// Bit-true left shift within the width, realized stage-by-stage as the
    /// hardware would (shift by powers of two selected by `amount` bits).
    #[must_use]
    pub fn shift_left(&self, value: u64, amount: u32) -> u64 {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut v = value & mask;
        for stage in 0..self.stages() {
            if (amount >> stage) & 1 == 1 {
                v = (v << (1u32 << stage)) & mask;
            }
        }
        // Shift amounts ≥ width flush to zero, as the cascaded muxes do.
        if amount >= self.width {
            0
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn stage_counts() {
        assert_eq!(BarrelShifter::new(1).stages(), 0);
        assert_eq!(BarrelShifter::new(8).stages(), 3);
        assert_eq!(BarrelShifter::new(9).stages(), 4);
        assert_eq!(BarrelShifter::new(64).stages(), 6);
    }

    #[test]
    fn gate_count_example() {
        // 8-bit: 3 stages × 8 bits × 3 gates = 72.
        assert_eq!(BarrelShifter::new(8).gate_count().get(), 72);
        assert_eq!(BarrelShifter::new(8).logic_depth().get(), 6);
    }

    #[test]
    fn shifts_within_width() {
        let s = BarrelShifter::new(8);
        assert_eq!(s.shift_left(0b1, 3), 0b1000);
        assert_eq!(s.shift_left(0xFF, 4), 0xF0);
        assert_eq!(s.shift_left(0b1, 8), 0);
        assert_eq!(s.shift_left(0b1, 9), 0);
    }

    #[test]
    fn matches_native_shift() {
        let mut rng = SplitMix64::seed_from_u64(0x5817);
        for _ in 0..256 {
            let value = rng.next_u64();
            let amount = rng.range_u32(0, 69);
            let width = rng.range_u32(1, 64);
            let s = BarrelShifter::new(width);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let expected = if amount >= width {
                0
            } else {
                ((value & mask) << amount) & mask
            };
            assert_eq!(
                s.shift_left(value, amount),
                expected,
                "width={width} amount={amount}"
            );
        }
    }
}
