//! Parallel array multiplier: the non-bit-serial electrical baseline.
//!
//! Stripes trades a big combinational multiplier for `p` cheap serial
//! cycles. This module supplies the multiplier Stripes replaces — an
//! `n × n` carry-save array — so that trade can be quantified (the
//! `ablation_baselines` bench compares both on gates, depth and energy
//! per multiply).

use crate::gates::{GateCount, LogicDepth};
use crate::ripple::GATES_PER_FULL_ADDER;

/// An `n × n` carry-save array multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayMultiplier {
    width: u32,
}

impl ArrayMultiplier {
    /// Creates an `width × width` multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 32 (the product must fit u64).
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width), "multiplier width must be 1..=32");
        Self { width }
    }

    /// Operand width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Gate count: `n²` AND gates for partial products plus `n·(n−1)`
    /// full adders in the reduction array.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        let n = u64::from(self.width);
        GateCount::new(n * n + n * (n - 1) * GATES_PER_FULL_ADDER)
    }

    /// Logic depth: one AND level plus `2(n−1)` carry-save levels plus a
    /// final `2n`-deep ripple merge (2 levels per cell).
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        let n = self.width;
        LogicDepth::new(1 + 2 * (n - 1) + 2 * n)
    }

    /// Bit-true multiplication through the partial-product array: AND
    /// rows, shifted and accumulated exactly as the hardware reduces them.
    #[must_use]
    pub fn multiply(&self, a: u64, b: u64) -> u64 {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let (a, b) = (a & mask, b & mask);
        let mut acc: u64 = 0;
        for i in 0..self.width {
            if (b >> i) & 1 == 1 {
                acc += a << i; // row i of the partial-product array
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripes::StripesMac;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn gate_model() {
        // 8×8: 64 ANDs + 56 FAs·5 = 344 gates.
        let m = ArrayMultiplier::new(8);
        assert_eq!(m.gate_count().get(), 64 + 56 * 5);
        assert_eq!(m.logic_depth().get(), 1 + 14 + 16);
    }

    #[test]
    fn area_grows_quadratically() {
        let small = ArrayMultiplier::new(8).gate_count().get();
        let big = ArrayMultiplier::new(16).gate_count().get();
        assert!(big > 3 * small && big < 5 * small);
    }

    #[test]
    fn stripes_lane_is_cheaper_than_the_array_multiplier() {
        // The premise of STR-based designs: the multiply path of a
        // bit-serial lane (AND array + barrel shifter) needs far fewer
        // gates than the combinational multiplier it replaces; the
        // accumulator CLA is shared with the accumulate path either way.
        use crate::shifter::BarrelShifter;
        let array = ArrayMultiplier::new(16).gate_count();
        let acc_width = StripesMac::accumulator_width(1, 16);
        let and_plus_shift = GateCount::new(16) + BarrelShifter::new(acc_width).gate_count();
        assert!(
            and_plus_shift < array,
            "{and_plus_shift} should undercut {array}"
        );
    }

    #[test]
    fn small_products() {
        let m = ArrayMultiplier::new(4);
        assert_eq!(m.multiply(15, 15), 225);
        assert_eq!(m.multiply(0, 9), 0);
        assert_eq!(m.multiply(1, 9), 9);
    }

    #[test]
    fn matches_native_multiply() {
        let mut rng = SplitMix64::seed_from_u64(0x320C);
        for _ in 0..256 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let width = rng.range_u32(1, 32);
            let m = ArrayMultiplier::new(width);
            let mask = (1u64 << width) - 1;
            assert_eq!(m.multiply(a, b), (a & mask) * (b & mask), "width={width}");
        }
    }
}
