//! Register / flip-flop bank gate model with functional state.
//!
//! Accumulator registers and the weight register file (RF) of each OMAC
//! tile are banks of D flip-flops; a DFF is ≈6 NAND-equivalent gates.

use crate::gates::{GateCount, LogicDepth};

/// Gates per D flip-flop (NAND-equivalent).
pub const GATES_PER_FLIPFLOP: u64 = 6;

/// A clocked register of up to 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Register {
    width: u32,
    state: u64,
}

impl Register {
    /// Creates a zeroed register.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "register width must be 1..=64");
        Self { width, state: 0 }
    }

    /// Bit width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Bit mask for the register width.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Current stored value.
    #[must_use]
    pub fn read(&self) -> u64 {
        self.state
    }

    /// Clocks in a new value (truncated to width); returns the old value.
    pub fn write(&mut self, value: u64) -> u64 {
        let old = self.state;
        self.state = value & self.mask();
        old
    }

    /// Clears the register to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Gate count of the flip-flop bank.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        GateCount::new(u64::from(self.width) * GATES_PER_FLIPFLOP)
    }

    /// Clock-to-Q depth (one level).
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(1)
    }
}

/// A register file of `entries` words, as used for filter weight storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    entries: Vec<Register>,
}

impl RegisterFile {
    /// Creates a zeroed register file.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        Self {
            entries: vec![Register::new(width); entries],
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the file has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn read(&self, index: usize) -> u64 {
        self.entries[index].read()
    }

    /// Writes entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write(&mut self, index: usize, value: u64) {
        self.entries[index].write(value);
    }

    /// Loads consecutive entries from a slice starting at entry 0.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` exceeds the file size.
    pub fn load(&mut self, values: &[u64]) {
        assert!(values.len() <= self.entries.len(), "register file overflow");
        for (i, &v) in values.iter().enumerate() {
            self.entries[i].write(v);
        }
    }

    /// Total gate count (flip-flops only; decoder omitted as the paper
    /// folds it into interconnect overhead).
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        self.entries.iter().map(Register::gate_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_truncates_to_width() {
        let mut r = Register::new(4);
        r.write(0x1F);
        assert_eq!(r.read(), 0xF);
        assert_eq!(r.write(0x3), 0xF);
        assert_eq!(r.read(), 0x3);
        r.reset();
        assert_eq!(r.read(), 0);
    }

    #[test]
    fn register_gate_count() {
        assert_eq!(Register::new(16).gate_count().get(), 96);
    }

    #[test]
    fn register_file_round_trip() {
        let mut rf = RegisterFile::new(4, 8);
        rf.load(&[1, 2, 3]);
        assert_eq!(rf.read(0), 1);
        assert_eq!(rf.read(2), 3);
        assert_eq!(rf.read(3), 0);
        rf.write(3, 300);
        assert_eq!(rf.read(3), 300 & 0xFF);
        assert_eq!(rf.len(), 4);
        assert_eq!(rf.gate_count().get(), 4 * 8 * 6);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn register_file_load_overflow() {
        let mut rf = RegisterFile::new(2, 8);
        rf.load(&[1, 2, 3]);
    }
}
