//! 22 nm electrical logic substrate for the PIXEL accelerator reproduction.
//!
//! The paper evaluates its electrical components by counting logic gates
//! and feeding gate counts into the DSENT simulator's `Bulk22LVT`
//! technology model. This crate rebuilds that flow:
//!
//! * [`technology`] — the technology model: per-gate switching energy,
//!   area, leakage and per-level propagation delay.
//! * [`gates`] — [`gates::GateCount`] / [`gates::LogicDepth`] newtypes.
//! * [`dsent`] — the mini-DSENT estimator turning (gates, depth) into
//!   energy/area/power/delay, calibrated to the paper's worked example
//!   (a 212-gate, depth-10 CLA).
//! * [`cla`] — Eq. 5/6 carry-lookahead gate model **and** a bit-true CLA.
//! * [`shifter`], [`register`], [`comparator`] — remaining gate models with
//!   functional implementations.
//! * [`stripes`] — the bit-true Stripes (STR) bit-serial MAC engine that
//!   all three accelerator designs are modelled after.
//! * [`activation`] — fixed-point hybrid piecewise-linear tanh
//!   (Zamanlooy-style), sigmoid and ReLU.
//! * [`converter`] — o/e converter back-end logic: serial→parallel
//!   (design 1) and comparator-ladder amplitude decode (design 2).
//!
//! # Example
//!
//! ```
//! use pixel_electronics::cla::Cla;
//! use pixel_electronics::technology::Technology;
//! use pixel_electronics::dsent;
//!
//! let cla = Cla::new(8);
//! assert_eq!(cla.gate_count().get(), 212);   // paper: GC(8) = 212
//! assert_eq!(cla.logic_depth().get(), 10);   // paper: LD(8) = 10
//!
//! let tech = Technology::bulk22lvt();
//! let est = dsent::estimate(cla.gate_count(), cla.logic_depth(), &tech);
//! assert!((est.delay.as_nanos() - 2.95).abs() < 0.01); // paper: 2.95 ns
//! ```

pub mod activation;
pub mod cla;
pub mod comparator;
pub mod converter;
pub mod dsent;
pub mod gates;
pub mod multiplier;
pub mod pipeline;
pub mod register;
pub mod ripple;
pub mod shifter;
pub mod sram;
pub mod stripes;
pub mod technology;

pub use cla::Cla;
pub use dsent::DeviceEstimate;
pub use gates::{GateCount, LogicDepth};
pub use stripes::StripesMac;
pub use technology::Technology;
