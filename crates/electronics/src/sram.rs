//! SRAM weight buffer model.
//!
//! Per-tile register files hold the active filter, but full layers live
//! in on-chip SRAM (as in every accelerator the paper compares against).
//! This module provides a 6T-cell SRAM macro model — capacity, area,
//! read/write energy, leakage — plus a functional banked store used by
//! the weight-streaming path.

use crate::technology::Technology;
use pixel_units::{Area, Energy, Power};

/// A single-port SRAM macro of `words × word_bits`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    words: usize,
    word_bits: u32,
}

impl SramMacro {
    /// 6T cell area in gate-equivalents (a 6T bitcell is much denser than
    /// random logic; ≈0.25 gate-equivalents each at iso-node).
    pub const CELL_GATE_EQUIVALENT: f64 = 0.25;

    /// Dynamic energy per accessed bit relative to one gate switch
    /// (bitline + sense amplifier share).
    pub const ACCESS_ENERGY_PER_BIT_GATES: f64 = 2.0;

    /// Creates a macro.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `word_bits > 64`.
    #[must_use]
    pub fn new(words: usize, word_bits: u32) -> Self {
        assert!(words > 0, "at least one word");
        assert!((1..=64).contains(&word_bits), "word width 1..=64");
        Self { words, word_bits }
    }

    /// Capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> u64 {
        self.words as u64 * u64::from(self.word_bits)
    }

    /// Macro area under `tech`.
    #[must_use]
    pub fn area(&self, tech: &Technology) -> Area {
        #[allow(clippy::cast_precision_loss)]
        let cells = self.capacity_bits() as f64;
        tech.area_per_gate * (cells * Self::CELL_GATE_EQUIVALENT)
    }

    /// Energy of one word read or write under `tech`.
    #[must_use]
    pub fn access_energy(&self, tech: &Technology) -> Energy {
        tech.energy_per_gate_switch
            * (f64::from(self.word_bits) * Self::ACCESS_ENERGY_PER_BIT_GATES)
    }

    /// Leakage power under `tech` (cells leak like ~0.1 gate each).
    #[must_use]
    pub fn leakage(&self, tech: &Technology) -> Power {
        #[allow(clippy::cast_precision_loss)]
        let cells = self.capacity_bits() as f64;
        tech.leakage_per_gate * (cells * 0.1)
    }

    /// Energy to stream `words` consecutive words out (filter pre-load).
    #[must_use]
    pub fn stream_energy(&self, tech: &Technology, words: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let n = words as f64;
        self.access_energy(tech) * n
    }
}

/// A functional banked weight store backed by the macro model.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightBuffer {
    sram: SramMacro,
    data: Vec<u64>,
    mask: u64,
}

impl WeightBuffer {
    /// Creates a zeroed buffer.
    #[must_use]
    pub fn new(words: usize, word_bits: u32) -> Self {
        let sram = SramMacro::new(words, word_bits);
        let mask = if word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << word_bits) - 1
        };
        Self {
            sram,
            data: vec![0; words],
            mask,
        }
    }

    /// The macro model.
    #[must_use]
    pub fn sram(&self) -> &SramMacro {
        &self.sram
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has zero capacity (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes one word (truncated to the word width).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u64) {
        self.data[addr] = value & self.mask;
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn read(&self, addr: usize) -> u64 {
        self.data[addr]
    }

    /// Loads a filter's weights starting at `base`; returns the energy of
    /// the burst under `tech`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the address range.
    pub fn load_filter(&mut self, base: usize, weights: &[u64], tech: &Technology) -> Energy {
        assert!(base + weights.len() <= self.data.len(), "address overflow");
        for (i, &w) in weights.iter().enumerate() {
            self.write(base + i, w);
        }
        self.sram.stream_energy(tech, weights.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::bulk22lvt()
    }

    #[test]
    fn capacity_and_area() {
        let m = SramMacro::new(1024, 16);
        assert_eq!(m.capacity_bits(), 16384);
        // 16384 cells × 0.25 GE × 0.5 µm² = 2048 µm².
        assert!((m.area(&tech()).as_square_micrometres() - 2048.0).abs() < 1e-6);
    }

    #[test]
    fn sram_is_denser_than_flipflops() {
        use crate::register::GATES_PER_FLIPFLOP;
        let m = SramMacro::new(1024, 16);
        let ff_area = tech().area_per_gate * (m.capacity_bits() as f64 * GATES_PER_FLIPFLOP as f64);
        assert!(m.area(&tech()).value() < ff_area.value() / 10.0);
    }

    #[test]
    fn access_energy_scales_with_word_width() {
        let narrow = SramMacro::new(64, 8).access_energy(&tech());
        let wide = SramMacro::new(64, 32).access_energy(&tech());
        assert!((wide / narrow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_round_trip_with_truncation() {
        let mut buf = WeightBuffer::new(8, 4);
        buf.write(3, 0x1F);
        assert_eq!(buf.read(3), 0xF);
        assert_eq!(buf.read(0), 0);
        assert_eq!(buf.len(), 8);
        assert!(!buf.is_empty());
    }

    #[test]
    fn filter_load_charges_stream_energy() {
        let mut buf = WeightBuffer::new(64, 16);
        let e = buf.load_filter(8, &[1, 2, 3, 4], &tech());
        assert_eq!(buf.read(9), 2);
        let expected = buf.sram().access_energy(&tech()) * 4.0;
        assert!((e.value() - expected.value()).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn filter_overflow_panics() {
        let mut buf = WeightBuffer::new(4, 16);
        let _ = buf.load_filter(2, &[1, 2, 3], &tech());
    }
}
