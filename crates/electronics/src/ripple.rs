//! Ripple-carry adder: the ablation baseline against the CLA.
//!
//! The paper adopts carry-lookahead adders; the ripple-carry design is
//! the classic lower-area / higher-latency alternative (one full adder
//! per bit: ~5 gates, 2 levels each), kept here so the CLA choice can be
//! quantified (see the `ablation_baselines` bench).

use crate::gates::{GateCount, LogicDepth};

/// Gates per full-adder cell (two XOR, two AND, one OR).
pub const GATES_PER_FULL_ADDER: u64 = 5;

/// A ripple-carry adder of a given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RippleCarryAdder {
    width: u32,
}

impl RippleCarryAdder {
    /// Creates a `width`-bit ripple-carry adder.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "RCA width must be 1..=64");
        Self { width }
    }

    /// Adder width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Gate count: `5n` — linear, unlike the CLA's cubic Eq. 5.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        GateCount::new(u64::from(self.width) * GATES_PER_FULL_ADDER)
    }

    /// Logic depth: the carry ripples through all `n` cells, 2 levels
    /// each — linear, unlike the CLA's logarithmic Eq. 6.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(self.width * 2)
    }

    /// Bit-true addition, rippled cell by cell.
    #[must_use]
    pub fn add(&self, a: u64, b: u64, carry_in: bool) -> (u64, bool) {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let mut sum = 0u64;
        let mut carry = carry_in;
        for i in 0..self.width {
            let ai = (a >> i) & 1 == 1;
            let bi = (b >> i) & 1 == 1;
            let s = ai ^ bi ^ carry;
            carry = (ai && bi) || (carry && (ai ^ bi));
            if s {
                sum |= 1 << i;
            }
        }
        (sum, carry)
    }

    /// Width mask.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cla::Cla;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn gate_and_depth_scaling() {
        let rca = RippleCarryAdder::new(8);
        assert_eq!(rca.gate_count().get(), 40);
        assert_eq!(rca.logic_depth().get(), 16);
    }

    #[test]
    fn rca_beats_cla_on_area_loses_on_depth() {
        // The trade the paper makes by choosing CLAs.
        for width in [4u32, 8, 16, 32] {
            let rca = RippleCarryAdder::new(width);
            let cla = Cla::new(width);
            assert!(rca.gate_count() < cla.gate_count(), "area at {width}b");
            if width >= 8 {
                assert!(rca.logic_depth() > cla.logic_depth(), "depth at {width}b");
            }
        }
    }

    #[test]
    fn small_sums() {
        let rca = RippleCarryAdder::new(4);
        assert_eq!(rca.add(7, 8, false), (15, false));
        assert_eq!(rca.add(15, 1, false), (0, true));
        assert_eq!(rca.add(0, 0, true), (1, false));
    }

    #[test]
    fn rca_equals_cla() {
        let mut rng = SplitMix64::seed_from_u64(0xADD3);
        for _ in 0..256 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let cin = rng.next_bool();
            let width = rng.range_u32(1, 64);
            let rca = RippleCarryAdder::new(width);
            let cla = Cla::new(width);
            assert_eq!(rca.add(a, b, cin), cla.add(a, b, cin), "width={width}");
        }
    }
}
