//! Mini-DSENT: gate-level component estimation.
//!
//! DSENT (Sun et al., NOCS 2012) turns device structure into
//! energy/area/power/delay given a technology model. The paper uses only
//! its gate-count pathway: `estimate` reproduces that pathway from a
//! [`GateCount`], a [`LogicDepth`] and a [`Technology`].

use crate::gates::{GateCount, LogicDepth};
use crate::technology::Technology;
use pixel_units::{Area, Energy, Power, Time};

/// Activity factor applied when none is given: the classic 0.5 toggle
/// assumption for random data.
pub const DEFAULT_ACTIVITY: f64 = 0.5;

/// Estimated physical characteristics of a gate-level component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceEstimate {
    /// Dynamic energy consumed per clocked operation.
    pub dynamic_energy_per_op: Energy,
    /// Layout area.
    pub area: Area,
    /// Static (leakage) power.
    pub static_power: Power,
    /// Critical-path propagation delay.
    pub delay: Time,
}

impl DeviceEstimate {
    /// Combines two estimates placed side by side on the die (areas and
    /// powers add; delay is the max — they operate in parallel).
    #[must_use]
    pub fn alongside(self, other: Self) -> Self {
        Self {
            dynamic_energy_per_op: self.dynamic_energy_per_op + other.dynamic_energy_per_op,
            area: self.area + other.area,
            static_power: self.static_power + other.static_power,
            delay: self.delay.max(other.delay),
        }
    }

    /// Combines two estimates in series (pipeline): everything adds.
    #[must_use]
    pub fn then(self, other: Self) -> Self {
        Self {
            dynamic_energy_per_op: self.dynamic_energy_per_op + other.dynamic_energy_per_op,
            area: self.area + other.area,
            static_power: self.static_power + other.static_power,
            delay: self.delay + other.delay,
        }
    }

    /// Replicates the component `n` times in parallel.
    #[must_use]
    pub fn replicated(self, n: usize) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let k = n as f64;
        Self {
            dynamic_energy_per_op: self.dynamic_energy_per_op * k,
            area: self.area * k,
            static_power: self.static_power * k,
            delay: self.delay,
        }
    }
}

/// Estimates a component with the default 0.5 activity factor.
#[must_use]
pub fn estimate(gates: GateCount, depth: LogicDepth, tech: &Technology) -> DeviceEstimate {
    estimate_with_activity(gates, depth, tech, DEFAULT_ACTIVITY)
}

/// Estimates a component with an explicit switching-activity factor
/// (fraction of gates toggling per operation).
#[must_use]
pub fn estimate_with_activity(
    gates: GateCount,
    depth: LogicDepth,
    tech: &Technology,
    activity: f64,
) -> DeviceEstimate {
    let g = gates.as_f64();
    DeviceEstimate {
        dynamic_energy_per_op: tech.energy_per_gate_switch * (g * activity.clamp(0.0, 1.0)),
        area: tech.area_per_gate * g,
        static_power: tech.leakage_per_gate * g,
        delay: tech.delay_per_level * depth.as_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::bulk22lvt()
    }

    #[test]
    fn paper_cla_example_delay_and_power() {
        let est = estimate(GateCount::new(212), LogicDepth::new(10), &tech());
        assert!((est.delay.as_nanos() - 2.95).abs() < 1e-9);
        assert!((est.static_power.as_microwatts() - 0.17).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_activity() {
        let low = estimate_with_activity(GateCount::new(100), LogicDepth::new(1), &tech(), 0.1);
        let high = estimate_with_activity(GateCount::new(100), LogicDepth::new(1), &tech(), 0.2);
        assert!((high.dynamic_energy_per_op / low.dynamic_energy_per_op - 2.0).abs() < 1e-12);
    }

    #[test]
    fn activity_is_clamped() {
        let over = estimate_with_activity(GateCount::new(10), LogicDepth::new(1), &tech(), 2.0);
        let one = estimate_with_activity(GateCount::new(10), LogicDepth::new(1), &tech(), 1.0);
        assert_eq!(over.dynamic_energy_per_op, one.dynamic_energy_per_op);
    }

    #[test]
    fn composition_rules() {
        let a = estimate(GateCount::new(100), LogicDepth::new(4), &tech());
        let b = estimate(GateCount::new(50), LogicDepth::new(6), &tech());

        let parallel = a.alongside(b);
        assert_eq!(parallel.delay, b.delay);
        assert!((parallel.area / (a.area + b.area) - 1.0).abs() < 1e-12);

        let serial = a.then(b);
        assert!((serial.delay.as_nanos() - (a.delay + b.delay).as_nanos()).abs() < 1e-12);
    }

    #[test]
    fn replication_multiplies_all_but_delay() {
        let a = estimate(GateCount::new(100), LogicDepth::new(4), &tech());
        let r = a.replicated(4);
        assert_eq!(r.delay, a.delay);
        assert!((r.area / a.area - 4.0).abs() < 1e-12);
        assert!((r.dynamic_energy_per_op / a.dynamic_energy_per_op - 4.0).abs() < 1e-12);
    }
}
