//! Activation-function circuitry.
//!
//! Paper §II-B: PIXEL uses a hybrid hyperbolic-tangent design combining
//! piecewise-linear (PL) approximation with bit-level mapping (after
//! Zamanlooy & Mirhassani, TVLSI 2014) for ultra-low gate count. This
//! module implements that approximation in fixed-point integer arithmetic
//! (so it can run inside the bit-true pipelines) along with its gate model,
//! plus ReLU and a tanh-derived sigmoid.

use crate::gates::{GateCount, LogicDepth};

/// Fixed-point format used by the activation datapath: Q4.12 (16-bit
/// signed, 12 fractional bits).
pub const FRACTION_BITS: u32 = 12;

/// Fixed-point scale factor (2^12).
pub const SCALE: i64 = 1 << FRACTION_BITS;

/// Converts an `f64` to Q4.12.
#[must_use]
pub fn to_fixed(x: f64) -> i64 {
    #[allow(clippy::cast_possible_truncation)]
    {
        (x * SCALE as f64).round() as i64
    }
}

/// Converts Q4.12 to `f64`.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn to_float(x: i64) -> f64 {
    x as f64 / SCALE as f64
}

/// Breakpoints of the PL region in Q4.12 (0.0, 0.5, 1.0, 1.5, 2.0).
const BREAKPOINTS: [i64; 5] = [0, SCALE / 2, SCALE, 3 * SCALE / 2, 2 * SCALE];

/// tanh at the breakpoints in Q4.12 (pre-computed table — the "bit-level
/// mapping" part of the hybrid design).
const TANH_TABLE: [i64; 5] = [
    0,    // tanh(0.0)
    1893, // tanh(0.5) ≈ 0.46212 · 4096
    3120, // tanh(1.0) ≈ 0.76159 · 4096
    3708, // tanh(1.5) ≈ 0.90515 · 4096
    3949, // tanh(2.0) ≈ 0.96403 · 4096
];

/// The hybrid PL + bit-mapping hyperbolic tangent unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TanhUnit;

impl TanhUnit {
    /// Creates the unit.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Evaluates tanh on a Q4.12 fixed-point input, returning Q4.12.
    ///
    /// Piecewise-linear interpolation between table breakpoints on
    /// `|x| < 2.0`, saturating bit-mapped output (±1.0) beyond.
    #[must_use]
    pub fn eval_fixed(&self, x: i64) -> i64 {
        let negative = x < 0;
        let mag = x.abs();
        let y = if mag >= BREAKPOINTS[4] {
            SCALE // saturation region: output 1.0
        } else {
            // Segment index = mag / 0.5 in fixed point.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let seg = (mag / (SCALE / 2)) as usize;
            let x0 = BREAKPOINTS[seg];
            let y0 = TANH_TABLE[seg];
            let y1 = TANH_TABLE[seg + 1];
            // Linear interpolation with a power-of-two segment width:
            // y = y0 + (y1-y0) · (mag-x0) / (SCALE/2), shift-implemented.
            y0 + ((y1 - y0) * (mag - x0)) / (SCALE / 2)
        };
        if negative {
            -y
        } else {
            y
        }
    }

    /// Evaluates tanh on an `f64` through the fixed-point datapath.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        to_float(self.eval_fixed(to_fixed(x)))
    }

    /// Gate count: the paper cites an ultra-low gate-count hybrid design;
    /// Zamanlooy-class implementations land near 129 NAND-equivalents.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        GateCount::new(129)
    }

    /// Critical-path depth of the hybrid design.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(8)
    }
}

/// Rectified linear unit on raw integers.
#[must_use]
pub fn relu(x: i64) -> i64 {
    x.max(0)
}

/// Sigmoid built from the tanh unit: `σ(x) = (tanh(x/2) + 1)/2`, in Q4.12.
#[must_use]
pub fn sigmoid_fixed(unit: &TanhUnit, x: i64) -> i64 {
    (unit.eval_fixed(x / 2) + SCALE) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn fixed_point_round_trip() {
        for x in [-2.0, -0.75, 0.0, 0.33, 1.9] {
            assert!((to_float(to_fixed(x)) - x).abs() < 1.0 / SCALE as f64);
        }
    }

    #[test]
    fn tanh_exact_at_breakpoints() {
        let t = TanhUnit::new();
        // Interior breakpoints hit the table exactly; at x = 2.0 the
        // bit-mapped saturation region takes over and outputs 1.0.
        for (i, &bp) in BREAKPOINTS.iter().enumerate().take(4) {
            let y = t.eval_fixed(bp);
            assert_eq!(y, TANH_TABLE[i], "breakpoint {i}");
        }
        assert_eq!(t.eval_fixed(BREAKPOINTS[4]), SCALE);
    }

    #[test]
    fn tanh_saturates() {
        let t = TanhUnit::new();
        assert_eq!(t.eval_fixed(to_fixed(3.0)), SCALE);
        assert_eq!(t.eval_fixed(to_fixed(-5.0)), -SCALE);
    }

    #[test]
    fn tanh_error_bound() {
        let t = TanhUnit::new();
        let mut worst: f64 = 0.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let err = (t.eval(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 0.01;
        }
        assert!(worst < 0.04, "worst-case error {worst}");
    }

    #[test]
    fn relu_basic() {
        assert_eq!(relu(-5), 0);
        assert_eq!(relu(0), 0);
        assert_eq!(relu(17), 17);
    }

    #[test]
    fn sigmoid_properties() {
        let t = TanhUnit::new();
        let mid = sigmoid_fixed(&t, 0);
        assert_eq!(mid, SCALE / 2, "σ(0) = 0.5");
        assert!(sigmoid_fixed(&t, to_fixed(6.0)) >= SCALE - 8);
        assert!(sigmoid_fixed(&t, to_fixed(-6.0)) <= 8);
    }

    #[test]
    fn gate_model() {
        let t = TanhUnit::new();
        assert_eq!(t.gate_count().get(), 129);
        assert_eq!(t.logic_depth().get(), 8);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let t = TanhUnit::new();
        let mut rng = SplitMix64::seed_from_u64(0x7A17);
        for _ in 0..512 {
            let x = rng.range_f64(-8.0, 8.0);
            let y = t.eval_fixed(to_fixed(x));
            let ny = t.eval_fixed(to_fixed(-x));
            // Odd within rounding of input conversion.
            assert!((y + ny).abs() <= 2, "x={x}");
            assert!(y.abs() <= SCALE, "x={x}");
        }
    }

    #[test]
    fn tanh_is_monotone() {
        let t = TanhUnit::new();
        let mut rng = SplitMix64::seed_from_u64(0x7A18);
        for _ in 0..512 {
            let a = rng.range_f64(-4.0, 4.0);
            let b = rng.range_f64(-4.0, 4.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                t.eval_fixed(to_fixed(lo)) <= t.eval_fixed(to_fixed(hi)),
                "lo={lo} hi={hi}"
            );
        }
    }
}
