//! Optical-to-electrical converter back-end logic.
//!
//! Paper §II-A3 describes two o/e converter designs:
//!
//! * **Design 1** (used by OE): a photodiode feeds shift registers that
//!   deserialize binary optical pulses into a parallel electrical word.
//! * **Design 2** (used by OO): pulses arrive with multi-pulse amplitudes,
//!   so the photocurrent passes through a current-comparator ladder; the
//!   resolved per-slot levels are combined positionally (`Σ level·2^slot`)
//!   by back-end logic.
//!
//! The photodiode itself lives in `pixel-photonics`; this module is the
//! digital/analog back end that the electrical energy model charges for.

use crate::comparator::ComparatorLadder;
use crate::gates::{GateCount, LogicDepth};
use crate::register::GATES_PER_FLIPFLOP;

/// Error returned when a converter cannot decode its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A slot carried an amplitude the converter cannot represent.
    LevelOutOfRange {
        /// Slot index.
        slot: usize,
        /// Level observed.
        level: u32,
        /// Maximum level supported.
        max: u32,
    },
    /// The decoded word exceeds 64 bits.
    WordOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LevelOutOfRange { slot, level, max } => {
                write!(f, "slot {slot} level {level} exceeds converter range {max}")
            }
            Self::WordOverflow => write!(f, "decoded word exceeds 64 bits"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Design 1: serial binary pulses → parallel word via shift register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SerialConverter {
    bits: u32,
}

impl SerialConverter {
    /// Creates a converter deserializing words of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 64.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "word width must be 1..=64");
        Self { bits }
    }

    /// Word width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Decodes per-slot binary levels (LSB in slot 0) into a word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LevelOutOfRange`] if any slot level exceeds 1
    /// (binary receivers saturate) or [`DecodeError::WordOverflow`] if more
    /// than `bits` slots are supplied with data past the width.
    pub fn decode(&self, levels: &[u32]) -> Result<u64, DecodeError> {
        let mut word = 0u64;
        for (slot, &level) in levels.iter().enumerate() {
            if level > 1 {
                return Err(DecodeError::LevelOutOfRange {
                    slot,
                    level,
                    max: 1,
                });
            }
            if level == 1 {
                if slot >= self.bits as usize {
                    return Err(DecodeError::WordOverflow);
                }
                word |= 1 << slot;
            }
        }
        Ok(word)
    }

    /// Gate count: one flip-flop per bit of shift register plus load logic.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        GateCount::new(u64::from(self.bits) * (GATES_PER_FLIPFLOP + 2))
    }

    /// Logic depth per slot: shift (1 level).
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        LogicDepth::new(1)
    }
}

/// Design 2: multi-level amplitudes → accumulated value via comparator
/// ladder and positional combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmplitudeConverter {
    ladder: ComparatorLadder,
}

impl AmplitudeConverter {
    /// Creates a converter resolving up to `max_level` pulses per slot
    /// (`max_level` = number of signals summed optically).
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is zero.
    #[must_use]
    pub fn new(max_level: u32) -> Self {
        Self {
            ladder: ComparatorLadder::new(max_level),
        }
    }

    /// Maximum per-slot pulse level.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.ladder.levels()
    }

    /// The comparator ladder.
    #[must_use]
    pub fn ladder(&self) -> &ComparatorLadder {
        &self.ladder
    }

    /// Decodes per-slot amplitudes into the accumulated value
    /// `Σ level(slot)·2^slot`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LevelOutOfRange`] on over-range slots and
    /// [`DecodeError::WordOverflow`] if the positional sum exceeds `u64`.
    pub fn decode(&self, amplitudes: &[f64]) -> Result<u64, DecodeError> {
        let mut total: u64 = 0;
        for (slot, &amp) in amplitudes.iter().enumerate() {
            let level = self.ladder.resolve(amp).ok_or_else(|| {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let level = amp.round().max(0.0) as u32;
                DecodeError::LevelOutOfRange {
                    slot,
                    level,
                    max: self.ladder.levels(),
                }
            })?;
            if level > 0 {
                if slot >= 64 {
                    return Err(DecodeError::WordOverflow);
                }
                let term = u64::from(level)
                    .checked_shl(u32::try_from(slot).map_err(|_| DecodeError::WordOverflow)?)
                    .ok_or(DecodeError::WordOverflow)?;
                total = total.checked_add(term).ok_or(DecodeError::WordOverflow)?;
            }
        }
        Ok(total)
    }

    /// Gate count: the ladder plus a positional adder (~`4` gates/bit over
    /// a 32-bit combine path).
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        self.ladder.gate_count() + GateCount::new(32 * 4)
    }

    /// Depth: ladder then combine adder.
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        self.ladder.logic_depth().then(LogicDepth::new(6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_decode_round_trip() {
        let c = SerialConverter::new(8);
        assert_eq!(c.decode(&[1, 0, 1, 1, 0, 0, 0, 0]).unwrap(), 0b1101);
        assert_eq!(c.decode(&[]).unwrap(), 0);
    }

    #[test]
    fn serial_rejects_multilevel() {
        let c = SerialConverter::new(8);
        let err = c.decode(&[0, 2]).unwrap_err();
        assert!(matches!(err, DecodeError::LevelOutOfRange { slot: 1, .. }));
        assert!(err.to_string().contains("slot 1"));
    }

    #[test]
    fn serial_rejects_overflow_past_width() {
        let c = SerialConverter::new(2);
        assert!(c.decode(&[0, 0, 1]).is_err());
        // Dark slots past the width are harmless.
        assert_eq!(c.decode(&[1, 1, 0, 0]).unwrap(), 3);
    }

    #[test]
    fn amplitude_decode_positional() {
        let c = AmplitudeConverter::new(4);
        // levels [3, 0, 2, 1] → 3 + 2·4 + 1·8 = 19.
        assert_eq!(c.decode(&[3.0, 0.0, 2.0, 1.0]).unwrap(), 19);
    }

    #[test]
    fn amplitude_decode_tolerates_analog_noise() {
        let c = AmplitudeConverter::new(4);
        assert_eq!(c.decode(&[2.96, 0.04, 1.98]).unwrap(), 3 + 2 * 4);
    }

    #[test]
    fn amplitude_rejects_over_range() {
        let c = AmplitudeConverter::new(2);
        let err = c.decode(&[3.0]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::LevelOutOfRange {
                slot: 0,
                level: 3,
                max: 2
            }
        ));
    }

    #[test]
    fn gate_models_scale_with_capability() {
        assert!(AmplitudeConverter::new(8).gate_count() > AmplitudeConverter::new(2).gate_count());
        assert!(SerialConverter::new(32).gate_count() > SerialConverter::new(8).gate_count());
    }
}
