//! The 22 nm technology model (DSENT's `Bulk22LVT` equivalent).
//!
//! The paper characterizes electrical logic by feeding gate counts into
//! DSENT's 22 nm low-Vt bulk model. We expose the four coefficients that
//! flow actually consumes, calibrated to the paper's worked example
//! (§IV-A1): a 212-gate, logic-depth-10 CLA occupies ≈0.07 (µm²-scale
//! figure as printed), draws 0.17 µW of static power, and has a 2.95 ns
//! critical-path delay.

use pixel_units::{Area, Energy, Power, Time};

/// Per-gate coefficients of a CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Dynamic energy per gate per switching event.
    pub energy_per_gate_switch: Energy,
    /// Layout area per gate.
    pub area_per_gate: Area,
    /// Static (leakage) power per gate.
    pub leakage_per_gate: Power,
    /// Propagation delay per logic level.
    pub delay_per_level: Time,
}

impl Technology {
    /// The `Bulk22LVT` model as used by the paper.
    ///
    /// * `delay_per_level` = 2.95 ns / 10 levels = 0.295 ns (paper §IV-A1).
    /// * `leakage_per_gate` = 0.17 µW / 212 gates ≈ 0.8 nW.
    /// * `area_per_gate` = 0.5 µm² — a physical 22 nm standard-cell figure;
    ///   the paper's printed "0.07 nm²" for 212 gates is dimensionally
    ///   inconsistent (DESIGN.md §6) so we substitute a realistic value.
    /// * `energy_per_gate_switch` = 0.8 fJ — representative 22 nm dynamic
    ///   energy; absolute energy scaling is recalibrated against Table II
    ///   in `pixel-core::calibration`.
    #[must_use]
    pub fn bulk22lvt() -> Self {
        Self {
            energy_per_gate_switch: Energy::from_femtojoules(0.8),
            area_per_gate: Area::from_square_micrometres(0.5),
            leakage_per_gate: Power::new(0.17e-6 / 212.0),
            delay_per_level: Time::from_nanos(0.295),
        }
    }

    /// Returns a copy with dynamic energy scaled by `factor` (used by the
    /// calibration layer).
    #[must_use]
    pub fn with_energy_scale(mut self, factor: f64) -> Self {
        self.energy_per_gate_switch = self.energy_per_gate_switch * factor;
        self
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::bulk22lvt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk22lvt_reproduces_cla_example() {
        let t = Technology::bulk22lvt();
        // 212 gates → 0.17 µW static power.
        assert!((t.leakage_per_gate.value() * 212.0 - 0.17e-6).abs() < 1e-12);
        // Depth 10 → 2.95 ns.
        assert!((t.delay_per_level.as_nanos() * 10.0 - 2.95).abs() < 1e-9);
    }

    #[test]
    fn energy_scale_only_touches_dynamic_energy() {
        let base = Technology::bulk22lvt();
        let scaled = base.with_energy_scale(2.0);
        assert!((scaled.energy_per_gate_switch / base.energy_per_gate_switch - 2.0).abs() < 1e-12);
        assert_eq!(scaled.area_per_gate, base.area_per_gate);
        assert_eq!(scaled.delay_per_level, base.delay_per_level);
    }
}
