//! Carry-lookahead adder: the paper's gate model (Eq. 5/6) plus a bit-true
//! implementation.
//!
//! Paper §IV-A1 (after Ridha 2013):
//!
//! ```text
//! GC(n) = (n³ + 6n² + 47n) / 6
//! LD(n) = 4 + 2·⌈log₂(n − 1)⌉
//! ```
//!
//! e.g. `GC(8) = 212`, `LD(8) = 10`, and the 4-bit CLA has 58 gates as the
//! paper's worked example states.

use crate::gates::{GateCount, LogicDepth};

/// A carry-lookahead adder of a given bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cla {
    width: u32,
}

impl Cla {
    /// Creates an `width`-bit CLA.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "CLA width must be 1..=64 bits");
        Self { width }
    }

    /// Adder bit width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Gate count per Eq. 5: `(n³ + 6n² + 47n)/6`.
    #[must_use]
    pub fn gate_count(&self) -> GateCount {
        let n = u64::from(self.width);
        GateCount::new((n * n * n + 6 * n * n + 47 * n) / 6)
    }

    /// Logic depth per Eq. 6: `4 + 2·⌈log₂(n−1)⌉` (defined as 4 for n ≤ 2,
    /// where the lookahead tree degenerates).
    #[must_use]
    pub fn logic_depth(&self) -> LogicDepth {
        if self.width <= 2 {
            return LogicDepth::new(4);
        }
        let ceil_log2 = 32 - (self.width - 2).leading_zeros();
        LogicDepth::new(4 + 2 * ceil_log2)
    }

    /// Bit-true addition: returns `(sum, carry_out)` with the sum wrapped
    /// to the adder width, computed structurally through generate/propagate
    /// lookahead rather than native addition. The carries come from a
    /// parallel-prefix (Kogge–Stone) combination of the per-bit generate
    /// and propagate signals — the lookahead tree a hardware CLA builds,
    /// in `⌈log₂ n⌉` doubling steps instead of a bit-serial ripple.
    ///
    /// # Examples
    ///
    /// ```
    /// use pixel_electronics::cla::Cla;
    ///
    /// let cla = Cla::new(4);
    /// assert_eq!(cla.add(7, 8, false), (15, false));
    /// assert_eq!(cla.add(15, 1, false), (0, true)); // wraps with carry
    /// ```
    #[must_use]
    pub fn add(&self, a: u64, b: u64, carry_in: bool) -> (u64, bool) {
        let mask = self.mask();
        let a = a & mask;
        let b = b & mask;
        // Per-bit generate/propagate, then the prefix tree: after step k,
        // `g` holds "carry generated out of bits [i−2ᵏ+1 ..= i]" and `p`
        // holds "carry propagates across bits [0 ..= i]" (ones shifted in
        // keep the truncated low windows propagating).
        let p0 = a ^ b;
        let mut g = a & b;
        let mut p = p0;
        // Six fixed doubling steps cover any width ≤ 64; once a bit's
        // window spans [0..=i] further combining is idempotent, so the
        // straight-line form stays exact for narrow adders too.
        g |= p & (g << 1);
        p &= (p << 1) | 0x1;
        g |= p & (g << 2);
        p &= (p << 2) | 0x3;
        g |= p & (g << 4);
        p &= (p << 4) | 0xF;
        g |= p & (g << 8);
        p &= (p << 8) | 0xFF;
        g |= p & (g << 16);
        p &= (p << 16) | 0xFFFF;
        g |= p & (g << 32);
        p &= (p << 32) | 0xFFFF_FFFF;
        // Carry into bit i is G over [0..=i−1] plus carry-in propagated
        // across [0..=i−1]; bit 0 receives the carry-in itself.
        let mut carries = g << 1;
        if carry_in {
            carries |= (p << 1) | 1;
        }
        let sum = (p0 ^ carries) & mask;
        let msb = self.width - 1;
        let carry_out = (g >> msb) & 1 == 1 || (carry_in && (p >> msb) & 1 == 1);
        (sum, carry_out)
    }

    /// Bit mask covering the adder width.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn paper_gate_counts() {
        assert_eq!(Cla::new(8).gate_count().get(), 212);
        assert_eq!(Cla::new(4).gate_count().get(), 58);
    }

    #[test]
    fn paper_logic_depths() {
        assert_eq!(Cla::new(8).logic_depth().get(), 10);
        // n = 4: 4 + 2·⌈log₂3⌉ = 8.
        assert_eq!(Cla::new(4).logic_depth().get(), 8);
        assert_eq!(Cla::new(2).logic_depth().get(), 4);
    }

    #[test]
    fn gate_count_monotone_in_width() {
        let mut prev = 0;
        for n in 1..=32 {
            let gc = Cla::new(n).gate_count().get();
            assert!(gc > prev, "GC({n}) = {gc} not > {prev}");
            prev = gc;
        }
    }

    #[test]
    fn add_small_examples() {
        let cla = Cla::new(4);
        assert_eq!(cla.add(2, 3, false), (5, false));
        assert_eq!(cla.add(15, 1, false), (0, true));
        assert_eq!(cla.add(15, 0, true), (0, true));
        assert_eq!(cla.add(7, 8, false), (15, false));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Cla::new(0);
    }

    #[test]
    fn add_matches_native_wrapping() {
        let mut rng = SplitMix64::seed_from_u64(0xC1A);
        for _ in 0..256 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let cin = rng.next_bool();
            let width = rng.range_u32(1, 64);
            let cla = Cla::new(width);
            let (sum, cout) = cla.add(a, b, cin);
            let full =
                u128::from(a & cla.mask()) + u128::from(b & cla.mask()) + u128::from(u8::from(cin));
            #[allow(clippy::cast_possible_truncation)]
            {
                assert_eq!(sum, (full as u64) & cla.mask(), "width={width}");
            }
            assert_eq!(cout, full >> width != 0, "width={width}");
        }
    }
}
