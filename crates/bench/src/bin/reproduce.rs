//! Regenerates every table and figure of the PIXEL paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! reproduce [FLAGS] [ARTIFACT...]
//!
//! ARTIFACT    table1|table2|fig4..fig10|power|ablation|...|all (default: all)
//! --list      print the artifact keys and exit
//! --jobs N    sweep worker threads (default: available parallelism)
//! --seed S    override the pinned seeds of the stochastic artifacts
//!             (noise, audit, serve, flightrec, fleet); default keeps
//!             the pinned outputs
//! --quick     smoke-test request counts (outputs not snapshot-pinned)
//! --profile   record spans/counters and print a profile table at the end
//! --trace F   stream span/counter events to F as JSON lines
//! --metrics F write the run's machine-readable JSONL metrics (emitted
//!             by the serve, flightrec, and fleet artifacts) to F
//! --flame F   write collapsed span stacks (flamegraph format) to F
//! ```
//!
//! `reproduce checkjsonl FILE` validates a JSONL metrics/trace file line
//! by line (flat JSON, non-empty, schema-tagged) and fails on the first
//! malformed line.
//!
//! `reproduce lint [ARGS...]` forwards to the `pixel-lint` static
//! analyzer (see `reproduce lint --help`).
//!
//! `reproduce bench [--quick] [--jobs N] [--out FILE]` times the hot
//! paths and writes a `BENCH_functional.json` regression artifact;
//! `reproduce bench --compare OLD NEW` diffs two such artifacts.
//!
//! `reproduce oracle [--quick] [--seed N]` runs the live `pixel-served`
//! daemon against the simulator's prediction and fails on any tolerance
//! breach (wall-clock dependent, so a CI gate rather than a snapshot
//! artifact — see DESIGN.md §12).
//!
//! With no artifact (or `all`) every artifact is printed in paper order.

use std::process::ExitCode;

/// One reproducible artifact: key, title, renderer.
type Artifact = (&'static str, &'static str, fn() -> String);

const ARTIFACTS: [Artifact; 22] = [
    (
        "table1",
        "Table I — VGG16 computations [millions]",
        pixel_bench::table1,
    ),
    (
        "fig4",
        "Figure 4 — Energy/bit of a single MAC unit (lanes × bits/lane)",
        pixel_bench::fig4,
    ),
    (
        "fig5",
        "Figure 5 — Component energy, AlexNet/LeNet/VGG16, 4 lanes",
        pixel_bench::fig5,
    ),
    (
        "fig6",
        "Figure 6 — Fabric area at 4 bits/lane",
        pixel_bench::fig6,
    ),
    (
        "fig7",
        "Figure 7 — Normalized energy, 6 CNNs, 8 lanes",
        pixel_bench::fig7,
    ),
    (
        "fig8",
        "Figure 8 — Geomean latency across 6 CNNs, 8 lanes",
        pixel_bench::fig8,
    ),
    (
        "fig9",
        "Figure 9 — ZFNet per-layer latency, 8 lanes / 8 bits/lane",
        pixel_bench::fig9,
    ),
    (
        "fig10",
        "Figure 10 — Normalized EDP, 6 CNNs, 4 lanes",
        pixel_bench::fig10,
    ),
    (
        "table2",
        "Table II — Energy breakdown [mJ], 4 lanes / 16 bits/lane",
        pixel_bench::table2,
    ),
    (
        "power",
        "Extension — power analysis and performance/W (ZFNet, 4 lanes / 16 bits)",
        pixel_bench::power,
    ),
    (
        "ablation",
        "Extension — sensitivity of the headline EDP claims to calibrated constants",
        pixel_bench::ablation,
    ),
    (
        "scaling",
        "Extension — link-budget scalability bound (§III-C(ii))",
        pixel_bench::scaling,
    ),
    (
        "noise",
        "Extension — OO multiply under receiver amplitude noise",
        pixel_bench::noise,
    ),
    (
        "weights",
        "Extension — photonic weight pre-load vs compute (§III-C(i))",
        pixel_bench::weights,
    ),
    (
        "pam",
        "Extension — PAM-4 line coding vs OOK on the optical latency",
        pixel_bench::pam,
    ),
    (
        "counts",
        "Extension — Table I generalized: per-layer op counts, all six CNNs",
        pixel_bench::counts,
    ),
    (
        "roofline",
        "Extension — compute vs ingress rooflines per design (8 lanes)",
        pixel_bench::roofline,
    ),
    (
        "audit",
        "Extension — counted vs analytic device activity (lit/toggle rates)",
        pixel_bench::audit,
    ),
    (
        "serve",
        "Extension — inference-serving saturation sweep (load × design)",
        pixel_bench::serve,
    ),
    (
        "flightrec",
        "Extension — flight-recorder deep dive on one serving run (OO near the knee)",
        pixel_bench::flightrec,
    ),
    (
        "fleet",
        "Extension — sharded fleet serving: routing policy × shard count × tenant mix",
        pixel_bench::fleet,
    ),
    (
        "archgraph",
        "Extension — workspace architecture graph from the structural lint pass",
        pixel_bench::archgraph,
    ),
];

/// Validates a JSONL file: every line must parse as a flat JSON object
/// carrying a non-empty `schema` tag. Returns a process exit status.
fn check_jsonl(path: &str) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("checkjsonl: cannot read {path:?}: {err}");
            return 1;
        }
    };
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let Some(fields) = pixel_obs::parse_flat_object(line) else {
            eprintln!(
                "checkjsonl: {path}:{}: malformed JSON object: {line}",
                i + 1
            );
            return 1;
        };
        if !fields.iter().any(|(k, v)| k == "schema" && !v.is_empty()) {
            eprintln!("checkjsonl: {path}:{}: missing schema tag: {line}", i + 1);
            return 1;
        }
        lines += 1;
    }
    if lines == 0 {
        eprintln!("checkjsonl: {path} holds no JSONL lines");
        return 1;
    }
    println!("checkjsonl: {path}: {lines} schema-tagged JSONL line(s) OK");
    0
}

fn print_artifact(key: &str, title: &str, render: fn() -> String) {
    println!("== {key}: {title}");
    println!("{}", render());
}

fn print_keys(to_stderr: bool) {
    let emit = |line: String| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for (key, title, _) in ARTIFACTS {
        emit(format!("  {key:<8} {title}"));
    }
    emit("  all      everything above".to_owned());
}

fn main() -> ExitCode {
    // `reproduce lint [...]` forwards straight to the static analyzer:
    // the lint pass is an artifact of the reproduction like any other.
    {
        let forwarded: Vec<String> = std::env::args().skip(1).collect();
        if forwarded.first().is_some_and(|a| a == "lint") {
            return ExitCode::from(pixel_lint::cli::run(&forwarded[1..]));
        }
        // `reproduce bench [...]` likewise forwards to the perf harness.
        if forwarded.first().is_some_and(|a| a == "bench") {
            return ExitCode::from(pixel_bench::perf::run_cli(&forwarded[1..]));
        }
        // `reproduce oracle [...]` runs the simulator-vs-daemon check.
        if forwarded.first().is_some_and(|a| a == "oracle") {
            return ExitCode::from(pixel_serve::oracle::run_cli(&forwarded[1..]));
        }
        // `reproduce checkjsonl FILE` validates a JSONL artifact.
        if forwarded.first().is_some_and(|a| a == "checkjsonl") {
            let [path] = &forwarded[1..] else {
                eprintln!("usage: reproduce checkjsonl FILE");
                return ExitCode::FAILURE;
            };
            return ExitCode::from(check_jsonl(path));
        }
    }
    let mut profile = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut keys: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                print_keys(false);
                return ExitCode::SUCCESS;
            }
            "--profile" => profile = true,
            "--jobs" => {
                let Some(value) = args.next() else {
                    eprintln!("--jobs requires a worker count");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => pixel_core::sweep::set_default_jobs(Some(n)),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {value:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let Some(value) = args.next() else {
                    eprintln!("--seed requires a u64 value");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(s) => pixel_core::seed::set_default_seed(Some(s)),
                    Err(_) => {
                        eprintln!("--seed needs an unsigned 64-bit integer, got {value:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace requires a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path);
            }
            "--metrics" => {
                let Some(path) = args.next() else {
                    eprintln!("--metrics requires a file path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(path);
            }
            "--flame" => {
                let Some(path) = args.next() else {
                    eprintln!("--flame requires a file path");
                    return ExitCode::FAILURE;
                };
                flame_path = Some(path);
            }
            "--quick" => pixel_bench::opts::set_quick(true),
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag:?}; valid flags: --list --jobs <n> --seed <u64> --quick --profile --trace <file> --metrics <file> --flame <file>"
                );
                return ExitCode::FAILURE;
            }
            key => keys.push(key.to_owned()),
        }
    }
    if keys.is_empty() {
        keys.push("all".to_owned());
    }

    // Validate every requested key before doing any work.
    let mut selected: Vec<&Artifact> = Vec::new();
    for key in &keys {
        if key == "all" {
            selected.extend(ARTIFACTS.iter());
        } else if let Some(artifact) = ARTIFACTS.iter().find(|(k, _, _)| k == key) {
            selected.push(artifact);
        } else {
            eprintln!("unknown artifact {key:?}; expected one of:");
            print_keys(true);
            return ExitCode::FAILURE;
        }
    }

    if profile || trace_path.is_some() || flame_path.is_some() {
        pixel_obs::enable();
    }
    if let Some(path) = &trace_path {
        match std::fs::File::create(path) {
            Ok(file) => pixel_obs::install_trace(Box::new(std::io::BufWriter::new(file))),
            Err(err) => {
                eprintln!("cannot open trace file {path:?}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    {
        let _run = pixel_obs::span("reproduce");
        for (key, title, render) in &selected {
            print_artifact(key, title, *render);
        }
    }

    pixel_obs::finish_trace();
    if let Some(path) = &metrics_path {
        let jsonl = pixel_bench::opts::take_metrics();
        if jsonl.is_empty() {
            eprintln!(
                "--metrics: the selected artifacts emitted no metrics (serve and flightrec do)"
            );
        }
        if let Err(err) = std::fs::write(path, jsonl) {
            eprintln!("cannot write metrics file {path:?}: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &flame_path {
        let stacks = pixel_obs::SpanNode::build(&pixel_obs::snapshot()).collapsed_stacks();
        if let Err(err) = std::fs::write(path, stacks) {
            eprintln!("cannot write flame file {path:?}: {err}");
            return ExitCode::FAILURE;
        }
    }
    if profile {
        println!("== profile");
        print!("{}", pixel_obs::profile_table());
        let snap = pixel_obs::snapshot();
        let count = |name: &str| snap.counter(name).unwrap_or(0);
        println!(
            "eval cache: {} hits / {} misses; network-counts cache: {} hits / {} misses ({} sweep workers)",
            count("eval.cache_hit"),
            count("eval.cache_miss"),
            count("eval.counts_hit"),
            count("eval.counts_miss"),
            pixel_core::sweep::default_jobs(),
        );
    }
    ExitCode::SUCCESS
}
