//! Regenerates every table and figure of the PIXEL paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! reproduce [table1|table2|fig4..fig10|power|ablation|scaling|noise|weights|all]
//! ```
//!
//! With no argument (or `all`) every artifact is printed in paper order.

use std::process::ExitCode;

/// One reproducible artifact: key, title, renderer.
type Artifact = (&'static str, &'static str, fn() -> String);

const ARTIFACTS: [Artifact; 17] = [
    ("table1", "Table I — VGG16 computations [millions]", pixel_bench::table1),
    (
        "fig4",
        "Figure 4 — Energy/bit of a single MAC unit (lanes × bits/lane)",
        pixel_bench::fig4,
    ),
    (
        "fig5",
        "Figure 5 — Component energy, AlexNet/LeNet/VGG16, 4 lanes",
        pixel_bench::fig5,
    ),
    (
        "fig6",
        "Figure 6 — Fabric area at 4 bits/lane",
        pixel_bench::fig6,
    ),
    (
        "fig7",
        "Figure 7 — Normalized energy, 6 CNNs, 8 lanes",
        pixel_bench::fig7,
    ),
    (
        "fig8",
        "Figure 8 — Geomean latency across 6 CNNs, 8 lanes",
        pixel_bench::fig8,
    ),
    (
        "fig9",
        "Figure 9 — ZFNet per-layer latency, 8 lanes / 8 bits/lane",
        pixel_bench::fig9,
    ),
    (
        "fig10",
        "Figure 10 — Normalized EDP, 6 CNNs, 4 lanes",
        pixel_bench::fig10,
    ),
    (
        "table2",
        "Table II — Energy breakdown [mJ], 4 lanes / 16 bits/lane",
        pixel_bench::table2,
    ),
    (
        "power",
        "Extension — power analysis and performance/W (ZFNet, 4 lanes / 16 bits)",
        pixel_bench::power,
    ),
    (
        "ablation",
        "Extension — sensitivity of the headline EDP claims to calibrated constants",
        pixel_bench::ablation,
    ),
    (
        "scaling",
        "Extension — link-budget scalability bound (§III-C(ii))",
        pixel_bench::scaling,
    ),
    (
        "noise",
        "Extension — OO multiply under receiver amplitude noise",
        pixel_bench::noise,
    ),
    (
        "weights",
        "Extension — photonic weight pre-load vs compute (§III-C(i))",
        pixel_bench::weights,
    ),
    (
        "pam",
        "Extension — PAM-4 line coding vs OOK on the optical latency",
        pixel_bench::pam,
    ),
    (
        "counts",
        "Extension — Table I generalized: per-layer op counts, all six CNNs",
        pixel_bench::counts,
    ),
    (
        "roofline",
        "Extension — compute vs ingress rooflines per design (8 lanes)",
        pixel_bench::roofline,
    ),
];

fn print_artifact(key: &str, title: &str, render: fn() -> String) {
    println!("== {key}: {title}");
    println!("{}", render());
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    if arg == "all" {
        for (key, title, render) in ARTIFACTS {
            print_artifact(key, title, render);
        }
        return ExitCode::SUCCESS;
    }
    if let Some((key, title, render)) = ARTIFACTS.iter().find(|(k, _, _)| *k == arg) {
        print_artifact(key, title, *render);
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown artifact {arg:?}; expected one of:");
        for (key, title, _) in ARTIFACTS {
            eprintln!("  {key:<8} {title}");
        }
        eprintln!("  all      everything above");
        ExitCode::FAILURE
    }
}
