//! Run-scoped options and side-channel buffers shared between the
//! artifact generators and the `reproduce` CLI.
//!
//! The artifact registry is a table of plain `fn() -> String` renderers,
//! so flags that change *how* an artifact renders (`--quick`) or make it
//! emit a second machine-readable stream (`--metrics`) cannot be passed
//! as arguments. This module holds that state as process globals: a
//! quick-mode flag the generators consult and an accumulating JSONL
//! metrics buffer ([`record_metrics`]) the CLI drains once after the run
//! ([`take_metrics`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static QUICK: AtomicBool = AtomicBool::new(false);
static METRICS: Mutex<String> = Mutex::new(String::new());

/// The metrics buffer, recovering from poisoning (a panicking artifact
/// thread cannot corrupt an append-only string).
fn lock_metrics() -> MutexGuard<'static, String> {
    METRICS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Switches the artifact generators into quick mode: smoke-test request
/// counts instead of the pinned artifact grids. Quick outputs are **not**
/// comparable to the snapshot files.
pub fn set_quick(quick: bool) {
    QUICK.store(quick, Ordering::Relaxed);
}

/// Whether quick mode is on.
#[must_use]
pub fn quick() -> bool {
    QUICK.load(Ordering::Relaxed)
}

/// Appends a chunk of newline-terminated JSONL to the run's metrics
/// buffer.
pub fn record_metrics(jsonl: &str) {
    lock_metrics().push_str(jsonl);
}

/// Drains and returns the metrics buffer (what `--metrics <file>`
/// writes).
#[must_use]
pub fn take_metrics() -> String {
    std::mem::take(&mut *lock_metrics())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_buffer_accumulates_and_drains() {
        // Serialize against other tests in this binary via the buffer
        // itself: drain first, then check round-trip.
        let _ = take_metrics();
        record_metrics("{\"a\":1}\n");
        record_metrics("{\"b\":2}\n");
        assert_eq!(take_metrics(), "{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(take_metrics(), "");
    }
}
