//! Minimal std-only timing harness for the `benches/` binaries.
//!
//! The bench binaries (`cargo bench`) print a reproduced artifact once
//! and then measure how long regenerating it takes. This module provides
//! the measurement loop: a short warm-up, then timed batches until a
//! wall-clock budget is spent, reporting both the mean per-iteration
//! time across every repetition and the true median of the per-rep
//! means.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one measurement (one rep, or an aggregate over reps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations executed across every timed repetition.
    pub iterations: u64,
    /// Mean wall-clock time per iteration across all reps, in
    /// nanoseconds. Always finite and strictly positive: the timed loop
    /// runs at least one iteration and the elapsed time is clamped to
    /// ≥ 1 ns, so `ops_per_sec = 1e9 / mean_ns` can never be NaN,
    /// infinite, or zero.
    pub mean_ns: f64,
    /// Median of the per-repetition mean iteration times, in
    /// nanoseconds (for an even rep count, the average of the two
    /// middle reps). For a single [`measure`] this equals [`Self::mean_ns`].
    pub median_ns: f64,
}

impl Measurement {
    /// Mean per-iteration time as a [`Duration`].
    #[must_use]
    pub fn mean(&self) -> Duration {
        Duration::from_secs_f64(self.mean_ns / 1e9)
    }

    /// Median per-iteration time as a [`Duration`].
    #[must_use]
    pub fn median(&self) -> Duration {
        Duration::from_secs_f64(self.median_ns / 1e9)
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Elapsed nanoseconds since `start`, clamped so a sub-tick timer (or a
/// closure faster than the clock resolution) can never report zero.
fn elapsed_ns_since(start: Instant) -> f64 {
    (start.elapsed().as_secs_f64() * 1e9).max(1.0)
}

/// Times `f` for roughly `budget`, after a tenth of it as warm-up.
/// Returns the mean per-iteration time over the timed phase. The timed
/// loop always executes at least one iteration — a zero (or tiny)
/// budget degrades to timing a single call, never to a zero-sample
/// measurement.
pub fn measure<T>(budget: Duration, mut f: impl FnMut() -> T) -> Measurement {
    let warmup_deadline = Instant::now() + budget / 10;
    while Instant::now() < warmup_deadline {
        black_box(f());
    }
    let start = Instant::now();
    let deadline = start + budget;
    let mut iterations = 0u64;
    loop {
        black_box(f());
        iterations += 1;
        if Instant::now() >= deadline {
            break;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let mean_ns = elapsed_ns_since(start) / iterations as f64;
    Measurement {
        iterations,
        mean_ns,
        median_ns: mean_ns,
    }
}

/// Times a single call of `f` — for workloads whose one execution
/// already costs seconds (full-CNN forwards), where an iteration loop
/// would waste minutes re-measuring the measurable.
pub fn measure_single<T>(mut f: impl FnMut() -> T) -> Measurement {
    let start = Instant::now();
    black_box(f());
    let ns = elapsed_ns_since(start);
    Measurement {
        iterations: 1,
        mean_ns: ns,
        median_ns: ns,
    }
}

/// Median of per-rep means: the middle value, or for an even count the
/// average of the two middle values.
fn median_of(mut means: Vec<f64>) -> f64 {
    means.sort_by(f64::total_cmp);
    let n = means.len();
    if n.is_multiple_of(2) {
        // lint:allow(P104) the even-count branch implies n >= 2, so n/2 - 1 is in range
        f64::midpoint(means[n / 2 - 1], means[n / 2])
    } else {
        means[n / 2]
    }
}

/// Runs [`measure`] `reps` times and aggregates: `median_ns` is the
/// true median of the per-rep means (robust against scheduler noise on
/// loaded machines — what the `reproduce bench` regression harness
/// records), `mean_ns` the iteration-weighted mean across all reps, and
/// `iterations` the total.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn measure_median<T>(budget: Duration, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(reps > 0, "at least one repetition");
    let runs: Vec<Measurement> = (0..reps).map(|_| measure(budget, &mut f)).collect();
    let iterations: u64 = runs.iter().map(|m| m.iterations).sum();
    #[allow(clippy::cast_precision_loss)]
    let total_ns: f64 = runs.iter().map(|m| m.mean_ns * m.iterations as f64).sum();
    #[allow(clippy::cast_precision_loss)]
    let mean_ns = total_ns / iterations as f64;
    Measurement {
        iterations,
        mean_ns,
        median_ns: median_of(runs.iter().map(|m| m.mean_ns).collect()),
    }
}

/// Times `f` with the default 200 ms budget and prints one
/// `name ... mean (N iters)` report line.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    let m = measure(Duration::from_millis(200), f);
    println!(
        "bench {name:<40} {:>12}/iter  ({} iters)",
        format_duration(m.mean()),
        m.iterations
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_at_least_one_iteration() {
        let m = measure(Duration::from_millis(5), || 2 + 2);
        assert!(m.iterations >= 1);
        assert!(m.mean_ns > 0.0);
    }

    #[test]
    fn zero_budget_still_yields_a_usable_sample() {
        // Calibration can hand the loop a degenerate budget; a no-op
        // closure can finish under the clock tick. Neither may produce a
        // zero-iteration or zero-duration sample: the derived ops/s must
        // stay finite and nonzero.
        for budget in [Duration::ZERO, Duration::from_nanos(1)] {
            let m = measure(budget, || ());
            assert!(m.iterations >= 1, "budget {budget:?}");
            let ops_per_sec = 1e9 / m.median_ns;
            assert!(
                ops_per_sec.is_finite() && ops_per_sec > 0.0,
                "budget {budget:?}: ops/s {ops_per_sec}"
            );
        }
        let single = measure_single(|| ());
        assert_eq!(single.iterations, 1);
        assert!(single.median_ns >= 1.0);
    }

    #[test]
    fn mean_tracks_sleep_scale() {
        let m = measure(Duration::from_millis(30), || {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(m.mean() >= Duration::from_millis(1), "mean {:?}", m.mean());
    }

    #[test]
    fn median_of_reps_is_between_extremes() {
        let mut delay = [4u64, 1, 2].into_iter().cycle();
        let m = measure_median(Duration::from_millis(10), 3, || {
            std::thread::sleep(Duration::from_millis(delay.next().unwrap()));
        });
        assert!(m.iterations >= 3);
        assert!(m.median() >= Duration::from_millis(1));
        assert!(m.mean_ns > 0.0);
    }

    #[test]
    fn median_interpolates_even_rep_counts() {
        assert_eq!(median_of(vec![3.0, 1.0, 2.0]), 2.0);
        // Even count: average of the two middle reps, not either one.
        assert_eq!(median_of(vec![4.0, 1.0, 2.0, 100.0]), 3.0);
        assert_eq!(median_of(vec![5.0]), 5.0);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
