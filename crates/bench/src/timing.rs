//! Minimal std-only timing harness for the `benches/` binaries.
//!
//! The bench binaries (`cargo bench`) print a reproduced artifact once
//! and then measure how long regenerating it takes. This module provides
//! the measurement loop: a short warm-up, then timed batches until a
//! wall-clock budget is spent, reporting the mean per-iteration time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations executed during the timed phase.
    pub iterations: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
}

impl Measurement {
    /// Mean time in nanoseconds.
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        self.mean.as_secs_f64() * 1e9
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times `f` for roughly `budget`, after a tenth of it as warm-up.
/// Returns the mean per-iteration time over the timed phase.
pub fn measure<T>(budget: Duration, mut f: impl FnMut() -> T) -> Measurement {
    let warmup_deadline = Instant::now() + budget / 10;
    while Instant::now() < warmup_deadline {
        black_box(f());
    }
    let start = Instant::now();
    let deadline = start + budget;
    let mut iterations = 0u64;
    while Instant::now() < deadline {
        black_box(f());
        iterations += 1;
    }
    let elapsed = start.elapsed();
    Measurement {
        iterations,
        mean: elapsed / u32::try_from(iterations.max(1)).unwrap_or(u32::MAX),
    }
}

/// Runs [`measure`] `reps` times and returns the repetition with the
/// median mean — robust against scheduler noise on loaded machines,
/// which is what the `reproduce bench` regression harness records.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn measure_median<T>(budget: Duration, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(reps > 0, "at least one repetition");
    let mut runs: Vec<Measurement> = (0..reps).map(|_| measure(budget, &mut f)).collect();
    runs.sort_by_key(|m| m.mean);
    runs[runs.len() / 2]
}

/// Times `f` with the default 200 ms budget and prints one
/// `name ... mean (N iters)` report line.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    let m = measure(Duration::from_millis(200), f);
    println!(
        "bench {name:<40} {:>12}/iter  ({} iters)",
        format_duration(m.mean),
        m.iterations
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_at_least_one_iteration() {
        let m = measure(Duration::from_millis(5), || 2 + 2);
        assert!(m.iterations >= 1);
        assert!(m.mean.as_nanos() > 0 || m.iterations > 1_000);
    }

    #[test]
    fn mean_tracks_sleep_scale() {
        let m = measure(Duration::from_millis(30), || {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(m.mean >= Duration::from_millis(1), "mean {:?}", m.mean);
    }

    #[test]
    fn median_of_reps_is_between_extremes() {
        let mut delay = [4u64, 1, 2].into_iter().cycle();
        let m = measure_median(Duration::from_millis(10), 3, || {
            std::thread::sleep(Duration::from_millis(delay.next().unwrap()));
        });
        assert!(m.iterations >= 1);
        assert!(m.mean >= Duration::from_millis(1));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
