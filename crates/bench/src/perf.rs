//! The `reproduce bench` performance-regression harness.
//!
//! Times the repository's hot paths — the bit-true functional MACs, the
//! fabric convolution in both its bit-plane batched and scalar
//! dataflows, full quantized forwards of every paper CNN, and the
//! serving simulator's event loop — and writes true medians (plus
//! means) to a `BENCH_functional.json` artifact (schema [`SCHEMA`]).
//!
//! Three CI-facing entry points sit on top of the artifact:
//!
//! * `--compare OLD NEW` renders per-bench ops/s deltas. Slowdowns are
//!   advisory (wall time on shared runners is noisy), but malformed
//!   files, missing benches, and a `schema`/`mode` disagreement between
//!   the two reports hard-fail — a mean-statistics baseline or a quick
//!   run is never silently compared against a median full run.
//! * `--check FILE` asserts the *in-run* batched-vs-scalar fabric
//!   speedup floor ([`MIN_BATCH_SPEEDUP`]) and that every bench's
//!   throughput is finite and nonzero — a machine-independent gate,
//!   since both sides of each ratio come from the same run.

use crate::timing;
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::functional_fabric::{ConvDataflow, FunctionalFabric};
use pixel_core::omac::engine_for;
use pixel_dnn::inference::{forward, replay_layers, DirectMac, LayerWeights, MacEngine};
use pixel_dnn::layer::{Layer, Shape};
use pixel_dnn::quant::Precision;
use pixel_dnn::tensor::Tensor;
use pixel_dnn::zoo;
use pixel_serve::arrivals::Workload;
use pixel_serve::sim::{simulate, ServeConfig};
use pixel_units::rng::SplitMix64;
use std::time::Duration;

/// Schema tag written into (and required from) every bench file.
/// `pixel-bench/2` reports a true median-of-reps as `median_ns` plus the
/// iteration-weighted `mean_ns`; `pixel-bench/1` mislabeled a mean as
/// `median_ns` and is rejected.
pub const SCHEMA: &str = "pixel-bench/2";

/// Images per iteration of the batched fabric-conv benches: enough that
/// every bit-plane group is full (1600 windows = 25 exact groups of 64).
pub const BATCH_IMAGES: usize = 16;

/// Minimum in-run ops/s ratio of `fabric_conv_X` (batched) over
/// `fabric_conv_X_scalar` that `--check` enforces per design. The
/// measured ratios are ~10× (EE; its scalar baseline is the least
/// slow) and 35–50× (OE/OO), so 6× leaves noise headroom while still
/// catching any regression to per-window serial execution.
pub const MIN_BATCH_SPEEDUP: f64 = 6.0;

/// Every bench the harness runs, in run order. Comparison hard-fails if
/// a file is missing any of these. The `fabric_conv_{ee,oe,oo}` keys
/// time the production dataflow — `conv2d_batch` over [`BATCH_IMAGES`]
/// images through the bit-plane engine paths — while the `_scalar`
/// variants pin the one-window-at-a-time reference on the same
/// workload shape.
pub const EXPECTED: [&str; 17] = [
    "functional_mac_direct",
    "functional_mac_ee",
    "functional_mac_oe",
    "functional_mac_oo",
    "fabric_conv_ee",
    "fabric_conv_oe",
    "fabric_conv_oo",
    "fabric_conv_ee_scalar",
    "fabric_conv_oe_scalar",
    "fabric_conv_oo_scalar",
    "forward_lenet_direct",
    "forward_vgg16_direct",
    "forward_alexnet_direct",
    "forward_zfnet_direct",
    "forward_resnet34_direct",
    "forward_googlenet_direct",
    "serve_simulate",
];

/// One timed hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable bench key (one of [`EXPECTED`]).
    pub name: &'static str,
    /// Total iterations across every timed repetition.
    pub iterations: u64,
    /// True median of the per-repetition mean iteration times, ns.
    pub median_ns: f64,
    /// Iteration-weighted mean time per iteration across all reps, ns.
    pub mean_ns: f64,
    /// Domain operations per iteration (MACs, requests, or inferences).
    pub ops_per_iter: u64,
    /// `ops_per_iter` scaled by the median time.
    pub ops_per_sec: f64,
}

fn result(name: &'static str, m: timing::Measurement, ops_per_iter: u64) -> BenchResult {
    #[allow(clippy::cast_precision_loss)]
    let ops_per_sec = ops_per_iter as f64 / (m.median_ns / 1e9);
    BenchResult {
        name,
        iterations: m.iterations,
        median_ns: m.median_ns,
        mean_ns: m.mean_ns,
        ops_per_iter,
        ops_per_sec,
    }
}

fn window_operands(len: usize, bits: u32, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let limit = (1u64 << bits) - 1;
    let n = (0..len).map(|_| rng.range_u64(0, limit)).collect();
    let s = (0..len).map(|_| rng.range_u64(0, limit)).collect();
    (n, s)
}

/// The fabric-conv workload every regression run times: 12×12×8 inputs
/// through 8 filters of 3×3 at stride 1 (100 windows of 72 words × 8
/// filters = 57 600 MACs per image). The batched benches run
/// [`BATCH_IMAGES`] such images per iteration.
fn conv_case() -> (Layer, Vec<Tensor>, LayerWeights) {
    let mut rng = SplitMix64::seed_from_u64(0xC0);
    let layer = Layer::conv("Conv", Shape::square(12, 8), 8, 3, 1);
    let inputs = (0..BATCH_IMAGES)
        .map(|_| Tensor::from_fn(Shape::square(12, 8), |_, _, _| rng.range_u64(0, 15)))
        .collect();
    let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
    (layer, inputs, weights)
}

/// Runs every bench. `quick` shrinks the measurement budget (fewer
/// repetitions of a shorter window), not the workloads, so quick and
/// full runs of the same build measure the same code paths. The
/// full-CNN forward replays are single-shot in either mode — one VGG16
/// replay already costs seconds, which *is* the measurement.
#[must_use]
pub fn run(quick: bool, jobs: usize) -> Vec<BenchResult> {
    let (budget, reps) = if quick {
        (Duration::from_millis(60), 3)
    } else {
        (Duration::from_millis(200), 5)
    };
    let mut out = Vec::with_capacity(EXPECTED.len());

    // Functional MAC units: one 72-word window (a 3×3×8 kernel), the
    // inner loop of every fabric convolution.
    let (n, s) = window_operands(72, 4, 0xBEEC);
    let m = timing::measure_median(budget, reps, || DirectMac.inner_product(&n, &s));
    out.push(result("functional_mac_direct", m, n.len() as u64));
    // Per-design names come straight from EXPECTED, which lists the
    // three MAC benches (then the conv benches) in ALL order.
    for (design, name) in Design::ALL.into_iter().zip(EXPECTED[1..4].iter()) {
        let engine = engine_for(&AcceleratorConfig::new(design, 4, 4));
        let m = timing::measure_median(budget, reps, || engine.inner_product(&n, &s));
        out.push(result(name, m, n.len() as u64));
    }

    // Fabric convolution end to end: transport + tiles + OMACs. The
    // headline benches run the bit-plane batched dataflow over a full
    // image batch; the `_scalar` benches pin the serial reference on a
    // single image of the same case.
    let (layer, inputs, weights) = conv_case();
    let e = layer.output_feature_size();
    let macs_per_image = (e * e * 8 * 72) as u64;
    for (design, name) in Design::ALL.into_iter().zip(EXPECTED[4..7].iter()) {
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
        let m = timing::measure_median(budget, reps, || {
            fabric
                .conv2d_batch(&layer, &inputs, &weights, jobs)
                // lint:allow(P002) the bench workload is shape-consistent by construction
                .expect("bench conv workload is shape-consistent")
        });
        out.push(result(name, m, macs_per_image * BATCH_IMAGES as u64));
    }
    for (design, name) in Design::ALL.into_iter().zip(EXPECTED[7..10].iter()) {
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
        let m = timing::measure_median(budget, reps, || {
            fabric
                .conv2d_with_dataflow(&layer, &inputs[0], &weights, jobs, ConvDataflow::Scalar)
                // lint:allow(P002) the bench workload is shape-consistent by construction
                .expect("bench conv workload is shape-consistent")
        });
        out.push(result(name, m, macs_per_image));
    }

    // Full quantized LeNet forward pass on the integer reference engine
    // (LeNet's table is the one zoo network that chains end to end).
    let net = zoo::lenet();
    let precision = Precision::new(4);
    let mut rng = SplitMix64::seed_from_u64(0x1E7);
    let lenet_weights: Vec<LayerWeights> = net
        .layers()
        .iter()
        .map(|l| LayerWeights::generate(l, || rng.range_u64(0, precision.max_value())))
        .collect();
    // lint:allow(P002) the zoo network always has at least one layer
    let in_shape = net.layers().first().expect("lenet has layers").input;
    let lenet_input = Tensor::from_fn(in_shape, |_, _, _| rng.range_u64(0, precision.max_value()));
    let m = timing::measure_median(budget, reps, || {
        forward(&net, &lenet_input, &lenet_weights, &DirectMac, precision)
            // lint:allow(P002) zoo networks are shape-consistent by construction
            .expect("lenet forward is shape-consistent")
    });
    out.push(result("forward_lenet_direct", m, 1));

    // The five remaining paper CNNs, via the layer replay (their Table-I
    // derived layer lists are not chainable end to end): every layer
    // executes once on operands of its declared shape — the network's
    // full tabulated MAC work — timed as one shot.
    let others: Vec<_> = zoo::all_networks()
        .into_iter()
        .filter(|net| net.name() != "LeNet")
        .collect();
    debug_assert_eq!(others.len(), EXPECTED[11..16].len());
    for (net, name) in others.iter().zip(EXPECTED[11..16].iter()) {
        let m = timing::measure_single(|| {
            replay_layers(net, &DirectMac, precision, 2026)
                // lint:allow(P002) zoo layer tables are self-consistent by construction
                .expect("zoo layer replay is shape-consistent")
        });
        out.push(result(name, m, 1));
    }

    // The serving simulator's event loop under the paper mix.
    let workload = Workload::paper_mix();
    let ctx = pixel_core::model::EvalContext::new();
    let serve_config = ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), 2.0, 400, 2026);
    let m = timing::measure_median(budget, reps, || simulate(&workload, &ctx, &serve_config));
    out.push(result("serve_simulate", m, serve_config.requests as u64));

    out
}

/// Renders the results as a `BENCH_functional.json` document.
#[must_use]
pub fn to_json(results: &[BenchResult], quick: bool, jobs: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"ops_per_iter\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.name,
            r.iterations,
            r.median_ns,
            r.mean_ns,
            r.ops_per_iter,
            r.ops_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// A bench file parsed back for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Worker threads the run used.
    pub jobs: u64,
    /// Parsed bench entries.
    pub benches: Vec<ParsedBench>,
}

/// One parsed entry of a bench file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedBench {
    /// Bench key.
    pub name: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Throughput at the median.
    pub ops_per_sec: f64,
}

fn extract_str(text: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing key {key:?}"))?;
    let rest = text[at + pat.len()..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("key {key:?} is not a string"))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated string for key {key:?}"))?;
    Ok(rest[..end].to_owned())
}

fn extract_num(text: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing key {key:?}"))?;
    let rest = text[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|err| format!("key {key:?} is not a number: {err}"))
}

/// Parses a `BENCH_functional.json` document.
///
/// # Errors
///
/// Returns a message if the schema tag mismatches, any required key is
/// absent or mistyped, or any of the [`EXPECTED`] benches is missing.
pub fn parse(text: &str) -> Result<BenchFile, String> {
    let schema = extract_str(text, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema {schema:?}, want {SCHEMA:?}"));
    }
    let mode = extract_str(text, "mode")?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let jobs = extract_num(text, "jobs")? as u64;
    let at = text
        .find("\"benches\":")
        .ok_or_else(|| "missing key \"benches\"".to_owned())?;
    let body = &text[at..];
    let open = body
        .find('[')
        .ok_or_else(|| "\"benches\" is not an array".to_owned())?;
    let close = body
        .rfind(']')
        .ok_or_else(|| "unterminated \"benches\" array".to_owned())?;
    let mut benches = Vec::new();
    let mut rest = &body[open + 1..close];
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| "unterminated bench object".to_owned())?
            + start;
        let obj = &rest[start..=end];
        benches.push(ParsedBench {
            name: extract_str(obj, "name")?,
            median_ns: extract_num(obj, "median_ns")?,
            mean_ns: extract_num(obj, "mean_ns")?,
            ops_per_sec: extract_num(obj, "ops_per_sec")?,
        });
        rest = &rest[end + 1..];
    }
    for want in EXPECTED {
        if !benches.iter().any(|b| b.name == want) {
            return Err(format!("bench {want:?} missing from file"));
        }
    }
    Ok(BenchFile {
        mode,
        jobs,
        benches,
    })
}

/// Renders a comparison of two parsed bench files: per-bench ops/sec
/// deltas of `new` relative to `old`, flagging slowdowns beyond
/// `threshold` (e.g. `0.25` = 25 % slower) without failing on them.
///
/// # Errors
///
/// Returns a message — a hard failure, not an advisory — if the two
/// reports disagree on `mode`: a quick run's medians are not comparable
/// to a full run's, so such a comparison would only launder noise.
/// (Schema disagreement is impossible past [`parse`], which admits only
/// [`SCHEMA`].)
pub fn compare(old: &BenchFile, new: &BenchFile, threshold: f64) -> Result<String, String> {
    if old.mode != new.mode {
        return Err(format!(
            "mode mismatch: old is {:?}, new is {:?}; rerun with matching modes",
            old.mode, new.mode
        ));
    }
    let mut s = format!(
        "bench comparison (old: {} mode, jobs {}; new: {} mode, jobs {})\n",
        old.mode, old.jobs, new.mode, new.jobs
    );
    s.push_str(&format!(
        "{:<24} {:>14} {:>14} {:>9}\n",
        "bench", "old ops/s", "new ops/s", "delta"
    ));
    for entry in &new.benches {
        let Some(base) = old.benches.iter().find(|b| b.name == entry.name) else {
            s.push_str(&format!("{:<24} (new bench, no baseline)\n", entry.name));
            continue;
        };
        let delta = if base.ops_per_sec > 0.0 {
            entry.ops_per_sec / base.ops_per_sec - 1.0
        } else {
            0.0
        };
        let flag = if delta < -threshold {
            "  << slower than baseline (advisory)"
        } else {
            ""
        };
        s.push_str(&format!(
            "{:<24} {:>14.0} {:>14.0} {:>+8.1}%{}\n",
            entry.name,
            base.ops_per_sec,
            entry.ops_per_sec,
            delta * 100.0,
            flag
        ));
    }
    Ok(s)
}

/// Verifies the machine-independent invariants of one bench report: the
/// in-run batched-over-scalar fabric speedup is at least
/// [`MIN_BATCH_SPEEDUP`] per design, and every bench's throughput is
/// finite and nonzero. Both sides of each ratio come from the same run
/// on the same machine, so this gate — unlike cross-run wall-time
/// deltas — can hard-fail CI without flaking on runner load.
///
/// # Errors
///
/// Returns the list of violated invariants.
pub fn check(file: &BenchFile) -> Result<String, String> {
    let lookup = |name: &str| -> Result<&ParsedBench, String> {
        file.benches
            .iter()
            .find(|b| b.name == name)
            .ok_or_else(|| format!("bench {name:?} missing"))
    };
    let mut s = String::from("bench invariants\n");
    let mut failures = Vec::new();
    for bench in &file.benches {
        if !(bench.ops_per_sec.is_finite() && bench.ops_per_sec > 0.0) {
            failures.push(format!(
                "{}: ops_per_sec {} is not finite and positive",
                bench.name, bench.ops_per_sec
            ));
        }
    }
    for design in ["ee", "oe", "oo"] {
        let batched = lookup(&format!("fabric_conv_{design}"))?;
        let scalar = lookup(&format!("fabric_conv_{design}_scalar"))?;
        let ratio = batched.ops_per_sec / scalar.ops_per_sec;
        let ok = ratio >= MIN_BATCH_SPEEDUP;
        s.push_str(&format!(
            "fabric_conv_{design:<3} batched/scalar {ratio:>6.1}x (floor {MIN_BATCH_SPEEDUP}x) {}\n",
            if ok { "ok" } else { "FAIL" }
        ));
        if !ok {
            failures.push(format!(
                "fabric_conv_{design}: batched/scalar speedup {ratio:.1}x below the {MIN_BATCH_SPEEDUP}x floor"
            ));
        }
    }
    if failures.is_empty() {
        s.push_str("all bench invariants hold\n");
        Ok(s)
    } else {
        Err(failures.join("\n"))
    }
}

fn print_results(results: &[BenchResult]) {
    for r in results {
        let per_iter_ms = r.median_ns / 1e6;
        println!(
            "bench {:<24} {:>10.3} ms/iter  {:>14.0} ops/s  ({} iters)",
            r.name, per_iter_ms, r.ops_per_sec, r.iterations
        );
    }
}

/// CLI for `reproduce bench`: runs the harness and writes the JSON
/// artifact, compares two existing artifacts, or checks one artifact's
/// in-run invariants.
///
/// ```text
/// reproduce bench [--quick] [--jobs N] [--out FILE]
/// reproduce bench --compare OLD NEW [--threshold PCT]
/// reproduce bench --check FILE
/// ```
///
/// Returns a process exit code: comparison is advisory on slowdowns but
/// exits nonzero on unreadable/malformed files, missing benches, or a
/// `schema`/`mode` disagreement; `--check` exits nonzero when the
/// batched-fabric speedup floor or a throughput sanity bound is
/// violated.
#[must_use]
pub fn run_cli(args: &[String]) -> u8 {
    let mut quick = false;
    let mut jobs = 1usize;
    let mut out_path = String::from("BENCH_functional.json");
    let mut compare_paths: Option<(String, String)> = None;
    let mut check_path: Option<String> = None;
    let mut threshold = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let Some(value) = it.next() else {
                    eprintln!("--jobs requires a worker count");
                    return 2;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {value:?}");
                        return 2;
                    }
                }
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out requires a file path");
                    return 2;
                };
                out_path = path.clone();
            }
            "--compare" => {
                let (Some(old), Some(new)) = (it.next(), it.next()) else {
                    eprintln!("--compare requires OLD and NEW file paths");
                    return 2;
                };
                compare_paths = Some((old.clone(), new.clone()));
            }
            "--check" => {
                let Some(path) = it.next() else {
                    eprintln!("--check requires a bench file path");
                    return 2;
                };
                check_path = Some(path.clone());
            }
            "--threshold" => {
                let Some(value) = it.next() else {
                    eprintln!("--threshold requires a percentage");
                    return 2;
                };
                match value.parse::<f64>() {
                    Ok(p) if p > 0.0 => threshold = p / 100.0,
                    _ => {
                        eprintln!("--threshold needs a positive percentage, got {value:?}");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown bench argument {other:?}; usage: reproduce bench [--quick] [--jobs N] [--out FILE] | --compare OLD NEW [--threshold PCT] | --check FILE"
                );
                return 2;
            }
        }
    }

    let read = |path: &str| -> Result<BenchFile, String> {
        let text =
            std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        parse(&text).map_err(|err| format!("{path}: {err}"))
    };

    if let Some(path) = check_path {
        return match read(&path).and_then(|file| check(&file)) {
            Ok(report) => {
                print!("{report}");
                0
            }
            Err(err) => {
                eprintln!("bench check: {err}");
                1
            }
        };
    }

    if let Some((old_path, new_path)) = compare_paths {
        match (read(&old_path), read(&new_path)) {
            (Ok(old), Ok(new)) => match compare(&old, &new, threshold) {
                Ok(report) => {
                    print!("{report}");
                    0
                }
                Err(err) => {
                    eprintln!("bench compare: {err}");
                    1
                }
            },
            (old, new) => {
                for side in [old, new] {
                    if let Err(err) = side {
                        eprintln!("bench compare: {err}");
                    }
                }
                1
            }
        }
    } else {
        let results = run(quick, jobs);
        print_results(&results);
        let json = to_json(&results, quick, jobs);
        if let Err(err) = std::fs::write(&out_path, &json) {
            eprintln!("cannot write {out_path}: {err}");
            return 1;
        }
        println!("wrote {out_path}");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_results() -> Vec<BenchResult> {
        EXPECTED
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // Batched conv entries are fast, scalar ones slow, so the
                // in-run speedup invariant holds by construction.
                let median_ns = if name.ends_with("_scalar") {
                    1_000_000.0
                } else {
                    1_000.0 * (i + 1) as f64
                };
                BenchResult {
                    name,
                    iterations: 10 + i as u64,
                    median_ns,
                    mean_ns: median_ns * 1.5,
                    ops_per_iter: 72,
                    ops_per_sec: 72.0e9 / median_ns,
                }
            })
            .collect()
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let json = to_json(&fake_results(), false, 2);
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed.mode, "full");
        assert_eq!(parsed.jobs, 2);
        assert_eq!(parsed.benches.len(), EXPECTED.len());
        assert_eq!(parsed.benches[0].name, EXPECTED[0]);
        assert!((parsed.benches[0].median_ns - 1_000.0).abs() < 1e-6);
        assert!((parsed.benches[0].mean_ns - 1_500.0).abs() < 1e-6);
    }

    #[test]
    fn parser_rejects_malformed_files() {
        assert!(parse("{}").is_err());
        // The previous schema (mean mislabeled as median) is rejected.
        assert!(parse("{\"schema\": \"pixel-bench/1\"}").is_err());
        // Right schema but no benches.
        let empty = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"jobs\": 1, \"benches\": []}}"
        );
        assert!(parse(&empty).unwrap_err().contains("missing"));
        // A bench entry without a mean is a hard error.
        let partial = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"jobs\": 1, \"benches\": [{{\"name\": \"functional_mac_direct\", \"median_ns\": 5.0}}]}}"
        );
        assert!(parse(&partial).unwrap_err().contains("mean_ns"));
    }

    #[test]
    fn comparison_flags_large_slowdowns_only() {
        let json = to_json(&fake_results(), false, 1);
        let old = parse(&json).unwrap();
        let mut slower = old.clone();
        slower.benches[0].ops_per_sec *= 0.5;
        slower.benches[1].ops_per_sec *= 0.9;
        let report = compare(&old, &slower, 0.25).unwrap();
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[2].contains("slower than baseline"), "{report}");
        assert!(!lines[3].contains("slower than baseline"), "{report}");
    }

    #[test]
    fn comparison_hard_fails_on_mode_mismatch() {
        let old = parse(&to_json(&fake_results(), false, 1)).unwrap();
        let quick = parse(&to_json(&fake_results(), true, 1)).unwrap();
        let err = compare(&old, &quick, 0.25).unwrap_err();
        assert!(err.contains("mode mismatch"), "{err}");
        // Matching modes still compare fine.
        assert!(compare(&old, &old, 0.25).is_ok());
    }

    #[test]
    fn check_enforces_the_batched_speedup_floor() {
        let file = parse(&to_json(&fake_results(), false, 1)).unwrap();
        let report = check(&file).unwrap();
        assert!(report.contains("all bench invariants hold"), "{report}");

        // Degrade one batched bench below the floor: hard failure.
        let mut slow = file.clone();
        let i = slow
            .benches
            .iter()
            .position(|b| b.name == "fabric_conv_oe")
            .unwrap();
        let scalar_ops = slow
            .benches
            .iter()
            .find(|b| b.name == "fabric_conv_oe_scalar")
            .unwrap()
            .ops_per_sec;
        slow.benches[i].ops_per_sec = scalar_ops * (MIN_BATCH_SPEEDUP - 1.0);
        let err = check(&slow).unwrap_err();
        assert!(err.contains("fabric_conv_oe"), "{err}");
        assert!(err.contains("below"), "{err}");

        // A zero-throughput bench (the calibration bug this PR fixes
        // would have produced one) is also a hard failure.
        let mut zero = file.clone();
        zero.benches[0].ops_per_sec = 0.0;
        assert!(check(&zero).unwrap_err().contains("finite"));
    }

    #[test]
    fn throughput_scales_with_the_median() {
        let m = timing::Measurement {
            iterations: 5,
            mean_ns: 2e6,
            median_ns: 1e6,
        };
        let r = result("functional_mac_direct", m, 72);
        // ops/s derives from the median, while the mean rides along.
        assert!((r.median_ns - 1e6).abs() < 1.0);
        assert!((r.mean_ns - 2e6).abs() < 1.0);
        assert!((r.ops_per_sec - 72_000.0).abs() < 1.0);
    }
}
