//! Shared harness code for the PIXEL reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation has a criterion bench
//! (`benches/`) and a subcommand of the `reproduce` binary; both call the
//! generator functions here, which wrap `pixel_core::dse` with the exact
//! parameter grids the paper uses.

pub mod opts;
pub mod perf;
pub mod timing;

use pixel_core::dse;
use pixel_core::report;
use pixel_dnn::analysis::{analyze_network, FcCountConvention};
use pixel_dnn::zoo;

/// Shared harness for the artifact bench binaries: prints the rendered
/// artifact once under a title banner, then times regenerating it with
/// the default budget. Every `benches/` binary that wraps one artifact
/// is a one-line call to this.
pub fn artifact_bench(title: &str, name: &str, artifact: fn() -> String) -> timing::Measurement {
    println!("\n== {title} ==");
    println!("{}", artifact());
    timing::bench(name, artifact)
}

/// The lanes sweep of Fig. 4 and Fig. 6.
pub const LANES_SWEEP: [usize; 4] = [2, 4, 8, 16];

/// The bits/lane sweep of Figs. 4, 5, 7 and 10.
pub const BITS_SWEEP: [u32; 4] = [4, 8, 16, 32];

/// The fine bits/lane sweep of Fig. 8 (1–32).
#[must_use]
pub fn fig8_bits_sweep() -> Vec<u32> {
    (0..=5).map(|i| 1u32 << i).chain([12, 20, 24, 28]).collect()
}

/// Renders Table I (VGG16 per-layer op counts, in millions).
#[must_use]
pub fn table1() -> String {
    let _span = pixel_obs::span("table1");
    let mut s = String::from(
        "Layer   |      MVM       Mul       Add       Act   [millions]  Input Shape\n",
    );
    let net = zoo::vgg16();
    let counts = analyze_network(&net, FcCountConvention::Paper);
    let shapes: Vec<String> = net.compute_layers().map(|l| l.input.to_string()).collect();
    for (c, shape) in counts.iter().zip(shapes) {
        #[allow(clippy::cast_precision_loss)]
        let m = |v: u64| v as f64 / 1e6;
        s.push_str(&format!(
            "{:<7} | {:>8.2} {:>9.1} {:>9.1} {:>9.3}               {}\n",
            c.name,
            m(c.mvm),
            m(c.mul),
            m(c.add),
            m(c.act),
            shape,
        ));
    }
    s
}

/// Renders Fig. 4's data table.
#[must_use]
pub fn fig4() -> String {
    let _span = pixel_obs::span("fig4");
    report::format_energy_per_bit(&dse::fig4_energy_per_bit(&LANES_SWEEP, &BITS_SWEEP))
}

/// Renders Fig. 5's data table (AlexNet, LeNet, VGG16 components).
#[must_use]
pub fn fig5() -> String {
    let _span = pixel_obs::span("fig5");
    let nets = [zoo::alexnet(), zoo::lenet(), zoo::vgg16()];
    report::format_components(&dse::fig5_component_energy(&nets, &[4, 8, 16]))
}

/// Renders Fig. 6's data table.
#[must_use]
pub fn fig6() -> String {
    let _span = pixel_obs::span("fig6");
    report::format_area(&dse::fig6_area(&LANES_SWEEP))
}

/// Renders Fig. 7's data table.
#[must_use]
pub fn fig7() -> String {
    let _span = pixel_obs::span("fig7");
    report::format_normalized(
        &dse::fig7_normalized_energy(&zoo::all_networks(), &BITS_SWEEP),
        "energy",
    )
}

/// Renders Fig. 8's data table.
#[must_use]
pub fn fig8() -> String {
    let _span = pixel_obs::span("fig8");
    report::format_latency(&dse::fig8_latency_geomean(
        &zoo::all_networks(),
        &fig8_bits_sweep(),
    ))
}

/// Renders Fig. 9's data table.
#[must_use]
pub fn fig9() -> String {
    let _span = pixel_obs::span("fig9");
    report::format_layer_latency(&dse::fig9_zfnet_layer_latency())
}

/// Renders Fig. 10's data table, plus the headline geomean improvements.
#[must_use]
pub fn fig10() -> String {
    let _span = pixel_obs::span("fig10");
    let mut s = report::format_normalized(
        &dse::fig10_normalized_edp(&zoo::all_networks(), &BITS_SWEEP),
        "EDP",
    );
    let (oe, oo) = dse::headline_edp_improvements();
    s.push_str(&format!(
        "\ngeomean EDP improvement at 4 lanes / 16 bits: OE {:.1}% (paper 48.4%), OO {:.1}% (paper 73.9%)\n",
        oe * 100.0,
        oo * 100.0
    ));
    s
}

/// Renders Table II.
#[must_use]
pub fn table2() -> String {
    let _span = pixel_obs::span("table2");
    report::format_table2(&dse::table2_breakdown())
}

/// Extension artifact: power analysis across designs (beyond the paper).
#[must_use]
pub fn power() -> String {
    let _span = pixel_obs::span("power");
    use pixel_core::accelerator::Accelerator;
    use pixel_core::config::{AcceleratorConfig, Design};
    use pixel_core::power::{macs_per_second_per_watt, power_report};

    let mut s = String::from("des  |  avg power [W]  laser [W]  heaters [W]  |  GMAC/s/W\n");
    for design in Design::ALL {
        let report =
            Accelerator::new(AcceleratorConfig::new(design, 4, 16)).evaluate(&zoo::zfnet());
        let p = power_report(&report);
        s.push_str(&format!(
            "{:<4} | {:>14.3} {:>10.3} {:>12.3}  | {:>9.3}\n",
            design.label(),
            p.average.value(),
            p.laser_wall_plug.value(),
            p.thermal_tuning.value(),
            macs_per_second_per_watt(&report) / 1e9,
        ));
    }
    s
}

/// Extension artifact: sensitivity ablations on the calibrated constants.
#[must_use]
pub fn ablation() -> String {
    let _span = pixel_obs::span("ablation");
    use pixel_core::ablation;
    let mut s = String::from("MRR energy scale (×100 fJ/bit) | OE improvement  OO improvement\n");
    for p in ablation::mrr_energy_sensitivity(&[0.5, 1.0, 2.0, 5.0]) {
        s.push_str(&format!(
            "{:>30.1} | {:>13.1}% {:>15.1}%\n",
            p.parameter,
            p.oe_improvement * 100.0,
            p.oo_improvement * 100.0
        ));
    }
    s.push_str("\nresync cycles per extra chunk  | OE improvement  OO improvement\n");
    for p in ablation::resync_sensitivity(&[0.0, 3.0, 6.0, 12.0]) {
        s.push_str(&format!(
            "{:>30.1} | {:>13.1}% {:>15.1}%\n",
            p.parameter,
            p.oe_improvement * 100.0,
            p.oo_improvement * 100.0
        ));
    }
    s
}

/// Extension artifact: link-budget scalability bounds (§III-C(ii)).
#[must_use]
pub fn scaling() -> String {
    let _span = pixel_obs::span("scaling");
    use pixel_core::config::Design;
    use pixel_core::scaling::{max_supported_tiles, scaling_sweep};

    let mut s = String::from("tiles  | OE required [mW] feasible | OO required [mW] feasible\n");
    for &tiles in &[16usize, 256, 4096, 65_536] {
        let oe = &scaling_sweep(Design::Oe, &[tiles])[0];
        let oo = &scaling_sweep(Design::Oo, &[tiles])[0];
        s.push_str(&format!(
            "{tiles:>6} | {:>16.3} {:>8} | {:>16.3} {:>8}\n",
            oe.required_power.as_milliwatts(),
            oe.feasible,
            oo.required_power.as_milliwatts(),
            oo.feasible,
        ));
    }
    s.push_str(&format!(
        "\nmax tiles at 10 mW/wavelength: OE {}, OO {}\n",
        max_supported_tiles(Design::Oe, 10_000_000),
        max_supported_tiles(Design::Oo, 10_000_000),
    ));
    s
}

/// Extension artifact: OO multiply correctness under receiver noise.
#[must_use]
pub fn noise() -> String {
    let _span = pixel_obs::span("noise");
    use pixel_core::robustness::noise_sweep;
    let seed = pixel_core::seed::artifact_seed("noise", 42);
    let mut s = String::from("sigma |  correct  silent-err  detected | analytic slot err\n");
    for p in noise_sweep(8, &[0.0, 0.1, 0.2, 0.3, 0.5], 1_000, seed) {
        s.push_str(&format!(
            "{:>5.2} | {:>8.4} {:>11.4} {:>9.4} | {:>17.2e}\n",
            p.sigma, p.correct_rate, p.silent_error_rate, p.detected_rate, p.analytic_slot_error
        ));
    }
    s
}

/// Extension artifact: roofline bounds per design.
#[must_use]
pub fn roofline() -> String {
    let _span = pixel_obs::span("roofline");
    use pixel_core::config::{AcceleratorConfig, Design};
    use pixel_core::roofline::roofline;
    let mut s = String::from(
        "des  bits | compute roof [GMAC/s]  ingress [Gbit/s]  bound [GMAC/s]  limiter\n",
    );
    for design in Design::ALL {
        for bits in [4u32, 8, 16, 32] {
            let r = roofline(&AcceleratorConfig::new(design, 8, bits));
            s.push_str(&format!(
                "{:<4} {bits:>4} | {:>21.2} {:>17.1} {:>15.2}  {}\n",
                design.label(),
                r.compute_roof_macs_per_s / 1e9,
                r.ingress_bits_per_s / 1e9,
                r.bound_macs_per_s / 1e9,
                if r.compute_bound() {
                    "compute"
                } else {
                    "ingress"
                },
            ));
        }
    }
    s
}

/// Extension artifact: Table I generalized — per-layer op counts for all
/// six evaluated networks.
#[must_use]
pub fn counts() -> String {
    let _span = pixel_obs::span("counts");
    let mut s = String::new();
    for net in zoo::all_networks() {
        s.push_str(&format!("-- {} --\n", net.name()));
        s.push_str("layer        |      MVM       Mul       Add       Act   [millions]\n");
        for c in analyze_network(&net, FcCountConvention::Paper) {
            #[allow(clippy::cast_precision_loss)]
            let m = |v: u64| v as f64 / 1e6;
            s.push_str(&format!(
                "{:<12} | {:>8.2} {:>9.1} {:>9.1} {:>9.3}\n",
                c.name,
                m(c.mvm),
                m(c.mul),
                m(c.add),
                m(c.act)
            ));
        }
        s.push('\n');
    }
    s
}

/// Extension artifact: activity audit — counted lit/toggle rates from the
/// bit-true functional MACs vs the analytic activity factors the energy
/// model assumes, per design.
#[must_use]
pub fn audit() -> String {
    let _span = pixel_obs::span("audit");
    let seed = pixel_core::seed::artifact_seed("audit", 2020);
    let rows = pixel_core::audit::activity_audit(4, 8, 200, 16, seed);
    let mut s = report::format_audit(&rows);
    s.push_str("\n(200 windows x 16 uniform 8-bit operand pairs per design)\n");
    s
}

/// Extension artifact: PAM-4 line-coding ablation on the optical latency.
#[must_use]
pub fn pam() -> String {
    let _span = pixel_obs::span("pam");
    use pixel_core::config::Design;
    use pixel_core::pam::pam4_sweep;
    let mut s =
        String::from("bits |  OE PAM-4/OOK latency  |  OO PAM-4/OOK latency  (modulation ×1.5)\n");
    let oe = pam4_sweep(Design::Oe, &[4, 8, 16, 32]);
    let oo = pam4_sweep(Design::Oo, &[4, 8, 16, 32]);
    for (a, b) in oe.iter().zip(&oo) {
        s.push_str(&format!(
            "{:>4} | {:>21.3} | {:>21.3}\n",
            a.bits, a.latency_ratio, b.latency_ratio
        ));
    }
    s
}

/// Extension artifact: inference-serving saturation sweep — offered
/// load × design through the discrete-event simulator, locating each
/// design's saturation knee under the multi-tenant paper mix.
#[must_use]
pub fn serve() -> String {
    let _span = pixel_obs::span("serve");
    use pixel_core::sweep::SweepEngine;
    use pixel_serve::arrivals::Workload;
    use pixel_serve::saturation::{render_curves, saturation_sweep, SweepSpec};

    let workload = Workload::paper_mix();
    let spec = SweepSpec::artifact(pixel_core::seed::artifact_seed("serve", 2026));
    let curves = saturation_sweep(&SweepEngine::with_default_jobs(), &workload, &spec);
    opts::record_metrics(&pixel_serve::metrics_jsonl(&workload, &spec, &curves));
    render_curves(&workload, &spec, &curves)
}

/// Extension artifact: sharded fleet serving sweep — routing policy ×
/// shard count × tenant mix through the multi-shard fleet simulator,
/// reporting the knee shift from batch-aware routing, per-tenant
/// p99-vs-SLO attainment, and the energy the reactive autoscaler
/// recovers at low load.
#[must_use]
pub fn fleet() -> String {
    let _span = pixel_obs::span("fleet");
    use pixel_core::sweep::SweepEngine;
    use pixel_fleet::sweep::{fleet_sweep, metrics_jsonl, render_fleet, FleetSweepSpec};

    let seed = pixel_core::seed::artifact_seed("fleet", 2026);
    let spec = if opts::quick() {
        FleetSweepSpec::quick(seed)
    } else {
        FleetSweepSpec::artifact(seed)
    };
    let sweep = fleet_sweep(&SweepEngine::with_default_jobs(), &spec);
    opts::record_metrics(&metrics_jsonl(&spec, &sweep));
    render_fleet(&spec, &sweep)
}

/// One row of the flightrec latency-decomposition table.
fn breakdown_row(label: &str, b: &pixel_serve::LatencyBreakdown) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ms = |ns: u64| ns as f64 / 1e6;
    format!(
        "{label:<22} | {:>6} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}\n",
        b.count(),
        ms(b.wait.percentile(0.50)),
        ms(b.wait.percentile(0.95)),
        ms(b.wait.percentile(0.99)),
        ms(b.service.percentile(0.50)),
        ms(b.service.percentile(0.95)),
        ms(b.service.percentile(0.99)),
    )
}

/// Extension artifact: flight-recorder deep dive on one serving run —
/// the OO fabric near its saturation knee — with the full event-count
/// ledger, the windowed trajectory (throughput, queue depth, busy
/// fraction, integrated power), the queue-wait vs service-time latency
/// decomposition per tenant and per network, and the last buffered
/// lifecycle events. Everything runs on the virtual clock, so the
/// rendering is bitwise reproducible.
#[must_use]
pub fn flightrec() -> String {
    let _span = pixel_obs::span("flightrec");
    use pixel_core::config::{AcceleratorConfig, Design};
    use pixel_core::model::EvalContext;
    use pixel_serve::saturation::reference_capacity;
    use pixel_serve::{simulate_with_flightrec, ServeConfig, Workload};

    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let accel = AcceleratorConfig::new(Design::Oo, 4, 16);
    let requests = if opts::quick() { 400 } else { 3000 };
    let capacity = reference_capacity(&ctx, &workload, &accel, 8);
    let seed = pixel_core::seed::artifact_seed("flightrec", 2026);
    let config = ServeConfig::new(accel, capacity * 0.85, requests, seed);
    let (report, flight) = simulate_with_flightrec(&workload, &ctx, &config, 4096);

    // The machine-readable twin of this artifact: the buffered event
    // ring plus the windowed series, drained by `reproduce --metrics`.
    opts::record_metrics(&flight.recorder.to_jsonl());
    opts::record_metrics(&report.windows.to_jsonl(""));

    let static_power = accel.design.model().static_power(&accel);
    let static_w = (static_power.laser_wall_plug + static_power.thermal_tuning).value();

    let mut s = format!(
        "OO (4 lanes, 16 bits/lane) | offered {:.1} inf/s (0.85 x capacity {:.1}) | {} requests | seed {}\n",
        config.rate_hz, capacity, requests, seed,
    );
    let c = flight.recorder.counts();
    s.push_str(&format!(
        "events: {} total | arrive {} enqueue {} shed {} batch_formed {} service_start {} service_end {}\n",
        flight.recorder.total(),
        c[0],
        c[1],
        c[2],
        c[3],
        c[4],
        c[5],
    ));
    s.push_str(&format!(
        "ring: last {} of {} buffered ({} evicted)\n",
        flight.recorder.events().len(),
        flight.recorder.capacity(),
        flight.recorder.dropped(),
    ));

    s.push_str("\n-- windowed trajectory --\n");
    s.push_str(&report.windows.render(static_w));

    s.push_str("\n-- latency decomposition [ms] --\n");
    s.push_str(&format!(
        "{:<22} | {:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
        "population", "count", "wait p50", "p95", "p99", "svc p50", "p95", "p99"
    ));
    s.push_str(&breakdown_row("overall", &flight.overall));
    for (tenant, b) in workload.tenants().iter().zip(&flight.tenants) {
        s.push_str(&breakdown_row(&format!("tenant {}", tenant.name), b));
    }
    for (net, b) in workload.networks().iter().zip(&flight.networks) {
        s.push_str(&breakdown_row(&format!("net {}", net.name()), b));
    }

    s.push_str("\n-- last events --\n");
    let events = flight.recorder.events();
    let tail = events.len().saturating_sub(12);
    for event in events.iter().skip(tail) {
        s.push_str(&event.describe());
        s.push('\n');
    }
    s
}

/// Extension artifact: the workspace architecture graph — crate layers,
/// dependency edges with witness files, the backend-isolation and
/// hash-order verdicts, and a DOT rendering — produced by the
/// structural `pixel-lint` pass over the repository sources. The
/// rendering is path-sorted, so it is byte-identical at any `--jobs`.
#[must_use]
pub fn archgraph() -> String {
    let _span = pixel_obs::span("archgraph");
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.ancestors().nth(2).unwrap_or(manifest);
    match pixel_lint::cli::archgraph(root, pixel_core::sweep::default_jobs()) {
        Ok(rendered) => rendered,
        Err(err) => format!("archgraph error: {err}\n"),
    }
}

/// Extension artifact: photonic weight pre-load vs compute cost.
#[must_use]
pub fn weights() -> String {
    let _span = pixel_obs::span("weights");
    use pixel_core::accelerator::Accelerator;
    use pixel_core::config::{AcceleratorConfig, Design};
    use pixel_core::weight_streaming::{network_weight_load, totals};

    let mut s = String::from(
        "network    |  weights   preload [mJ]  preload [ms] | compute [mJ] compute [ms]\n",
    );
    let config = AcceleratorConfig::new(Design::Oo, 4, 16);
    for net in zoo::all_networks() {
        let (e, t, w) = totals(&network_weight_load(&config, &net));
        let compute = Accelerator::new(config).evaluate(&net);
        s.push_str(&format!(
            "{:<10} | {:>8} {:>14.3} {:>13.3} | {:>12.1} {:>12.1}\n",
            net.name(),
            w,
            e.as_millijoules(),
            t.as_millis(),
            compute.total_energy().as_millijoules(),
            compute.total_latency().as_millis(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_renders_without_nan() {
        for (name, text) in [
            ("table1", table1()),
            ("table2", table2()),
            ("fig4", fig4()),
            ("fig5", fig5()),
            ("fig6", fig6()),
            ("fig7", fig7()),
            ("fig8", fig8()),
            ("fig9", fig9()),
            ("fig10", fig10()),
            ("audit", audit()),
        ] {
            assert!(!text.contains("NaN"), "{name} contains NaN:\n{text}");
            assert!(text.lines().count() > 2, "{name} too short");
        }
    }

    #[test]
    fn table1_headline_row() {
        let t = table1();
        let conv1 = t.lines().find(|l| l.starts_with("Conv1 ")).unwrap();
        assert!(conv1.contains("9.63"), "{conv1}");
        assert!(conv1.contains("86.7"), "{conv1}");
        assert!(conv1.contains("[224,224,3]"), "{conv1}");
    }
}
