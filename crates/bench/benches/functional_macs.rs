//! Bench comparing the throughput of the three bit-true OMAC
//! implementations (EE Stripes, OE MRR+electrical, OO MRR+MZI) against
//! plain integer MACs — an ablation of the functional-simulation layer's
//! cost, not a claim about hardware speed.

use pixel_bench::timing::bench;
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::omac::engine_for;
use pixel_dnn::inference::{DirectMac, MacEngine};
use pixel_units::rng::SplitMix64;

fn window(len: usize, bits: u32, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let limit = (1u64 << bits) - 1;
    (
        (0..len).map(|_| rng.range_u64(0, limit)).collect(),
        (0..len).map(|_| rng.range_u64(0, limit)).collect(),
    )
}

fn main() {
    let (neurons, synapses) = window(72, 8, 7);
    println!("\n== Functional MAC throughput (72-element window, 8-bit) ==");

    bench("functional_mac_72x8bit/direct", || {
        DirectMac.inner_product(&neurons, &synapses)
    });

    for design in Design::ALL {
        let engine = engine_for(&AcceleratorConfig::new(design, 8, 8));
        bench(
            &format!("functional_mac_72x8bit/omac_{}", design.label()),
            || engine.inner_product(&neurons, &synapses),
        );
    }
}
