//! Criterion bench comparing the throughput of the three bit-true OMAC
//! implementations (EE Stripes, OE MRR+electrical, OO MRR+MZI) against
//! plain integer MACs — an ablation of the functional-simulation layer's
//! cost, not a claim about hardware speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::omac::engine_for;
use pixel_dnn::inference::{DirectMac, MacEngine};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn window(len: usize, bits: u32, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let limit = (1u64 << bits) - 1;
    (
        (0..len).map(|_| rng.gen_range(0..=limit)).collect(),
        (0..len).map(|_| rng.gen_range(0..=limit)).collect(),
    )
}

fn bench(c: &mut Criterion) {
    let (neurons, synapses) = window(72, 8, 7);
    let mut group = c.benchmark_group("functional_mac_window_72x8bit");

    group.bench_function("direct", |b| {
        b.iter(|| black_box(DirectMac.inner_product(&neurons, &synapses)));
    });

    for design in Design::ALL {
        let engine = engine_for(&AcceleratorConfig::new(design, 8, 8));
        group.bench_with_input(
            BenchmarkId::new("omac", design.label()),
            &engine,
            |b, engine| b.iter(|| black_box(engine.inner_product(&neurons, &synapses))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
