//! Serving bench: the full saturation sweep (load × design) through the
//! discrete-event simulator, printed once and then timed.

fn main() {
    pixel_bench::artifact_bench(
        "Inference-serving saturation sweep (load × design)",
        "serve_saturation_sweep",
        pixel_bench::serve,
    );
}
