//! Bench regenerating Figure 10 data series (normalized EDP, 6 CNNs).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 10 data series (normalized EDP, 6 CNNs) ==");
    println!("{}", pixel_bench::fig10());
    bench("fig10_edp", pixel_bench::fig10);
}
