//! Bench regenerating Figure 10 data series (normalized EDP, 6 CNNs).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 10 data series (normalized EDP, 6 CNNs)",
        "fig10_edp",
        pixel_bench::fig10,
    );
}
