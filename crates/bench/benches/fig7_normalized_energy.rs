//! Criterion bench regenerating Figure 7 data series (normalized energy, 6 CNNs).
//!
//! Running this bench prints the reproduced artifact once and then
//! measures how long the full sweep takes to regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n== Figure 7 data series (normalized energy, 6 CNNs) ==");
        println!("{}", pixel_bench::fig7());
    });
    c.bench_function("fig7_normalized_energy", |b| b.iter(|| black_box(pixel_bench::fig7())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
