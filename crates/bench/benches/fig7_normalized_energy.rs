//! Bench regenerating Figure 7 data series (normalized energy, 6 CNNs).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 7 data series (normalized energy, 6 CNNs) ==");
    println!("{}", pixel_bench::fig7());
    bench("fig7_normalized_energy", pixel_bench::fig7);
}
