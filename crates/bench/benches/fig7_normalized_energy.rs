//! Bench regenerating Figure 7 data series (normalized energy, 6 CNNs).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 7 data series (normalized energy, 6 CNNs)",
        "fig7_normalized_energy",
        pixel_bench::fig7,
    );
}
