//! Sensitivity ablation: how much do the paper's headline EDP claims
//! depend on the two constants DESIGN.md flags as uncertain — the MRR
//! drive energy (100 fJ device citation vs 500 fJ worked example) and the
//! receiver re-synchronization cost behind the latency U-shape?

use pixel_bench::timing::bench;
use pixel_core::ablation;

fn print_tables() {
    println!("\n== MRR energy sensitivity (headline geomean EDP improvements) ==");
    println!("scale (×100 fJ/bit) |  OE improvement  OO improvement");
    for p in ablation::mrr_energy_sensitivity(&[0.5, 1.0, 2.0, 5.0]) {
        println!(
            "{:>19.1} | {:>14.1}% {:>15.1}%",
            p.parameter,
            p.oe_improvement * 100.0,
            p.oo_improvement * 100.0
        );
    }
    println!("\n== Re-synchronization cost sensitivity ==");
    println!("resync [cycles]     |  OE improvement  OO improvement");
    for p in ablation::resync_sensitivity(&[0.0, 3.0, 6.0, 12.0]) {
        println!(
            "{:>19.1} | {:>14.1}% {:>15.1}%",
            p.parameter,
            p.oe_improvement * 100.0,
            p.oo_improvement * 100.0
        );
    }
    println!();
}

fn main() {
    print_tables();
    bench("mrr_sensitivity_sweep", || {
        ablation::mrr_energy_sensitivity(&[1.0, 5.0])
    });
    bench("resync_sensitivity_sweep", || {
        ablation::resync_sensitivity(&[0.0, 6.0, 12.0])
    });
}
