//! Bench regenerating Figure 6 data series (fabric area vs lanes).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 6 data series (fabric area vs lanes)",
        "fig6_area",
        pixel_bench::fig6,
    );
}
