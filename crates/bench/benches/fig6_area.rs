//! Bench regenerating Figure 6 data series (fabric area vs lanes).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 6 data series (fabric area vs lanes) ==");
    println!("{}", pixel_bench::fig6());
    bench("fig6_area", pixel_bench::fig6);
}
