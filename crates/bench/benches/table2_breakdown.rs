//! Criterion bench regenerating Table II (energy breakdown rows).
//!
//! Running this bench prints the reproduced artifact once and then
//! measures how long the full sweep takes to regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n== Table II (energy breakdown rows) ==");
        println!("{}", pixel_bench::table2());
    });
    c.bench_function("table2_breakdown", |b| b.iter(|| black_box(pixel_bench::table2())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
