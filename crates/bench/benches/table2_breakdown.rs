//! Bench regenerating Table II (energy breakdown rows).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Table II (energy breakdown rows)",
        "table2_breakdown",
        pixel_bench::table2,
    );
}
