//! Bench regenerating Table II (energy breakdown rows).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Table II (energy breakdown rows) ==");
    println!("{}", pixel_bench::table2());
    bench("table2_breakdown", pixel_bench::table2);
}
