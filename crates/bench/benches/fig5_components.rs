//! Criterion bench regenerating Figure 5 data series (component energy for 3 CNNs).
//!
//! Running this bench prints the reproduced artifact once and then
//! measures how long the full sweep takes to regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n== Figure 5 data series (component energy for 3 CNNs) ==");
        println!("{}", pixel_bench::fig5());
    });
    c.bench_function("fig5_components", |b| b.iter(|| black_box(pixel_bench::fig5())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
