//! Bench regenerating Figure 5 data series (component energy, 3 CNNs).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 5 data series (component energy for 3 CNNs)",
        "fig5_components",
        pixel_bench::fig5,
    );
}
