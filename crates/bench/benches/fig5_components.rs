//! Bench regenerating Figure 5 data series (component energy for 3 CNNs).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 5 data series (component energy for 3 CNNs) ==");
    println!("{}", pixel_bench::fig5());
    bench("fig5_components", pixel_bench::fig5);
}
