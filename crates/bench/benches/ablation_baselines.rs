//! Ablation bench: the component-level design choices behind the paper's
//! MAC units — carry-lookahead vs ripple-carry adders, and the Stripes
//! bit-serial multiply path vs a parallel array multiplier.
//!
//! Prints the gate/depth/energy comparison once, then measures the
//! bit-true implementations' software throughput.

use pixel_bench::timing::bench;
use pixel_electronics::cla::Cla;
use pixel_electronics::dsent;
use pixel_electronics::multiplier::ArrayMultiplier;
use pixel_electronics::ripple::RippleCarryAdder;
use pixel_electronics::stripes::StripesMac;
use pixel_electronics::technology::Technology;
use std::hint::black_box;

fn print_comparison() {
    let tech = Technology::bulk22lvt();
    println!("\n== Adder ablation: CLA (paper's choice) vs ripple-carry ==");
    println!("width |  CLA gates  CLA delay |  RCA gates  RCA delay");
    for width in [4u32, 8, 16, 32] {
        let cla = Cla::new(width);
        let rca = RippleCarryAdder::new(width);
        let cla_est = dsent::estimate(cla.gate_count(), cla.logic_depth(), &tech);
        let rca_est = dsent::estimate(rca.gate_count(), rca.logic_depth(), &tech);
        println!(
            "{width:>5} | {:>10} {:>7.2} ns | {:>10} {:>7.2} ns",
            cla.gate_count().get(),
            cla_est.delay.as_nanos(),
            rca.gate_count().get(),
            rca_est.delay.as_nanos(),
        );
    }

    println!("\n== Multiplier ablation: STR bit-serial lane vs array multiplier ==");
    println!("width | STR-lane gates (1 lane, incl. accumulator) | array gates  array depth");
    for width in [4u32, 8, 16] {
        let stripes = StripesMac::new(1, width);
        let array = ArrayMultiplier::new(width);
        println!(
            "{width:>5} | {:>43} | {:>11} {:>11}",
            stripes.gate_count().get(),
            array.gate_count().get(),
            array.logic_depth().get(),
        );
    }
    println!();
}

fn main() {
    print_comparison();

    let cla = Cla::new(16);
    let rca = RippleCarryAdder::new(16);
    bench("adders_16bit/cla", || {
        cla.add(black_box(0xABCD), black_box(0x1234), false)
    });
    bench("adders_16bit/rca", || {
        rca.add(black_box(0xABCD), black_box(0x1234), false)
    });

    let array = ArrayMultiplier::new(8);
    let stripes = StripesMac::new(1, 8);
    bench("multipliers_8bit/array", || {
        array.multiply(black_box(200), black_box(131))
    });
    bench("multipliers_8bit/stripes_lane", || {
        stripes.mac(&[200], &[131]).unwrap().value
    });
}
