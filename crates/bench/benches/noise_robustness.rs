//! Failure-injection bench: the all-optical multiply under receiver
//! amplitude noise, Monte-Carlo'd against the analytic comparator error
//! model.

use pixel_bench::timing::bench;
use pixel_core::robustness;

fn print_table() {
    println!("\n== OO multiply correctness vs amplitude noise (8-bit, 2000 trials) ==");
    println!("sigma |  correct  silent-err  detected | analytic slot err");
    for p in robustness::noise_sweep(8, &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5], 2_000, 42) {
        println!(
            "{:>5.2} | {:>8.4} {:>11.4} {:>9.4} | {:>17.2e}",
            p.sigma, p.correct_rate, p.silent_error_rate, p.detected_rate, p.analytic_slot_error
        );
    }
    println!();
}

fn main() {
    print_table();
    bench("noisy_oo_multiply_sweep", || {
        robustness::noise_sweep(8, &[0.2], 200, 7)
    });
}
