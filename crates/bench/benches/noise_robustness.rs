//! Failure-injection bench: the all-optical multiply under receiver
//! amplitude noise, Monte-Carlo'd against the analytic comparator error
//! model.

use criterion::{criterion_group, criterion_main, Criterion};
use pixel_core::robustness;
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_table() {
    println!("\n== OO multiply correctness vs amplitude noise (8-bit, 2000 trials) ==");
    println!("sigma |  correct  silent-err  detected | analytic slot err");
    for p in robustness::noise_sweep(8, &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5], 2_000, 42) {
        println!(
            "{:>5.2} | {:>8.4} {:>11.4} {:>9.4} | {:>17.2e}",
            p.sigma, p.correct_rate, p.silent_error_rate, p.detected_rate, p.analytic_slot_error
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    PRINT_ONCE.call_once(print_table);
    c.bench_function("noisy_oo_multiply_sweep", |b| {
        b.iter(|| black_box(robustness::noise_sweep(8, &[0.2], 200, 7)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
