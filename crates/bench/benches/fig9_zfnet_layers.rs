//! Bench regenerating Figure 9 data series (ZFNet per-layer latency).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 9 data series (ZFNet per-layer latency) ==");
    println!("{}", pixel_bench::fig9());
    bench("fig9_zfnet_layers", pixel_bench::fig9);
}
