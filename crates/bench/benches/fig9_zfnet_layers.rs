//! Bench regenerating Figure 9 data series (ZFNet per-layer latency).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 9 data series (ZFNet per-layer latency)",
        "fig9_zfnet_layers",
        pixel_bench::fig9,
    );
}
