//! Bench regenerating Table I (VGG16 per-layer op counts).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Table I (VGG16 per-layer op counts)",
        "table1_vgg16",
        pixel_bench::table1,
    );
}
