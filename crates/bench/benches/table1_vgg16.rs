//! Bench regenerating Table I (VGG16 per-layer op counts).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Table I (VGG16 per-layer op counts) ==");
    println!("{}", pixel_bench::table1());
    bench("table1_vgg16", pixel_bench::table1);
}
