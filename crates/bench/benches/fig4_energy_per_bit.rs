//! Bench regenerating Figure 4 data series (single-MAC energy/bit sweep).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 4 data series (single-MAC energy/bit sweep)",
        "fig4_energy_per_bit",
        pixel_bench::fig4,
    );
}
