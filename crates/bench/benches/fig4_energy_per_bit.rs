//! Bench regenerating Figure 4 data series (single-MAC energy/bit sweep).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 4 data series (single-MAC energy/bit sweep) ==");
    println!("{}", pixel_bench::fig4());
    bench("fig4_energy_per_bit", pixel_bench::fig4);
}
