//! Criterion bench regenerating Figure 8 data series (geomean latency sweep).
//!
//! Running this bench prints the reproduced artifact once and then
//! measures how long the full sweep takes to regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n== Figure 8 data series (geomean latency sweep) ==");
        println!("{}", pixel_bench::fig8());
    });
    c.bench_function("fig8_latency", |b| b.iter(|| black_box(pixel_bench::fig8())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
