//! Bench regenerating Figure 8 data series (geomean latency sweep).
//!
//! Prints the reproduced artifact once and then measures how long the
//! full sweep takes to regenerate (std-only timing harness).

use pixel_bench::timing::bench;

fn main() {
    println!("\n== Figure 8 data series (geomean latency sweep) ==");
    println!("{}", pixel_bench::fig8());
    bench("fig8_latency", pixel_bench::fig8);
}
