//! Bench regenerating Figure 8 data series (geomean latency sweep).

use pixel_bench::artifact_bench;

fn main() {
    artifact_bench(
        "Figure 8 data series (geomean latency sweep)",
        "fig8_latency",
        pixel_bench::fig8,
    );
}
