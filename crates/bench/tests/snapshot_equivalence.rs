//! Pinned-output equivalence: every paper artifact rendered through the
//! `DesignModel` backends and the memoized sweep engine must reproduce
//! the pre-refactor outputs bit for bit, serially and in parallel.
//!
//! The snapshots were captured from the `reproduce` binary before the
//! cost models moved behind the backend trait (`reproduce <key>`, header
//! line stripped); `serve` was pinned when the serving simulator landed.
//! Any divergence — a reordered float addition, a worker-count-dependent
//! result — fails here with a diff.

use pixel_core::sweep::set_default_jobs;

/// Artifact key, renderer, and its pinned pre-refactor output.
type Snapshot = (&'static str, fn() -> String, &'static str);

const SNAPSHOTS: [Snapshot; 12] = [
    (
        "table1",
        pixel_bench::table1,
        include_str!("snapshots/table1.txt"),
    ),
    (
        "fig4",
        pixel_bench::fig4,
        include_str!("snapshots/fig4.txt"),
    ),
    (
        "fig5",
        pixel_bench::fig5,
        include_str!("snapshots/fig5.txt"),
    ),
    (
        "fig6",
        pixel_bench::fig6,
        include_str!("snapshots/fig6.txt"),
    ),
    (
        "fig7",
        pixel_bench::fig7,
        include_str!("snapshots/fig7.txt"),
    ),
    (
        "fig8",
        pixel_bench::fig8,
        include_str!("snapshots/fig8.txt"),
    ),
    (
        "fig9",
        pixel_bench::fig9,
        include_str!("snapshots/fig9.txt"),
    ),
    (
        "fig10",
        pixel_bench::fig10,
        include_str!("snapshots/fig10.txt"),
    ),
    (
        "table2",
        pixel_bench::table2,
        include_str!("snapshots/table2.txt"),
    ),
    (
        "serve",
        pixel_bench::serve,
        include_str!("snapshots/serve.txt"),
    ),
    (
        "flightrec",
        pixel_bench::flightrec,
        include_str!("snapshots/flightrec.txt"),
    ),
    (
        "fleet",
        pixel_bench::fleet,
        include_str!("snapshots/fleet.txt"),
    ),
];

fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first diff at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: got {}, expected {}",
        actual.lines().count(),
        expected.lines().count()
    )
}

/// One test body for both worker counts: `set_default_jobs` is process
/// global, so the serial and 4-worker passes share a single `#[test]`.
#[test]
fn artifacts_match_pre_refactor_snapshots_serial_and_parallel() {
    for jobs in [1usize, 4] {
        set_default_jobs(Some(jobs));
        for (key, render, snapshot) in SNAPSHOTS {
            // The snapshots carry the trailing newline `reproduce` prints
            // after each artifact.
            let actual = format!("{}\n", render());
            assert_eq!(
                actual,
                snapshot,
                "{key} diverged from its pre-refactor snapshot at --jobs {jobs}; {}",
                first_diff(&actual, snapshot)
            );
        }
    }
    set_default_jobs(None);
}
