//! The machine-readable JSONL metrics stream (`reproduce --metrics`)
//! must be bitwise identical across repeated runs and sweep worker
//! counts: every value lives on the virtual clock, so no wall-clock
//! timestamp or thread interleaving may reach the output.
//!
//! This lives in its own integration-test binary (not alongside the
//! snapshot test) because `set_default_jobs` and the metrics buffer are
//! process globals.

use pixel_core::sweep::set_default_jobs;

/// Renders the two metrics-emitting artifacts and drains the buffer.
fn metrics_run() -> String {
    let _ = pixel_bench::opts::take_metrics();
    let _ = pixel_bench::serve();
    let _ = pixel_bench::flightrec();
    pixel_bench::opts::take_metrics()
}

#[test]
fn metrics_jsonl_is_bitwise_stable_across_jobs_and_runs() {
    set_default_jobs(Some(1));
    let first = metrics_run();
    let repeat = metrics_run();
    set_default_jobs(Some(4));
    let parallel = metrics_run();
    set_default_jobs(None);

    assert!(!first.is_empty());
    assert_eq!(first, repeat, "repeated --jobs 1 run diverged");
    assert_eq!(first, parallel, "--jobs 4 diverged from --jobs 1");

    // Every line is flat JSON under the pixel.serve.* schema family and
    // carries no wall-clock field.
    for line in first.lines() {
        let fields = pixel_obs::parse_flat_object(line)
            .unwrap_or_else(|| panic!("malformed JSONL line: {line}"));
        assert!(
            fields
                .iter()
                .any(|(k, v)| k == "schema" && v.starts_with("pixel.serve.")),
            "untagged line: {line}"
        );
        assert!(
            !fields.iter().any(|(k, _)| k == "wall_ms" || k == "t_us"),
            "wall-clock field leaked: {line}"
        );
    }
}
