//! Pins the `archgraph` artifact byte-for-byte, serially and in
//! parallel: the structural lint pass walks the workspace with a
//! worker pool, but every rendered line — crate table, edge list,
//! verdicts, DOT digraph — is path-sorted, so the artifact must be
//! identical at any `--jobs`. Any nondeterminism in the parallel file
//! walk (or an unreviewed architecture change: a new crate, a new
//! cross-crate edge, a layering violation) fails here with a diff.
//!
//! The snapshot was captured from `reproduce archgraph` (header line
//! stripped) when the structural analyzer landed.

use pixel_core::sweep::set_default_jobs;

const SNAPSHOT: &str = include_str!("snapshots/archgraph.txt");

fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first diff at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: got {}, expected {}",
        actual.lines().count(),
        expected.lines().count()
    )
}

/// One test body for both worker counts: `set_default_jobs` is process
/// global, so the serial and 4-worker passes share a single `#[test]`.
#[test]
fn archgraph_is_pinned_and_jobs_invariant() {
    for jobs in [1usize, 4] {
        set_default_jobs(Some(jobs));
        // The snapshot carries the trailing newline `reproduce` prints
        // after each artifact.
        let actual = format!("{}\n", pixel_bench::archgraph());
        assert_eq!(
            actual,
            SNAPSHOT,
            "archgraph diverged from its snapshot at --jobs {jobs}; {}",
            first_diff(&actual, SNAPSHOT)
        );
    }
    set_default_jobs(None);
}
