//! Strongly-typed physical quantities shared by the PIXEL reproduction crates.
//!
//! The paper mixes femtojoules, picoseconds, micrometres and millimetres
//! freely; newtypes keep every interface in SI base units while providing
//! convenient constructors and accessors for the units the paper quotes.
//!
//! The crate also hosts [`rng`], the workspace's zero-dependency
//! deterministic PRNG (the build environment has no registry access, so
//! `rand` is unavailable).

pub mod rng;
pub mod virt;

pub use virt::{VirtInstant, VirtualNs};

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a value in SI base units.
            #[must_use]
            pub const fn new(si_value: f64) -> Self {
                Self(si_value)
            }

            /// Returns the value in SI base units.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN/inf).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the maximum of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// An energy in joules.
    Energy,
    "J"
);
quantity!(
    /// A time interval in seconds.
    Time,
    "s"
);
quantity!(
    /// A length in metres.
    Length,
    "m"
);
quantity!(
    /// A power in watts.
    Power,
    "W"
);
quantity!(
    /// An area in square metres.
    Area,
    "m^2"
);

impl Energy {
    /// Creates an energy from femtojoules (the unit used for device
    /// energy-per-bit figures in the paper).
    #[must_use]
    pub fn from_femtojoules(fj: f64) -> Self {
        Self::new(fj * 1e-15)
    }

    /// Creates an energy from picojoules.
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    #[must_use]
    pub fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }

    /// Creates an energy from millijoules (the unit of Table II).
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::new(mj * 1e-3)
    }

    /// Returns the energy in femtojoules.
    #[must_use]
    pub fn as_femtojoules(self) -> f64 {
        self.value() * 1e15
    }

    /// Returns the energy in picojoules.
    #[must_use]
    pub fn as_picojoules(self) -> f64 {
        self.value() * 1e12
    }

    /// Returns the energy in nanojoules.
    #[must_use]
    pub fn as_nanojoules(self) -> f64 {
        self.value() * 1e9
    }

    /// Returns the energy in millijoules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.value() * 1e3
    }
}

impl Time {
    /// Creates a time from picoseconds.
    #[must_use]
    pub fn from_picos(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Returns the time in picoseconds.
    #[must_use]
    pub fn as_picos(self) -> f64 {
        self.value() * 1e12
    }

    /// Returns the time in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.value() * 1e9
    }

    /// Returns the time in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the time in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.value() * 1e3
    }
}

impl Length {
    /// Creates a length from micrometres.
    #[must_use]
    pub fn from_micrometres(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from millimetres.
    #[must_use]
    pub fn from_millimetres(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from centimetres.
    #[must_use]
    pub fn from_centimetres(cm: f64) -> Self {
        Self::new(cm * 1e-2)
    }

    /// Returns the length in micrometres.
    #[must_use]
    pub fn as_micrometres(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the length in millimetres.
    #[must_use]
    pub fn as_millimetres(self) -> f64 {
        self.value() * 1e3
    }

    /// Returns the length in centimetres.
    #[must_use]
    pub fn as_centimetres(self) -> f64 {
        self.value() * 1e2
    }
}

impl Power {
    /// Creates a power from microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Returns the power in microwatts.
    #[must_use]
    pub fn as_microwatts(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.value() * 1e3
    }
}

impl Area {
    /// Creates an area from square micrometres.
    #[must_use]
    pub fn from_square_micrometres(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// Creates an area from square millimetres.
    #[must_use]
    pub fn from_square_millimetres(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Returns the area in square micrometres.
    #[must_use]
    pub fn as_square_micrometres(self) -> f64 {
        self.value() * 1e12
    }

    /// Returns the area in square millimetres.
    #[must_use]
    pub fn as_square_millimetres(self) -> f64 {
        self.value() * 1e6
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::new(self.value() * rhs.value())
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy::new(self.value() * rhs.value())
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        Power::new(self.value() / rhs.value())
    }
}

impl Div<Power> for Energy {
    type Output = Time;
    fn div(self, rhs: Power) -> Time {
        Time::new(self.value() / rhs.value())
    }
}

impl Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_round_trips() {
        let e = Energy::from_femtojoules(500.0);
        assert!((e.as_femtojoules() - 500.0).abs() < 1e-9);
        assert!((e.as_picojoules() - 0.5).abs() < 1e-12);
        assert!((Energy::from_millijoules(3.0).as_millijoules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_unit_round_trips() {
        let t = Time::from_picos(0.547);
        assert!((t.as_picos() - 0.547).abs() < 1e-12);
        assert!((Time::from_nanos(2.95).as_nanos() - 2.95).abs() < 1e-12);
    }

    #[test]
    fn length_round_trips() {
        let l = Length::from_micrometres(7.5);
        assert!((l.as_micrometres() - 7.5).abs() < 1e-12);
        assert!((Length::from_millimetres(6.77).as_millimetres() - 6.77).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_on_quantities() {
        let a = Energy::from_picojoules(1.0);
        let b = Energy::from_picojoules(2.0);
        assert!(((a + b).as_picojoules() - 3.0).abs() < 1e-12);
        assert!(((b - a).as_picojoules() - 1.0).abs() < 1e-12);
        assert!(((a * 4.0).as_picojoules() - 4.0).abs() < 1e-12);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_time_energy_dimensional_relations() {
        let p = Power::from_milliwatts(1.0);
        let t = Time::from_nanos(1.0);
        let e = p * t;
        assert!((e.as_picojoules() - 1.0).abs() < 1e-12);
        let back = e / t;
        assert!((back.as_milliwatts() - 1.0).abs() < 1e-12);
        let t_back = e / p;
        assert!((t_back.as_nanos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_from_lengths() {
        let side = Length::from_micrometres(15.0);
        let a = side * side;
        assert!((a.as_square_micrometres() - 225.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Energy = (1..=4).map(|i| Energy::from_picojoules(f64::from(i))).sum();
        assert!((total.as_picojoules() - 10.0).abs() < 1e-12);
        assert!(Energy::from_picojoules(2.0) > Energy::from_picojoules(1.0));
        assert_eq!(
            Energy::from_picojoules(2.0).max(Energy::from_picojoules(1.0)),
            Energy::from_picojoules(2.0)
        );
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Energy::new(1.5)), "1.5 J");
        assert_eq!(format!("{}", Time::new(0.25)), "0.25 s");
    }
}
