//! A tiny deterministic PRNG shared by every crate in the workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! reproduction cannot depend on `rand`. Everything that needs randomness
//! — Monte-Carlo noise sweeps, synthetic datasets, randomized tests — uses
//! this SplitMix64 generator instead. SplitMix64 (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) passes
//! BigCrush, needs eight lines of code, and is fully deterministic from a
//! 64-bit seed, which is all the repository requires: seeded test vectors
//! and seeded experiment sweeps, not cryptographic quality.

/// Deterministic 64-bit SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (self.next_u64() >> 11) as f64;
        mantissa / (1u64 << 53) as f64
    }

    /// Returns a uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns a uniform `u64` in `lo..=hi`.
    ///
    /// Uses multiply-shift range reduction; the modulo bias over a 64-bit
    /// source is below 2⁻⁶⁴ per draw — irrelevant for simulation seeds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let reduced = ((u128::from(self.next_u64()) * (u128::from(span) + 1)) >> 64) as u64;
        lo + reduced
    }

    /// Returns a uniform `u32` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        {
            self.range_u64(u64::from(lo), u64::from(hi)) as u32
        }
    }

    /// Returns a uniform `usize` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        {
            self.range_u64(lo as u64, hi as u64) as usize
        }
    }

    /// Returns a uniform `i64` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        let reduced = self.range_u64(0, span);
        lo.wrapping_add(reduced as i64)
    }

    /// Returns a uniform `f64` in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range {lo}..{hi}"
        );
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Reference outputs of SplitMix64 seeded with 1234567.
        let mut rng = SplitMix64::seed_from_u64(1_234_567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.range_u64(3, 17);
            assert!((3..=17).contains(&v));
            let i = rng.range_i64(-128, 127);
            assert!((-128..=127).contains(&i));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn degenerate_single_point_range() {
        let mut rng = SplitMix64::seed_from_u64(9);
        assert_eq!(rng.range_u64(5, 5), 5);
        assert_eq!(rng.range_i64(-3, -3), -3);
    }

    #[test]
    fn full_width_range_is_identity_distribution() {
        let mut rng = SplitMix64::seed_from_u64(11);
        // Must not overflow the span arithmetic.
        let _ = rng.range_u64(0, u64::MAX);
        let _ = rng.range_i64(i64::MIN, i64::MAX);
    }

    #[test]
    fn mean_of_unit_interval_is_half() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        let _ = SplitMix64::seed_from_u64(0).range_u64(4, 3);
    }
}
