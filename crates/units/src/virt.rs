//! Typed virtual time: instants and integer-nanosecond timestamps.
//!
//! The serving layer advances a clock that is *virtual* in the
//! simulator (event-to-event) and *monotonic wall time* in the daemon —
//! but the policy code in between must not care which. Two newtypes
//! keep the roles apart that a bare `f64` seconds value silently mixes:
//!
//! * [`VirtInstant`] — a point on some clock's timeline, as f64 seconds
//!   since that clock's epoch. Instants subtract into a [`Time`]
//!   duration and shift by durations; they never add to each other.
//!   The representation stays `f64` on purpose: the discrete-event
//!   simulator's trajectories are pinned bitwise, so instant arithmetic
//!   must be *exactly* the f64 arithmetic it replaces.
//! * [`VirtualNs`] — an integer-nanosecond timestamp (or duration), the
//!   form lifecycle events and latency histograms store. The only
//!   sanctioned f64→integer conversion is round-to-nearest via
//!   [`VirtInstant::to_ns`] / [`Time::round_nanos`]; rounding is
//!   monotone, which keeps wait ≤ sojourn splits exact.

use crate::Time;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual (or monotonic) time: f64 seconds since the
/// owning clock's epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct VirtInstant(f64);

impl VirtInstant {
    /// The clock's epoch (t = 0).
    pub const EPOCH: Self = Self(0.0);

    /// An instant `secs` seconds past the epoch.
    #[must_use]
    pub const fn from_secs(secs: f64) -> Self {
        Self(secs)
    }

    /// Seconds since the epoch.
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// True when the instant is finite (not NaN/inf).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Duration since an earlier instant, clamped at zero when `earlier`
    /// is actually later (monotone clocks can disagree by scheduling
    /// jitter; policy code must never see a negative duration).
    #[must_use]
    pub fn saturating_since(self, earlier: Self) -> Time {
        Time::new((self.0 - earlier.0).max(0.0))
    }

    /// The instant as an integer-nanosecond timestamp
    /// (round-to-nearest; the single sanctioned seconds→ns conversion).
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn to_ns(self) -> VirtualNs {
        VirtualNs((self.0 * 1e9).round() as u64)
    }
}

impl Add<Time> for VirtInstant {
    type Output = Self;
    fn add(self, rhs: Time) -> Self {
        Self(self.0 + rhs.value())
    }
}

impl AddAssign<Time> for VirtInstant {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.value();
    }
}

impl Sub for VirtInstant {
    /// Instants subtract into a duration (possibly negative: the
    /// caller decides whether order matters).
    type Output = Time;
    fn sub(self, rhs: Self) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl Sub<Time> for VirtInstant {
    type Output = Self;
    fn sub(self, rhs: Time) -> Self {
        Self(self.0 - rhs.value())
    }
}

impl fmt::Display for VirtInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{} s", self.0)
    }
}

/// An integer-nanosecond virtual timestamp (event stamps, histogram
/// samples): totally ordered, hashable, and exactly representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualNs(u64);

impl VirtualNs {
    /// The zero timestamp.
    pub const ZERO: Self = Self(0);

    /// A timestamp of `ns` integer nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// The timestamp in integer nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Nanoseconds elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub const fn saturating_since(self, earlier: Self) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The timestamp in fractional milliseconds (display only).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl fmt::Display for VirtualNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

impl Time {
    /// The duration as integer nanoseconds, round-to-nearest
    /// (saturating at zero for negative durations).
    ///
    /// Same rounding as [`VirtInstant::to_ns`], so for
    /// `start ≤ mid ≤ end` the split
    /// `(mid - start).round_nanos() + ((end - start).round_nanos() -
    /// (mid - start).round_nanos())` is exact by monotonicity.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn round_nanos(self) -> u64 {
        (self.value() * 1e9).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instants_shift_by_durations_and_subtract_into_them() {
        let t0 = VirtInstant::from_secs(1.5);
        let t1 = t0 + Time::from_millis(250.0);
        assert!((t1.as_secs() - 1.75).abs() < 1e-15);
        assert!(((t1 - t0).as_millis() - 250.0).abs() < 1e-9);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
        assert!((t1 - Time::from_millis(250.0) - t0).value().abs() < 1e-15);
    }

    #[test]
    fn instant_arithmetic_is_exactly_f64_arithmetic() {
        // The simulator's pinned trajectories depend on this: wrapping
        // the clock in a newtype must not perturb a single bit.
        let mut raw = 0.0f64;
        let mut typed = VirtInstant::EPOCH;
        let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..1000 {
            rng_state = rng_state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            #[allow(clippy::cast_precision_loss)]
            let gap = (rng_state >> 11) as f64 / (1u64 << 53) as f64;
            raw += gap;
            typed += Time::new(gap);
            assert_eq!(raw.to_bits(), typed.as_secs().to_bits());
            assert_eq!(
                raw.max(0.5).to_bits(),
                typed.max(VirtInstant::from_secs(0.5)).as_secs().to_bits()
            );
        }
    }

    #[test]
    fn to_ns_rounds_to_nearest_and_matches_round_nanos() {
        assert_eq!(
            VirtInstant::from_secs(1.0).to_ns().as_nanos(),
            1_000_000_000
        );
        assert_eq!(VirtInstant::from_secs(0.25e-9).to_ns().as_nanos(), 0);
        assert_eq!(VirtInstant::from_secs(0.5e-9).to_ns().as_nanos(), 1);
        assert_eq!(Time::new(1.5e-9).round_nanos(), 2);
        assert_eq!(Time::new(-3.0).round_nanos(), 0, "negative saturates");
        for secs in [0.0, 1e-9, 0.123_456_789, 7.5, 4000.0] {
            assert_eq!(
                VirtInstant::from_secs(secs).to_ns().as_nanos(),
                Time::new(secs).round_nanos(),
                "{secs}"
            );
        }
    }

    #[test]
    fn saturating_since_never_goes_negative() {
        let early = VirtInstant::from_secs(1.0);
        let late = VirtInstant::from_secs(3.0);
        assert!((late.saturating_since(early).value() - 2.0).abs() < 1e-15);
        assert_eq!(early.saturating_since(late), Time::ZERO);
        assert_eq!(
            VirtualNs::from_nanos(5).saturating_since(VirtualNs::from_nanos(9)),
            0
        );
        assert_eq!(
            VirtualNs::from_nanos(9).saturating_since(VirtualNs::from_nanos(5)),
            4
        );
    }

    #[test]
    fn virtual_ns_orders_and_displays() {
        assert!(VirtualNs::from_nanos(2) > VirtualNs::from_nanos(1));
        assert_eq!(VirtualNs::ZERO.as_nanos(), 0);
        assert_eq!(format!("{}", VirtualNs::from_nanos(42)), "42 ns");
        assert_eq!(format!("{}", VirtInstant::from_secs(0.5)), "t+0.5 s");
        assert!((VirtualNs::from_nanos(1_500_000).as_millis_f64() - 1.5).abs() < 1e-12);
    }
}
