//! Quantized forward-pass execution with a pluggable MAC engine.
//!
//! Every inner product of the forward pass is routed through a
//! [`MacEngine`], so the same network can be executed with plain integer
//! arithmetic ([`DirectMac`]) or bit-true through the EE/OE/OO functional
//! MAC units in `pixel-core` — and the outputs compared element-for-element.

use crate::layer::{Layer, LayerKind, PoolKind, Shape};
use crate::network::Network;
use crate::quant::Precision;
use crate::tensor::Tensor;
use pixel_units::rng::SplitMix64;

/// Computes inner products on behalf of the forward pass.
pub trait MacEngine {
    /// The inner product `Σᵢ neurons[i]·synapses[i]`.
    ///
    /// Both slices have equal length; values fit the precision the engine
    /// was constructed for.
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64;

    /// Engine name for reports.
    fn name(&self) -> &str {
        "mac-engine"
    }
}

/// Plain integer reference engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectMac;

impl MacEngine for DirectMac {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        neurons.iter().zip(synapses).map(|(&n, &s)| n * s).sum()
    }

    fn name(&self) -> &str {
        "direct"
    }
}

/// Weights for one compute layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerWeights {
    /// Convolution kernels, indexed `[filter][kh][kw][channel]`, flattened.
    Conv {
        /// Number of filters.
        filters: usize,
        /// Kernel size.
        kernel: usize,
        /// Input channels.
        channels: usize,
        /// Flat kernel data.
        data: Vec<u64>,
    },
    /// Fully-connected matrix, indexed `[output][input]`, flattened.
    Fc {
        /// Outputs.
        outputs: usize,
        /// Inputs.
        inputs: usize,
        /// Flat matrix data.
        data: Vec<u64>,
    },
    /// Pooling layers carry no weights.
    None,
}

impl LayerWeights {
    /// Generates weights for `layer` with the supplied per-index function
    /// (used with an RNG for random networks or a constant for tests).
    #[must_use]
    pub fn generate(layer: &Layer, mut next: impl FnMut() -> u64) -> Self {
        match layer.kind {
            LayerKind::Conv {
                filters, kernel, ..
            } => {
                let channels = layer.input.c;
                let n = filters * kernel * kernel * channels;
                Self::Conv {
                    filters,
                    kernel,
                    channels,
                    data: (0..n).map(|_| next()).collect(),
                }
            }
            LayerKind::Fc { outputs } => {
                let inputs = layer.input.elements();
                Self::Fc {
                    outputs,
                    inputs,
                    data: (0..outputs * inputs).map(|_| next()).collect(),
                }
            }
            LayerKind::Pool { .. } => Self::None,
        }
    }

    fn conv_kernel(&self, filter: usize) -> &[u64] {
        match self {
            Self::Conv {
                kernel,
                channels,
                data,
                ..
            } => {
                let len = kernel * kernel * channels;
                &data[filter * len..(filter + 1) * len]
            }
            // lint:allow(P003) programmer-error contract: wrong weight variant for layer kind
            _ => panic!("not convolution weights"),
        }
    }

    fn fc_row(&self, output: usize) -> &[u64] {
        match self {
            Self::Fc { inputs, data, .. } => &data[output * inputs..(output + 1) * inputs],
            // lint:allow(P003) programmer-error contract: wrong weight variant for layer kind
            _ => panic!("not fully-connected weights"),
        }
    }
}

/// Error raised when the input tensor does not match a layer's declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Layer name.
    pub layer: String,
    /// Shape supplied.
    pub got: Shape,
    /// Shape required.
    pub want: Shape,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "layer {} expected input {} but received {}",
            self.layer, self.want, self.got
        )
    }
}

impl std::error::Error for ShapeError {}

/// Executes one convolution layer.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input tensor does not match the layer.
pub fn conv2d(
    layer: &Layer,
    input: &Tensor,
    weights: &LayerWeights,
    engine: &dyn MacEngine,
) -> Result<Tensor, ShapeError> {
    let LayerKind::Conv {
        filters,
        kernel,
        stride,
        padding,
    } = layer.kind
    else {
        // lint:allow(P003) caller contract: conv2d dispatches on LayerKind::Conv
        panic!("conv2d called on a non-conv layer");
    };
    if input.shape() != layer.input {
        return Err(ShapeError {
            layer: layer.name.clone(),
            got: input.shape(),
            want: layer.input,
        });
    }
    let e = layer.output_feature_size();
    let channels = layer.input.c;
    let mut out = Tensor::zeros(Shape::square(e, filters));
    let window = kernel * kernel * channels;
    let mut neurons = vec![0u64; window];

    for oh in 0..e {
        for ow in 0..e {
            // Gather the receptive field once per spatial position.
            let mut idx = 0;
            for kh in 0..kernel {
                for kw in 0..kernel {
                    #[allow(clippy::cast_possible_wrap)]
                    let ih = (oh * stride + kh) as isize - padding as isize;
                    #[allow(clippy::cast_possible_wrap)]
                    let iw = (ow * stride + kw) as isize - padding as isize;
                    for c in 0..channels {
                        neurons[idx] = input.get_padded(ih, iw, c);
                        idx += 1;
                    }
                }
            }
            for m in 0..filters {
                let v = engine.inner_product(&neurons, weights.conv_kernel(m));
                out.set(oh, ow, m, v);
            }
        }
    }
    Ok(out)
}

/// Executes one fully-connected layer.
///
/// # Errors
///
/// Returns [`ShapeError`] if the flattened input length mismatches.
pub fn fully_connected(
    layer: &Layer,
    input: &Tensor,
    weights: &LayerWeights,
    engine: &dyn MacEngine,
) -> Result<Tensor, ShapeError> {
    let LayerKind::Fc { outputs } = layer.kind else {
        // lint:allow(P003) caller contract: fully_connected dispatches on LayerKind::Fc
        panic!("fully_connected called on a non-FC layer");
    };
    // FC consumes the activations in flat HWC order whatever the input
    // shape — borrow the backing data rather than flattening a copy.
    let flat = input.data();
    if flat.len() != layer.input.elements() {
        return Err(ShapeError {
            layer: layer.name.clone(),
            got: input.shape(),
            want: layer.input,
        });
    }
    let values: Vec<u64> = (0..outputs)
        .map(|o| engine.inner_product(flat, weights.fc_row(o)))
        .collect();
    Ok(Tensor::from_flat_vec(values))
}

/// Executes one pooling layer.
///
/// # Errors
///
/// Returns [`ShapeError`] on input mismatch.
pub fn pool(layer: &Layer, input: &Tensor) -> Result<Tensor, ShapeError> {
    let LayerKind::Pool {
        kernel,
        stride,
        kind,
    } = layer.kind
    else {
        // lint:allow(P003) caller contract: pool dispatches on LayerKind::Pool
        panic!("pool called on a non-pool layer");
    };
    if input.shape() != layer.input {
        return Err(ShapeError {
            layer: layer.name.clone(),
            got: input.shape(),
            want: layer.input,
        });
    }
    let e = layer.output_feature_size();
    let c_count = layer.input.c;
    // A kernel/stride that overhangs the input would index out of bounds
    // below (pooling has no zero padding): the last window must fit.
    let needed = (e - 1) * stride + kernel;
    if needed > layer.input.h || needed > layer.input.w {
        return Err(ShapeError {
            layer: layer.name.clone(),
            got: layer.input,
            want: Shape::new(needed, needed, c_count),
        });
    }
    let mut out = Tensor::zeros(Shape::square(e, c_count));
    for oh in 0..e {
        for ow in 0..e {
            for c in 0..c_count {
                let mut acc: u64 = match kind {
                    PoolKind::Max => 0,
                    PoolKind::Average => 0,
                };
                for kh in 0..kernel {
                    for kw in 0..kernel {
                        let v = input.get(oh * stride + kh, ow * stride + kw, c);
                        acc = match kind {
                            PoolKind::Max => acc.max(v),
                            PoolKind::Average => acc + v,
                        };
                    }
                }
                let v = match kind {
                    PoolKind::Max => acc,
                    PoolKind::Average => acc / (kernel * kernel) as u64,
                };
                out.set(oh, ow, c, v);
            }
        }
    }
    Ok(out)
}

/// Runs a full quantized forward pass. After every compute layer the
/// activations are requantized back to `precision` (uniform right shift),
/// emulating fixed-point inference.
///
/// `weights` must supply one entry per layer (pool layers use
/// [`LayerWeights::None`]).
///
/// # Errors
///
/// Returns [`ShapeError`] if any tensor/layer mismatch occurs.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the layer count.
pub fn forward(
    network: &Network,
    input: &Tensor,
    weights: &[LayerWeights],
    engine: &dyn MacEngine,
    precision: Precision,
) -> Result<Tensor, ShapeError> {
    assert_eq!(
        weights.len(),
        network.len(),
        "one weight set per layer (use LayerWeights::None for pools)"
    );
    let _forward_span = pixel_obs::span("forward");
    let mut current = input.clone();
    for (layer, w) in network.layers().iter().zip(weights) {
        let _layer_span = pixel_obs::span(&layer.name);
        pixel_obs::add("dnn.forward.layers", 1);
        current = match layer.kind {
            LayerKind::Conv { .. } => {
                let mut t = conv2d(layer, &current, w, engine)?;
                precision.requantize(&mut t);
                t
            }
            LayerKind::Fc { .. } => {
                // FC layers accept any shape with the right element count.
                let mut t = fully_connected(layer, &current, w, engine)?;
                precision.requantize(&mut t);
                t
            }
            LayerKind::Pool { .. } => pool(layer, &current)?,
        };
    }
    Ok(current)
}

/// Runs [`forward`] over a batch of input images, in order.
///
/// The images are independent inferences sharing one weight set — the
/// serving-scale traffic shape. Engines that batch internally (the
/// fabric's bitplane path groups windows across images) get their
/// parallelism below this API; here the semantics are simply "each
/// output equals `forward` of the matching input".
///
/// # Errors
///
/// Returns the first [`ShapeError`] any image produces.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the layer count.
pub fn forward_batch(
    network: &Network,
    inputs: &[Tensor],
    weights: &[LayerWeights],
    engine: &dyn MacEngine,
    precision: Precision,
) -> Result<Vec<Tensor>, ShapeError> {
    inputs
        .iter()
        .map(|input| forward(network, input, weights, engine, precision))
        .collect()
}

/// Executes every layer of `network` once on deterministic operands of
/// the layer's *declared* input shape and returns a fold of all outputs.
///
/// The zoo tables follow the paper's Table I conventions: padding is
/// baked into some tabulated input shapes and branching topologies
/// (ResNet-34 shortcuts, GoogLeNet inception modules) are stored
/// flattened, so the layer sequence of most networks is not chainable
/// end to end the way [`forward`] requires. A *replay* sidesteps that:
/// each layer runs on synthetic activations and weights of its true
/// shape, which performs exactly the network's tabulated MAC work —
/// what a timed "forward of the paper CNN" needs — without inventing
/// cross-layer dataflow the table does not specify. Fully-connected
/// rows are generated on the fly (never materializing the `[output ×
/// input]` matrix), so even VGG16's 103M-weight FC1 replays in O(row)
/// memory.
///
/// The returned checksum folds every output element, making the work
/// observable (nothing can be optimized away) and the replay's
/// determinism testable.
///
/// # Errors
///
/// Returns [`ShapeError`] if a layer rejects its own declared input
/// shape (a malformed network table).
pub fn replay_layers(
    network: &Network,
    engine: &dyn MacEngine,
    precision: Precision,
    seed: u64,
) -> Result<u64, ShapeError> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let limit = precision.max_value();
    let mut checksum = 0u64;
    for layer in network.layers() {
        let input = Tensor::from_fn(layer.input, |_, _, _| rng.range_u64(0, limit));
        let out = match layer.kind {
            LayerKind::Conv { .. } => {
                let w = LayerWeights::generate(layer, || rng.range_u64(0, limit));
                let mut t = conv2d(layer, &input, &w, engine)?;
                precision.requantize(&mut t);
                t
            }
            LayerKind::Fc { outputs } => {
                let flat = input.data();
                let mut row = vec![0u64; flat.len()];
                let values = (0..outputs)
                    .map(|_| {
                        for slot in &mut row {
                            *slot = rng.range_u64(0, limit);
                        }
                        engine.inner_product(flat, &row)
                    })
                    .collect();
                let mut t = Tensor::from_flat_vec(values);
                precision.requantize(&mut t);
                t
            }
            LayerKind::Pool { .. } => pool(layer, &input)?,
        };
        for &v in out.data() {
            checksum = checksum.rotate_left(7) ^ v;
        }
    }
    Ok(checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PoolKind;
    use crate::zoo;

    #[test]
    fn conv_identity_kernel() {
        // A 1×1 kernel with weight 1 copies the input channel.
        let layer = Layer::conv("c", Shape::square(3, 1), 1, 1, 1);
        let input = Tensor::from_fn(Shape::square(3, 1), |h, w, _| (h * 3 + w) as u64);
        let weights = LayerWeights::generate(&layer, || 1);
        let out = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(out.shape(), Shape::square(3, 1));
        assert_eq!(out.get(2, 1, 0), 7);
    }

    #[test]
    fn conv_sums_receptive_field() {
        // 2×2 all-ones kernel on all-ones input = 4 everywhere.
        let layer = Layer::conv("c", Shape::square(3, 1), 1, 2, 1);
        let input = Tensor::from_fn(Shape::square(3, 1), |_, _, _| 1);
        let weights = LayerWeights::generate(&layer, || 1);
        let out = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(out.shape(), Shape::square(2, 1));
        for h in 0..2 {
            for w in 0..2 {
                assert_eq!(out.get(h, w, 0), 4);
            }
        }
    }

    #[test]
    fn conv_with_padding_touches_border_zeros() {
        let layer = Layer::conv_padded("c", Shape::square(2, 1), 1, 3, 1, 1);
        let input = Tensor::from_fn(Shape::square(2, 1), |_, _, _| 1);
        let weights = LayerWeights::generate(&layer, || 1);
        let out = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(out.shape(), Shape::square(2, 1));
        // Every 3×3 window sees the full 2×2 ones block.
        assert_eq!(out.get(0, 0, 0), 4);
    }

    #[test]
    fn fc_matrix_vector() {
        let layer = Layer::fc("f", 3, 2);
        let mut vals = [1u64, 0, 2, /* row2 */ 3, 1, 1].iter().copied();
        let weights = LayerWeights::generate(&layer, || vals.next().unwrap());
        let input = Tensor::from_flat(&[5, 7, 9]);
        let out = fully_connected(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(out.to_flat(), vec![5 + 18, 15 + 7 + 9]);
    }

    #[test]
    fn pooling_max_and_average() {
        let input = Tensor::from_fn(Shape::square(2, 1), |h, w, _| (h * 2 + w) as u64);
        let max_layer = Layer::pool("p", Shape::square(2, 1), 2, 2, PoolKind::Max);
        let avg_layer = Layer::pool("p", Shape::square(2, 1), 2, 2, PoolKind::Average);
        assert_eq!(pool(&max_layer, &input).unwrap().get(0, 0, 0), 3);
        assert_eq!(pool(&avg_layer, &input).unwrap().get(0, 0, 0), 1); // (0+1+2+3)/4
    }

    #[test]
    fn pool_overhang_is_an_error_not_a_panic() {
        // Kernel larger than the input: output_feature_size saturates to 1
        // and the window would read past the edge.
        let input = Tensor::from_fn(Shape::square(2, 1), |_, _, _| 1);
        let layer = Layer::pool("p", Shape::square(2, 1), 3, 1, PoolKind::Max);
        let err = pool(&layer, &input).unwrap_err();
        assert_eq!(err.layer, "p");
        assert_eq!(err.want, Shape::new(3, 3, 1));

        // Stride overhang: e=2 windows of 2 need 3 rows, input has... 4 — ok;
        // kernel 3 stride 2 on 4: e=(4-3+2)/2=1, needs 3 ≤ 4 — ok. Kernel 2
        // stride 3 on 4: e=(4-2+3)/3=1, needs 2 ≤ 4 — ok. Kernel 4 stride 3
        // on 5: e=(5-4+3)/3=1 fits; on 3: e=1, needs 4 > 3 — error.
        let small = Tensor::zeros(Shape::square(3, 1));
        let overhang = Layer::pool("q", Shape::square(3, 1), 4, 3, PoolKind::Average);
        assert!(pool(&overhang, &small).is_err());

        // A fitting pool still works.
        let fit = Layer::pool("r", Shape::square(2, 1), 2, 2, PoolKind::Max);
        assert_eq!(pool(&fit, &input).unwrap().get(0, 0, 0), 1);
    }

    #[test]
    fn shape_errors_are_reported() {
        let layer = Layer::conv("c", Shape::square(4, 1), 1, 3, 1);
        let input = Tensor::zeros(Shape::square(3, 1));
        let err = conv2d(
            &layer,
            &input,
            &LayerWeights::generate(&layer, || 1),
            &DirectMac,
        )
        .unwrap_err();
        assert_eq!(err.layer, "c");
        assert!(err.to_string().contains("expected input"));
    }

    #[test]
    fn lenet_forward_pass_runs() {
        let net = zoo::lenet();
        let precision = Precision::new(4);
        let mut rng = SplitMix64::seed_from_u64(7);
        let weights: Vec<_> = net
            .layers()
            .iter()
            .map(|l| LayerWeights::generate(l, || rng.range_u64(0, precision.max_value())))
            .collect();
        let mut rng2 = SplitMix64::seed_from_u64(8);
        let input = Tensor::from_fn(Shape::square(32, 1), |_, _, _| {
            rng2.range_u64(0, precision.max_value())
        });
        let out = forward(&net, &input, &weights, &DirectMac, precision).unwrap();
        assert_eq!(out.shape(), Shape::flat(10));
        assert!(out.max_value() <= precision.max_value());
        // Should be deterministic.
        let out2 = forward(&net, &input, &weights, &DirectMac, precision).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn forward_batch_matches_individual_forwards() {
        let net = zoo::lenet();
        let precision = Precision::new(4);
        let mut rng = SplitMix64::seed_from_u64(17);
        let weights: Vec<_> = net
            .layers()
            .iter()
            .map(|l| LayerWeights::generate(l, || rng.range_u64(0, precision.max_value())))
            .collect();
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| {
                Tensor::from_fn(Shape::square(32, 1), |_, _, _| {
                    rng.range_u64(0, precision.max_value())
                })
            })
            .collect();
        let batch = forward_batch(&net, &inputs, &weights, &DirectMac, precision).unwrap();
        assert_eq!(batch.len(), 3);
        for (input, got) in inputs.iter().zip(&batch) {
            let solo = forward(&net, input, &weights, &DirectMac, precision).unwrap();
            assert_eq!(got, &solo);
        }
        assert!(forward_batch(&net, &[], &weights, &DirectMac, precision)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn layer_replay_is_deterministic_and_seed_sensitive() {
        let net = zoo::lenet();
        let precision = Precision::new(4);
        let a = replay_layers(&net, &DirectMac, precision, 2026).unwrap();
        let b = replay_layers(&net, &DirectMac, precision, 2026).unwrap();
        assert_eq!(a, b, "same seed must replay identically");
        let c = replay_layers(&net, &DirectMac, precision, 2027).unwrap();
        assert_ne!(a, c, "the checksum must actually observe the outputs");
    }
}
