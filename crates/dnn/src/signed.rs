//! Signed inference on unsigned hardware: asymmetric (zero-point)
//! quantization.
//!
//! The optical MAC units operate on unsigned pulse counts, but real CNN
//! weights are signed. The standard resolution — used by every integer
//! accelerator — is affine quantization: a signed value `x` is stored as
//! `q = x + z` with zero-point `z`, and the signed inner product is
//! recovered from four unsigned quantities:
//!
//! ```text
//! Σ (a−z_a)(b−z_b) = Σ a·b − z_b·Σ a − z_a·Σ b + n·z_a·z_b
//! ```
//!
//! so the unsigned engines (including the bit-true optical ones) compute
//! `Σ a·b`, `Σ a` and `Σ b`, and cheap electrical logic applies the
//! correction. This module implements that path and verifies it against
//! plain signed arithmetic.

use crate::inference::MacEngine;
use crate::quant::Precision;

/// An asymmetric quantization scheme: signed values in
/// `[-zero_point, max − zero_point]` stored as unsigned codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedQuant {
    precision: Precision,
    zero_point: u64,
}

impl SignedQuant {
    /// Creates a scheme with the given precision and zero-point.
    ///
    /// # Panics
    ///
    /// Panics if the zero-point is not representable at the precision.
    #[must_use]
    pub fn new(precision: Precision, zero_point: u64) -> Self {
        assert!(
            zero_point <= precision.max_value(),
            "zero-point must be representable"
        );
        Self {
            precision,
            zero_point,
        }
    }

    /// Symmetric-range scheme: zero-point at mid-scale.
    #[must_use]
    pub fn centered(precision: Precision) -> Self {
        Self::new(precision, (precision.max_value() + 1).div_ceil(2))
    }

    /// The precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The zero-point.
    #[must_use]
    pub fn zero_point(&self) -> u64 {
        self.zero_point
    }

    /// Smallest representable signed value.
    #[must_use]
    pub fn min_signed(&self) -> i64 {
        -(self.zero_point as i64)
    }

    /// Largest representable signed value.
    #[must_use]
    pub fn max_signed(&self) -> i64 {
        (self.precision.max_value() - self.zero_point) as i64
    }

    /// Encodes a signed value (saturating into range).
    #[must_use]
    pub fn encode(&self, x: i64) -> u64 {
        let clamped = x.clamp(self.min_signed(), self.max_signed());
        (clamped + self.zero_point as i64) as u64
    }

    /// Decodes an unsigned code back to its signed value.
    #[must_use]
    pub fn decode(&self, q: u64) -> i64 {
        q as i64 - self.zero_point as i64
    }
}

/// Computes the signed inner product `Σ decode(a)·decode(b)` using only
/// unsigned engine operations plus the zero-point correction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn signed_inner_product(
    engine: &dyn MacEngine,
    a_codes: &[u64],
    a_quant: &SignedQuant,
    b_codes: &[u64],
    b_quant: &SignedQuant,
) -> i64 {
    assert_eq!(a_codes.len(), b_codes.len(), "operand length mismatch");
    let n = a_codes.len() as i64;
    // The unsigned engine computes Σ a·b. The row/column sums are the
    // engine's inner product against all-ones (how accumulators obtain
    // them in hardware: a summation pass on the same datapath).
    let ones: Vec<u64> = vec![1; a_codes.len()];
    let sum_ab = engine.inner_product(a_codes, b_codes) as i64;
    let sum_a = engine.inner_product(a_codes, &ones) as i64;
    let sum_b = engine.inner_product(&ones, b_codes) as i64;
    let za = a_quant.zero_point() as i64;
    let zb = b_quant.zero_point() as i64;
    sum_ab - zb * sum_a - za * sum_b + n * za * zb
}

/// A signed fully-connected layer evaluated entirely through an unsigned
/// engine: codes in, signed pre-activations out.
///
/// This is the end-to-end form of the zero-point identity: given input
/// codes (activations), a signed weight matrix stored as codes, and both
/// quantization schemes, every output neuron is one
/// [`signed_inner_product`] call.
///
/// # Panics
///
/// Panics if `weight_codes.len()` is not a multiple of the input length.
#[must_use]
pub fn signed_fully_connected(
    engine: &dyn MacEngine,
    input_codes: &[u64],
    input_quant: &SignedQuant,
    weight_codes: &[u64],
    weight_quant: &SignedQuant,
) -> Vec<i64> {
    assert!(
        !input_codes.is_empty() && weight_codes.len().is_multiple_of(input_codes.len()),
        "weight matrix must be outputs × inputs"
    );
    weight_codes
        .chunks(input_codes.len())
        .map(|row| signed_inner_product(engine, input_codes, input_quant, row, weight_quant))
        .collect()
}

/// Re-quantizes signed pre-activations back into codes for the next
/// layer: symmetric clamp-and-shift (`value >> shift`, saturating into the
/// scheme's signed range). Returns the codes.
#[must_use]
pub fn requantize_signed(values: &[i64], shift: u32, quant: &SignedQuant) -> Vec<u64> {
    values.iter().map(|&v| quant.encode(v >> shift)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::DirectMac;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn encode_decode_round_trip() {
        let q = SignedQuant::centered(Precision::new(4)); // z = 8, range −8..=7
        assert_eq!(q.min_signed(), -8);
        assert_eq!(q.max_signed(), 7);
        for x in -8..=7 {
            assert_eq!(q.decode(q.encode(x)), x, "x={x}");
        }
    }

    #[test]
    fn encode_saturates() {
        let q = SignedQuant::centered(Precision::new(4));
        assert_eq!(q.decode(q.encode(100)), 7);
        assert_eq!(q.decode(q.encode(-100)), -8);
    }

    #[test]
    fn asymmetric_zero_point() {
        let q = SignedQuant::new(Precision::new(8), 10);
        assert_eq!(q.min_signed(), -10);
        assert_eq!(q.max_signed(), 245);
        assert_eq!(q.encode(0), 10);
        assert_eq!(q.decode(0), -10);
    }

    #[test]
    fn signed_product_small_example() {
        let qa = SignedQuant::centered(Precision::new(4));
        let qb = SignedQuant::centered(Precision::new(4));
        // (−2)·3 + 5·(−1) = −11.
        let a: Vec<u64> = [-2i64, 5].iter().map(|&x| qa.encode(x)).collect();
        let b: Vec<u64> = [3i64, -1].iter().map(|&x| qb.encode(x)).collect();
        assert_eq!(signed_inner_product(&DirectMac, &a, &qa, &b, &qb), -11);
    }

    #[test]
    #[should_panic(expected = "representable")]
    fn zero_point_must_fit() {
        let _ = SignedQuant::new(Precision::new(4), 16);
    }

    #[test]
    fn fully_connected_layer_matches_reference() {
        let qi = SignedQuant::centered(Precision::new(4));
        let qw = SignedQuant::centered(Precision::new(4));
        // 2 outputs × 3 inputs, signed.
        let x = [3i64, -2, 5];
        let w = [[1i64, -1, 2], [-3, 0, 1]];
        let expected: Vec<i64> = w
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        let x_codes: Vec<u64> = x.iter().map(|&v| qi.encode(v)).collect();
        let w_codes: Vec<u64> = w.iter().flatten().map(|&v| qw.encode(v)).collect();
        let out = signed_fully_connected(&DirectMac, &x_codes, &qi, &w_codes, &qw);
        assert_eq!(out, expected);
    }

    #[test]
    fn requantize_saturates_into_range() {
        let q = SignedQuant::centered(Precision::new(4)); // −8..=7
        let codes = requantize_signed(&[100, -100, 12, -3], 2, &q);
        let decoded: Vec<i64> = codes.iter().map(|&c| q.decode(c)).collect();
        assert_eq!(decoded, vec![7, -8, 3, -1]);
    }

    #[test]
    #[should_panic(expected = "outputs × inputs")]
    fn fc_shape_checked() {
        let q = SignedQuant::centered(Precision::new(4));
        let _ = signed_fully_connected(&DirectMac, &[1, 2], &q, &[1, 2, 3], &q);
    }

    #[test]
    fn matches_signed_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x51_63ED);
        for _ in 0..128 {
            let len = rng.range_usize(1, 39);
            let values: Vec<(i64, i64)> = (0..len)
                .map(|_| (rng.range_i64(-8, 7), rng.range_i64(-8, 7)))
                .collect();
            let za = rng.range_u64(0, 15);
            let zb = rng.range_u64(0, 15);
            let qa = SignedQuant::new(Precision::new(4), za);
            let qb = SignedQuant::new(Precision::new(4), zb);
            // Clamp inputs into each scheme's representable range first.
            let signed: Vec<(i64, i64)> = values
                .iter()
                .map(|&(x, y)| {
                    (
                        x.clamp(qa.min_signed(), qa.max_signed()),
                        y.clamp(qb.min_signed(), qb.max_signed()),
                    )
                })
                .collect();
            let expected: i64 = signed.iter().map(|&(x, y)| x * y).sum();
            let a: Vec<u64> = signed.iter().map(|&(x, _)| qa.encode(x)).collect();
            let b: Vec<u64> = signed.iter().map(|&(_, y)| qb.encode(y)).collect();
            assert_eq!(
                signed_inner_product(&DirectMac, &a, &qa, &b, &qb),
                expected,
                "za={za} zb={zb}"
            );
        }
    }
}
