//! Weighted workload mixes over the network zoo.
//!
//! A serving fleet never sees one model: each tenant (a product surface,
//! an API customer) sends its own blend of architectures. [`NetworkMix`]
//! captures one such blend — a normalized categorical distribution over
//! network indices — with deterministic inverse-CDF sampling from a
//! [`SplitMix64`] stream, so a seeded request trace is bitwise
//! reproducible. The mix stores *indices into a caller-owned network
//! list* rather than `Network` values: tenants sharing an architecture
//! then share one analysis/evaluation of it.

use pixel_units::rng::SplitMix64;

/// A normalized weighted mix over network indices.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkMix {
    name: String,
    entries: Vec<(usize, f64)>,
    /// Cumulative weights, normalized so the last entry is exactly 1.0.
    cumulative: Vec<f64>,
}

impl NetworkMix {
    /// Builds a mix from `(network index, weight)` pairs.
    ///
    /// Weights are normalized; they need not sum to one.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, or any weight is non-finite or
    /// non-positive.
    #[must_use]
    pub fn new(name: impl Into<String>, entries: &[(usize, f64)]) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one network");
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        for &(index, weight) in entries {
            assert!(
                weight.is_finite() && weight > 0.0,
                "bad weight {weight} for network {index}"
            );
        }
        let mut running = 0.0;
        let mut cumulative: Vec<f64> = entries
            .iter()
            .map(|&(_, w)| {
                running += w / total;
                running
            })
            .collect();
        // Guard the last boundary against rounding: sample() must always
        // land inside the table.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            name: name.into(),
            entries: entries.to_vec(),
            cumulative,
        }
    }

    /// The mix's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(network index, raw weight)` entries, in construction order.
    #[must_use]
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// The normalized weight of entry `i`.
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        // lint:allow(P104) the i == 0 arm guards the subtraction
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }

    /// Draws one network index by inverse-CDF sampling (one `f64` from
    /// the stream per draw, regardless of mix size).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        let slot = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.entries.len() - 1);
        self.entries[slot].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_samples_in_proportion() {
        let mix = NetworkMix::new("t", &[(0, 3.0), (2, 1.0)]);
        assert!((mix.fraction(0) - 0.75).abs() < 1e-12);
        assert!((mix.fraction(1) - 0.25).abs() < 1e-12);
        let mut rng = SplitMix64::seed_from_u64(11);
        let draws = 40_000;
        let hits = (0..draws).filter(|_| mix.sample(&mut rng) == 0).count();
        #[allow(clippy::cast_precision_loss)]
        let rate = hits as f64 / f64::from(draws);
        assert!((rate - 0.75).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = NetworkMix::new("t", &[(1, 1.0), (4, 1.0), (5, 2.0)]);
        let trace = |seed| {
            let mut rng = SplitMix64::seed_from_u64(seed);
            (0..64).map(|_| mix.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(trace(9), trace(9));
        assert_ne!(trace(9), trace(10));
    }

    #[test]
    fn single_entry_mix_always_samples_it() {
        let mix = NetworkMix::new("solo", &[(3, 0.5)]);
        let mut rng = SplitMix64::seed_from_u64(1);
        assert!((0..100).all(|_| mix.sample(&mut rng) == 3));
        assert!((mix.fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_nonpositive_weights() {
        let _ = NetworkMix::new("bad", &[(0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_mix() {
        let _ = NetworkMix::new("empty", &[]);
    }
}
