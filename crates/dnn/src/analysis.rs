//! Per-layer computation counts (paper §IV-B).
//!
//! For a convolution with input `[H, H, C]`, `M` filters of size `R×R` at
//! stride `U` and output feature size `E` (Eq. 11):
//!
//! ```text
//! N_MVM = E²·M·C          N_mul = R²·N_MVM
//! N_add = N_mul + E²·M    N_act = E²·M
//! ```
//!
//! For fully-connected layers the paper's Table I is only consistent with
//! `N_mul = N_in²` (e.g. FC1 of VGG16: 25088² ≈ 629 M), `N_add = 2·N_mul`,
//! `N_act = N_mul`, `N_MVM = 1` — not the textbook `N_in·N_out`. Both
//! conventions are provided; [`FcCountConvention::Paper`] reproduces
//! Table I.

use crate::layer::{Layer, LayerKind};
use crate::network::Network;

/// How to count fully-connected layer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FcCountConvention {
    /// The paper's convention: `N_mul = N_in²`, `N_add = 2·N_in²`,
    /// `N_act = N_in²`, `N_MVM = 1`. Reproduces Table I.
    #[default]
    Paper,
    /// Textbook counting: `N_mul = N_in·N_out`, `N_add = N_in·N_out`,
    /// `N_act = N_out`, `N_MVM = 1`.
    Textbook,
}

/// Operation counts for one layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComputeCounts {
    /// Layer name.
    pub name: String,
    /// Matrix-vector multiplications `N_MVM`.
    pub mvm: u64,
    /// Scalar multiplications `N_mul`.
    pub mul: u64,
    /// Scalar additions `N_add`.
    pub add: u64,
    /// Activation-function evaluations `N_act`.
    pub act: u64,
}

impl ComputeCounts {
    /// Sums two count sets (layer totals → network totals).
    #[must_use]
    pub fn combined(&self, other: &Self) -> Self {
        Self {
            name: String::from("total"),
            mvm: self.mvm + other.mvm,
            mul: self.mul + other.mul,
            add: self.add + other.add,
            act: self.act + other.act,
        }
    }
}

/// Analyzes one layer. Pooling layers return all-zero counts (the paper's
/// tables cover conv and FC layers only).
///
/// # Examples
///
/// The paper's §IV-B worked example (VGG16 Conv1):
///
/// ```
/// use pixel_dnn::analysis::{analyze_layer, FcCountConvention};
/// use pixel_dnn::layer::{Layer, Shape};
///
/// let conv1 = Layer::conv_padded("Conv1", Shape::square(224, 3), 64, 3, 1, 1);
/// let counts = analyze_layer(&conv1, FcCountConvention::Paper);
/// assert_eq!(counts.mvm, 9_633_792);
/// assert_eq!(counts.mul, 86_704_128);
/// ```
#[must_use]
pub fn analyze_layer(layer: &Layer, convention: FcCountConvention) -> ComputeCounts {
    match layer.kind {
        LayerKind::Conv {
            filters, kernel, ..
        } => {
            let e = layer.output_feature_size() as u64;
            let m = filters as u64;
            let c = layer.input.c as u64;
            let r = kernel as u64;
            let mvm = e * e * m * c;
            let mul = r * r * mvm;
            let act = e * e * m;
            ComputeCounts {
                name: layer.name.clone(),
                mvm,
                mul,
                add: mul + act,
                act,
            }
        }
        LayerKind::Fc { outputs } => {
            let n_in = layer.input.elements() as u64;
            let n_out = outputs as u64;
            match convention {
                FcCountConvention::Paper => ComputeCounts {
                    name: layer.name.clone(),
                    mvm: 1,
                    mul: n_in * n_in,
                    add: 2 * n_in * n_in,
                    act: n_in * n_in,
                },
                FcCountConvention::Textbook => ComputeCounts {
                    name: layer.name.clone(),
                    mvm: 1,
                    mul: n_in * n_out,
                    add: n_in * n_out,
                    act: n_out,
                },
            }
        }
        LayerKind::Pool { .. } => ComputeCounts {
            name: layer.name.clone(),
            ..ComputeCounts::default()
        },
    }
}

/// Analyzes every compute layer of a network, in order.
#[must_use]
pub fn analyze_network(network: &Network, convention: FcCountConvention) -> Vec<ComputeCounts> {
    let _span = pixel_obs::span("analyze");
    let counts: Vec<ComputeCounts> = network
        .compute_layers()
        .map(|l| analyze_layer(l, convention))
        .collect();
    if pixel_obs::enabled() {
        pixel_obs::add("dnn.analysis.networks", 1);
        pixel_obs::add("dnn.analysis.layers", counts.len() as u64);
        pixel_obs::add("dnn.analysis.mvm_ops", counts.iter().map(|c| c.mvm).sum());
        pixel_obs::add("dnn.analysis.mul_ops", counts.iter().map(|c| c.mul).sum());
        pixel_obs::add("dnn.analysis.add_ops", counts.iter().map(|c| c.add).sum());
        pixel_obs::add("dnn.analysis.act_ops", counts.iter().map(|c| c.act).sum());
    }
    counts
}

/// Sums a network's per-layer counts.
#[must_use]
pub fn network_totals(network: &Network, convention: FcCountConvention) -> ComputeCounts {
    analyze_network(network, convention)
        .iter()
        .fold(ComputeCounts::default(), |acc, c| acc.combined(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Shape;

    #[test]
    fn paper_conv1_worked_example() {
        // §IV-B: Conv1 of VGG16 → N_MVM = 224²·64·3 = 9,633,792,
        // N_mul = 9·N_MVM = 86,704,128.
        let conv1 = Layer::conv_padded("Conv1", Shape::square(224, 3), 64, 3, 1, 1);
        let c = analyze_layer(&conv1, FcCountConvention::Paper);
        assert_eq!(c.mvm, 9_633_792);
        assert_eq!(c.mul, 86_704_128);
        assert_eq!(c.act, 224 * 224 * 64);
        assert_eq!(c.add, c.mul + c.act);
    }

    #[test]
    fn fc_paper_convention_is_input_squared() {
        let fc = Layer::fc("FC1", 25088, 4096);
        let c = analyze_layer(&fc, FcCountConvention::Paper);
        assert_eq!(c.mul, 25088 * 25088); // ≈ 629 M (Table I)
        assert_eq!(c.add, 2 * c.mul);
        assert_eq!(c.act, c.mul);
        assert_eq!(c.mvm, 1);
    }

    #[test]
    fn fc_textbook_convention() {
        let fc = Layer::fc("FC1", 25088, 4096);
        let c = analyze_layer(&fc, FcCountConvention::Textbook);
        assert_eq!(c.mul, 25088 * 4096);
        assert_eq!(c.add, 25088 * 4096);
        assert_eq!(c.act, 4096);
    }

    #[test]
    fn pooling_contributes_nothing() {
        use crate::layer::PoolKind;
        let pool = Layer::pool("Pool", Shape::square(8, 4), 2, 2, PoolKind::Max);
        let c = analyze_layer(&pool, FcCountConvention::Paper);
        assert_eq!((c.mvm, c.mul, c.add, c.act), (0, 0, 0, 0));
    }

    #[test]
    fn add_equals_mul_plus_act_for_conv() {
        // Structural invariant of the conv formulas.
        for (h, c_in, m, r, u) in [
            (58, 128, 256, 3, 1),
            (30, 256, 512, 3, 1),
            (114, 64, 128, 3, 1),
        ] {
            let layer = Layer::conv("c", Shape::square(h, c_in), m, r, u);
            let counts = analyze_layer(&layer, FcCountConvention::Paper);
            assert_eq!(counts.add, counts.mul + counts.act);
        }
    }

    #[test]
    fn totals_sum_layers() {
        let net = Network::new(
            "n",
            vec![
                Layer::conv("c1", Shape::square(6, 1), 2, 3, 1),
                Layer::fc("f1", 32, 10),
            ],
        );
        let per_layer = analyze_network(&net, FcCountConvention::Paper);
        let totals = network_totals(&net, FcCountConvention::Paper);
        assert_eq!(totals.mul, per_layer.iter().map(|c| c.mul).sum::<u64>());
        assert_eq!(totals.mvm, per_layer.iter().map(|c| c.mvm).sum::<u64>());
    }
}
