//! Validated networks: ordered layer lists with shape-consistency checks.

use crate::layer::{Layer, LayerKind, Shape};
use std::fmt;

/// Error describing a shape mismatch between consecutive layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// Name of the producing layer.
    pub from: String,
    /// Name of the consuming layer.
    pub to: String,
    /// Shape produced.
    pub produced: Shape,
    /// Shape expected by the consumer.
    pub expected: Shape,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {} produces {} but layer {} expects {}",
            self.from, self.produced, self.to, self.expected
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

/// A named CNN as an ordered list of layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from its layers.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// Network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Only the compute (conv + fc) layers.
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.is_compute())
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total stored weights across all layers.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Checks that each sequential layer's declared input is consistent
    /// with its predecessor's output.
    ///
    /// Two relaxations reflect the paper's tabulation conventions:
    /// channel counts must always match, but spatial sizes may differ by
    /// up to 2 pixels per side (baked-in padding), and a flat FC input may
    /// follow any shape with the same element count. Branching networks
    /// (ResNet shortcuts, GoogLeNet inception) are stored flattened, so
    /// layers marked as branch members (same input as a sibling) are
    /// exempt; this method only validates networks declared sequential.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShapeMismatchError`] found.
    pub fn validate_sequential(&self) -> Result<(), ShapeMismatchError> {
        for pair in self.layers.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            let produced = prev.output_shape();
            let expected = next.input;
            let ok = if matches!(next.kind, LayerKind::Fc { .. }) && produced.h > 1 {
                produced.elements() == expected.elements()
            } else {
                produced.c == expected.c && expected.h >= produced.h && expected.h - produced.h <= 4
            };
            if !ok {
                return Err(ShapeMismatchError {
                    from: prev.name.clone(),
                    to: next.name.clone(),
                    produced,
                    expected,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PoolKind;

    fn tiny_net() -> Network {
        Network::new(
            "tiny",
            vec![
                Layer::conv_padded("Conv1", Shape::square(8, 1), 4, 3, 1, 1),
                Layer::pool("Pool1", Shape::square(8, 4), 2, 2, PoolKind::Max),
                Layer::fc("FC1", 4 * 4 * 4, 10),
            ],
        )
    }

    #[test]
    fn accessors() {
        let net = tiny_net();
        assert_eq!(net.name(), "tiny");
        assert_eq!(net.len(), 3);
        assert_eq!(net.compute_layers().count(), 2);
        assert_eq!(net.total_weights(), 4 * 9 + 64 * 10);
        assert!(!net.is_empty());
    }

    #[test]
    fn sequential_validation_passes() {
        tiny_net().validate_sequential().unwrap();
    }

    #[test]
    fn sequential_validation_catches_channel_mismatch() {
        let net = Network::new(
            "bad",
            vec![
                Layer::conv("Conv1", Shape::square(8, 1), 4, 3, 1),
                Layer::conv("Conv2", Shape::square(6, 8), 4, 3, 1), // 8 ≠ 4 channels
            ],
        );
        let err = net.validate_sequential().unwrap_err();
        assert_eq!(err.from, "Conv1");
        assert_eq!(err.to, "Conv2");
        assert!(err.to_string().contains("Conv2"));
    }

    #[test]
    fn fc_after_conv_matches_by_element_count() {
        let net = Network::new(
            "flatten",
            vec![
                Layer::conv("Conv1", Shape::square(6, 1), 4, 3, 1),
                Layer::fc("FC1", 4 * 4 * 4, 10),
            ],
        );
        net.validate_sequential().unwrap();
    }

    #[test]
    fn padded_next_input_is_tolerated() {
        let net = Network::new(
            "padded",
            vec![
                Layer::conv("Conv1", Shape::square(8, 1), 4, 3, 1),
                // Produces 6×6×4; next layer tabulated with +2 padding.
                Layer::conv("Conv2", Shape::square(8, 4), 4, 3, 1),
            ],
        );
        net.validate_sequential().unwrap();
    }
}
