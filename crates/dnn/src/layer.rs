//! Layer specifications.
//!
//! Each layer carries its own explicit input shape, mirroring how the
//! paper's Table I presents networks. The paper sometimes bakes padding
//! into the listed input shape (VGG16 Conv2 = `[226,226,64]`, padding 0)
//! and sometimes relies on same-padding without listing it (VGG16 Conv1 =
//! `[224,224,3]` yet `E = 224`); the explicit `padding` field lets us
//! encode both conventions faithfully.

use std::fmt;

/// A `height × width × channels` feature-map shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    /// Feature height (paper's `H`).
    pub h: usize,
    /// Feature width.
    pub w: usize,
    /// Channels (paper's `C`).
    pub c: usize,
}

impl Shape {
    /// Creates a shape.
    #[must_use]
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// A square shape `[s, s, c]`.
    #[must_use]
    pub const fn square(s: usize, c: usize) -> Self {
        Self::new(s, s, c)
    }

    /// A flat vector shape `[n]` represented as `[1, 1, n]`.
    #[must_use]
    pub const fn flat(n: usize) -> Self {
        Self::new(1, 1, n)
    }

    /// Total element count.
    #[must_use]
    pub const fn elements(&self) -> usize {
        self.h * self.w * self.c
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.h == 1 && self.w == 1 {
            write!(f, "[{}]", self.c)
        } else {
            write!(f, "[{},{},{}]", self.h, self.w, self.c)
        }
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Average,
}

/// What a layer computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution with `filters` kernels of `kernel × kernel`, applied at
    /// `stride` with `padding` zeros on each border (paper's `M`, `R`, `U`).
    Conv {
        /// Number of filters `M`.
        filters: usize,
        /// Kernel size `R`.
        kernel: usize,
        /// Stride `U`.
        stride: usize,
        /// Zero padding per border.
        padding: usize,
    },
    /// Fully-connected layer producing `outputs` neurons.
    Fc {
        /// Output neuron count.
        outputs: usize,
    },
    /// Pooling with `kernel × kernel` windows at `stride`.
    Pool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Max or average.
        kind: PoolKind,
    },
}

/// One network layer: a kind plus its explicit input shape and a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable name ("Conv1", "FC2", …).
    pub name: String,
    /// Input feature-map shape as the paper tabulates it.
    pub input: Shape,
    /// The computation.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates an unpadded convolution layer (the common case for layers
    /// whose tabulated input shape already includes padding).
    #[must_use]
    pub fn conv(
        name: impl Into<String>,
        input: Shape,
        filters: usize,
        kernel: usize,
        stride: usize,
    ) -> Self {
        Self::conv_padded(name, input, filters, kernel, stride, 0)
    }

    /// Creates a convolution layer with explicit border padding.
    #[must_use]
    pub fn conv_padded(
        name: impl Into<String>,
        input: Shape,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.into(),
            input,
            kind: LayerKind::Conv {
                filters,
                kernel,
                stride,
                padding,
            },
        }
    }

    /// Creates a fully-connected layer on a flat input of `inputs` neurons.
    #[must_use]
    pub fn fc(name: impl Into<String>, inputs: usize, outputs: usize) -> Self {
        Self {
            name: name.into(),
            input: Shape::flat(inputs),
            kind: LayerKind::Fc { outputs },
        }
    }

    /// Creates a pooling layer.
    #[must_use]
    pub fn pool(
        name: impl Into<String>,
        input: Shape,
        kernel: usize,
        stride: usize,
        kind: PoolKind,
    ) -> Self {
        Self {
            name: name.into(),
            input,
            kind: LayerKind::Pool {
                kernel,
                stride,
                kind,
            },
        }
    }

    /// Output feature size per Eq. 11, `E = ⌊(H + 2·pad − R + U)/U⌋`, for
    /// conv and pool layers; 1 for fully-connected.
    #[must_use]
    pub fn output_feature_size(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kernel,
                stride,
                padding,
                ..
            } => {
                debug_assert!(stride > 0, "stride must be positive");
                ((self.input.h + 2 * padding).saturating_sub(kernel) + stride) / stride
            }
            LayerKind::Pool { kernel, stride, .. } => {
                debug_assert!(stride > 0, "stride must be positive");
                (self.input.h.saturating_sub(kernel) + stride) / stride
            }
            LayerKind::Fc { .. } => 1,
        }
    }

    /// Output shape of the layer.
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        let e = self.output_feature_size();
        match self.kind {
            LayerKind::Conv { filters, .. } => Shape::square(e, filters),
            LayerKind::Pool { .. } => Shape::square(e, self.input.c),
            LayerKind::Fc { outputs } => Shape::flat(outputs),
        }
    }

    /// True for layers that perform MACs (conv and fully-connected).
    #[must_use]
    pub fn is_compute(&self) -> bool {
        !matches!(self.kind, LayerKind::Pool { .. })
    }

    /// Number of weights the layer stores.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                filters, kernel, ..
            } => filters * kernel * kernel * self.input.c,
            LayerKind::Fc { outputs } => self.input.elements() * outputs,
            LayerKind::Pool { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq11_output_feature_size() {
        // VGG16 Conv1 as tabulated: [224,224,3] with same-padding → E = 224.
        let conv = Layer::conv_padded("c", Shape::square(224, 3), 64, 3, 1, 1);
        assert_eq!(conv.output_feature_size(), 224);

        // VGG16 Conv2 as tabulated: padding baked into [226,226,64].
        let conv2 = Layer::conv("c", Shape::square(226, 64), 64, 3, 1);
        assert_eq!(conv2.output_feature_size(), 224);

        // ZFNet Conv1: [224,224,3] pad 1, 7×7 stride 2 → ⌊(226−7+2)/2⌋ = 110.
        let zf = Layer::conv_padded("c", Shape::square(224, 3), 96, 7, 2, 1);
        assert_eq!(zf.output_feature_size(), 110);
    }

    #[test]
    fn output_shapes() {
        let conv = Layer::conv("c", Shape::square(114, 64), 128, 3, 1);
        assert_eq!(conv.output_shape(), Shape::square(112, 128));

        let pool = Layer::pool("p", Shape::square(112, 128), 2, 2, PoolKind::Max);
        assert_eq!(pool.output_shape(), Shape::square(56, 128));

        let fc = Layer::fc("f", 25088, 4096);
        assert_eq!(fc.output_shape(), Shape::flat(4096));
        assert_eq!(fc.input.elements(), 25088);
    }

    #[test]
    fn weight_counts() {
        let conv = Layer::conv("c", Shape::square(226, 3), 64, 3, 1);
        assert_eq!(conv.weight_count(), 64 * 9 * 3);
        let fc = Layer::fc("f", 120, 84);
        assert_eq!(fc.weight_count(), 120 * 84);
        let pool = Layer::pool("p", Shape::square(4, 4), 2, 2, PoolKind::Average);
        assert_eq!(pool.weight_count(), 0);
        assert!(!pool.is_compute());
        assert!(conv.is_compute());
    }

    #[test]
    fn degenerate_kernel_larger_than_input() {
        // LeNet Conv3-style 5×5 on a 5×5 input collapses to E = 1.
        let conv = Layer::conv("c", Shape::square(5, 16), 120, 5, 1);
        assert_eq!(conv.output_feature_size(), 1);
        // Kernel bigger than input saturates rather than underflowing.
        let tiny = Layer::conv("c", Shape::square(2, 1), 1, 5, 1);
        assert_eq!(tiny.output_feature_size(), 1);
    }

    #[test]
    fn shape_display() {
        assert_eq!(Shape::square(224, 3).to_string(), "[224,224,3]");
        assert_eq!(Shape::flat(4096).to_string(), "[4096]");
    }
}
