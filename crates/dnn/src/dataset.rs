//! Synthetic labelled dataset generation.
//!
//! The paper evaluates inference cost, not accuracy, so no dataset ships
//! with it. For end-to-end experiments (and the quantization-robustness
//! study) we generate a deterministic synthetic "digit" set: each class
//! is a distinct geometric glyph (bars, crosses, boxes) plus seeded
//! noise, rendered at any resolution — enough structure that a small CNN
//! separates classes, with zero external data dependencies.

use crate::layer::Shape;
use crate::quant::Precision;
use crate::tensor::Tensor;
use pixel_units::rng::SplitMix64;

/// A labelled example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Input image.
    pub image: Tensor,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// Deterministic synthetic glyph dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlyphDataset {
    size: usize,
    classes: usize,
    noise_level: u64,
    precision: Precision,
}

impl GlyphDataset {
    /// Creates a generator for `size × size` single-channel images with
    /// `classes` glyph classes (max 8) at the given activation precision.
    ///
    /// # Panics
    ///
    /// Panics if `size < 8` or `classes` is 0 or exceeds 8.
    #[must_use]
    pub fn new(size: usize, classes: usize, precision: Precision) -> Self {
        assert!(size >= 8, "glyphs need at least 8×8 pixels");
        assert!((1..=8).contains(&classes), "1..=8 classes supported");
        Self {
            size,
            classes,
            noise_level: precision.max_value() / 4,
            precision,
        }
    }

    /// Image side length.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Whether pixel `(h, w)` belongs to the glyph of `class` on an
    /// `n × n` canvas.
    fn glyph_pixel(&self, class: usize, h: usize, w: usize) -> bool {
        let n = self.size;
        let mid = n / 2;
        let band = (n / 8).max(1);
        let near = |a: usize, b: usize| a.abs_diff(b) < band;
        match class {
            0 => near(h, mid),                                           // horizontal bar
            1 => near(w, mid),                                           // vertical bar
            2 => near(h, w),                                             // main diagonal
            3 => near(h + w, n - 1),                                     // anti-diagonal
            4 => near(h, mid) || near(w, mid),                           // cross
            5 => h < band || h >= n - band || w < band || w >= n - band, // box
            6 => near(h, mid) && w >= mid,                               // half bar
            7 => (h / (2 * band)).is_multiple_of(2),                     // stripes
            _ => false,
        }
    }

    /// Renders one example: glyph pixels at full scale, background at
    /// zero, plus uniform noise up to a quarter of full scale.
    #[must_use]
    pub fn example(&self, label: usize, seed: u64) -> Example {
        assert!(label < self.classes, "label out of range");
        let mut rng = SplitMix64::seed_from_u64(seed ^ (label as u64).wrapping_mul(0x9E37_79B9));
        let full = self.precision.max_value();
        let image = Tensor::from_fn(Shape::square(self.size, 1), |h, w, _| {
            let base = if self.glyph_pixel(label, h, w) {
                full
            } else {
                0
            };
            let noise = rng.range_u64(0, self.noise_level);
            self.precision.clamp(base.saturating_add(noise))
        });
        Example { image, label }
    }

    /// Generates a balanced batch of `per_class` examples per class.
    #[must_use]
    pub fn batch(&self, per_class: usize, seed: u64) -> Vec<Example> {
        let mut out = Vec::with_capacity(per_class * self.classes);
        for label in 0..self.classes {
            for i in 0..per_class {
                out.push(self.example(label, seed.wrapping_add(i as u64 * 7919)));
            }
        }
        out
    }
}

/// Classifies by matched filtering: correlate the image against each
/// class's clean glyph template and pick the argmax. Used as a
/// weight-free "network" for end-to-end accuracy experiments: templates
/// are the FC weights of a one-layer linear classifier.
#[must_use]
pub fn template_weights(dataset: &GlyphDataset) -> Vec<Vec<u64>> {
    (0..dataset.classes())
        .map(|class| {
            let mut w = Vec::with_capacity(dataset.size() * dataset.size());
            for h in 0..dataset.size() {
                for x in 0..dataset.size() {
                    w.push(u64::from(dataset.glyph_pixel(class, h, x)));
                }
            }
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{DirectMac, MacEngine};
    use crate::metrics::argmax;

    fn dataset() -> GlyphDataset {
        GlyphDataset::new(16, 6, Precision::new(4))
    }

    #[test]
    fn examples_are_deterministic() {
        let d = dataset();
        assert_eq!(d.example(2, 42), d.example(2, 42));
        assert_ne!(d.example(2, 42), d.example(2, 43));
    }

    #[test]
    fn batches_are_balanced() {
        let d = dataset();
        let batch = d.batch(5, 1);
        assert_eq!(batch.len(), 30);
        for label in 0..6 {
            assert_eq!(batch.iter().filter(|e| e.label == label).count(), 5);
        }
    }

    #[test]
    fn glyph_classes_are_distinct() {
        let d = dataset();
        let templates = template_weights(&d);
        for a in 0..6 {
            for b in (a + 1)..6 {
                assert_ne!(templates[a], templates[b], "classes {a} vs {b}");
            }
        }
    }

    #[test]
    fn matched_filter_classifies_clean_batch() {
        let d = dataset();
        let templates = template_weights(&d);
        let mut correct = 0;
        let batch = d.batch(8, 3);
        for ex in &batch {
            let flat = ex.image.to_flat();
            // Cosine-style normalization (÷√mass) separates glyphs that
            // are subsets of one another (a bar inside the cross).
            let scores: Vec<u64> = templates
                .iter()
                .map(|t| {
                    let mass: u64 = t.iter().sum();
                    #[allow(clippy::cast_precision_loss)]
                    let normalized =
                        DirectMac.inner_product(&flat, t) as f64 / (mass.max(1) as f64).sqrt();
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        (normalized * 1000.0) as u64
                    }
                })
                .collect();
            if argmax(&scores) == ex.label {
                correct += 1;
            }
        }
        let accuracy = f64::from(correct) / batch.len() as f64;
        assert!(accuracy > 0.9, "matched filter accuracy {accuracy}");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_bounds_checked() {
        let _ = dataset().example(6, 0);
    }
}
