//! Quantization helpers for fixed-precision unsigned inference.

use crate::tensor::Tensor;

/// An unsigned fixed-point precision of `bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision(u32);

impl Precision {
    /// Creates a precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 32 (products must fit in u64).
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "precision must be 1..=32 bits");
        Self(bits)
    }

    /// Bits of precision.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Largest representable value.
    #[must_use]
    pub const fn max_value(self) -> u64 {
        (1u64 << self.0) - 1
    }

    /// Saturating clamp into range.
    #[must_use]
    pub fn clamp(self, value: u64) -> u64 {
        value.min(self.max_value())
    }

    /// Quantizes a float in `[0, 1]` to the full range.
    #[must_use]
    pub fn quantize_unit(self, x: f64) -> u64 {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        {
            (x.clamp(0.0, 1.0) * self.max_value() as f64).round() as u64
        }
    }

    /// Rescales a tensor so its maximum fits this precision, by a uniform
    /// right shift (power-of-two requantization, as fixed-point inference
    /// hardware does between layers). Returns the shift used.
    ///
    /// # Examples
    ///
    /// ```
    /// use pixel_dnn::quant::Precision;
    /// use pixel_dnn::tensor::Tensor;
    ///
    /// let p = Precision::new(4);
    /// let mut t = Tensor::from_flat(&[150, 30, 7]);
    /// assert_eq!(p.requantize(&mut t), 4); // 150 >> 4 = 9 ≤ 15
    /// assert_eq!(t.to_flat(), vec![9, 1, 0]);
    /// ```
    pub fn requantize(self, t: &mut Tensor) -> u32 {
        let max = t.max_value();
        let mut shift = 0;
        while (max >> shift) > self.max_value() {
            shift += 1;
        }
        if shift > 0 {
            t.map_in_place(|v| v >> shift);
        }
        shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Shape;

    #[test]
    fn range_arithmetic() {
        let p = Precision::new(4);
        assert_eq!(p.max_value(), 15);
        assert_eq!(p.clamp(20), 15);
        assert_eq!(p.clamp(7), 7);
    }

    #[test]
    fn quantize_unit_endpoints() {
        let p = Precision::new(8);
        assert_eq!(p.quantize_unit(0.0), 0);
        assert_eq!(p.quantize_unit(1.0), 255);
        assert_eq!(p.quantize_unit(0.5), 128);
        assert_eq!(p.quantize_unit(2.0), 255);
        assert_eq!(p.quantize_unit(-1.0), 0);
    }

    #[test]
    fn requantize_shifts_to_fit() {
        let p = Precision::new(4);
        let mut t = Tensor::from_flat(&[150, 30, 7]);
        let shift = p.requantize(&mut t);
        assert_eq!(shift, 4); // 150 >> 4 = 9 ≤ 15
        assert_eq!(t.to_flat(), vec![9, 1, 0]);
    }

    #[test]
    fn requantize_noop_when_in_range() {
        let p = Precision::new(8);
        let mut t = Tensor::from_flat(&[255, 3]);
        assert_eq!(p.requantize(&mut t), 0);
        assert_eq!(t.to_flat(), vec![255, 3]);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn rejects_zero_bits() {
        let _ = Precision::new(0);
    }

    #[test]
    fn requantize_empty_shape() {
        let p = Precision::new(4);
        let mut t = Tensor::zeros(Shape::flat(0));
        assert_eq!(p.requantize(&mut t), 0);
    }
}
