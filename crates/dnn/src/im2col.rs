//! im2col convolution lowering.
//!
//! Accelerators (and the paper's MVM framing) view a convolution as a
//! matrix-vector product per output position: the receptive field is
//! unrolled into a column and multiplied against the unrolled kernels.
//! This module provides that lowering as an alternative execution path to
//! [`crate::inference::conv2d`], verified equivalent — which is exactly
//! the `N_MVM = E²MC` accounting the analysis uses.

use crate::inference::{LayerWeights, MacEngine, ShapeError};
use crate::layer::{Layer, LayerKind, Shape};
use crate::tensor::Tensor;

/// The unrolled patch matrix of one convolution input: row `p` holds the
/// receptive field of output position `p` (`E²` rows of `R²·C` values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl PatchMatrix {
    /// Number of patches (`E²`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Patch length (`R²·C`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One patch row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row(&self, row: usize) -> &[u64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }
}

/// Unrolls `input` for `layer` into a patch matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input does not match the layer.
///
/// # Panics
///
/// Panics if `layer` is not a convolution.
pub fn im2col(layer: &Layer, input: &Tensor) -> Result<PatchMatrix, ShapeError> {
    let LayerKind::Conv {
        kernel,
        stride,
        padding,
        ..
    } = layer.kind
    else {
        // lint:allow(P003) caller contract: im2col is only invoked on conv layers
        panic!("im2col requires a convolution layer");
    };
    if input.shape() != layer.input {
        return Err(ShapeError {
            layer: layer.name.clone(),
            got: input.shape(),
            want: layer.input,
        });
    }
    let e = layer.output_feature_size();
    let channels = layer.input.c;
    let cols = kernel * kernel * channels;
    let mut data = Vec::with_capacity(e * e * cols);
    for oh in 0..e {
        for ow in 0..e {
            for kh in 0..kernel {
                for kw in 0..kernel {
                    #[allow(clippy::cast_possible_wrap)]
                    let ih = (oh * stride + kh) as isize - padding as isize;
                    #[allow(clippy::cast_possible_wrap)]
                    let iw = (ow * stride + kw) as isize - padding as isize;
                    for c in 0..channels {
                        data.push(input.get_padded(ih, iw, c));
                    }
                }
            }
        }
    }
    Ok(PatchMatrix {
        rows: e * e,
        cols,
        data,
    })
}

/// Executes a convolution as `E²` matrix-vector products over the patch
/// matrix — the paper's MVM view of a conv layer.
///
/// # Errors
///
/// Returns [`ShapeError`] on input mismatch.
///
/// # Panics
///
/// Panics if `layer` is not a convolution or `weights` are not conv
/// weights.
pub fn conv2d_im2col(
    layer: &Layer,
    input: &Tensor,
    weights: &LayerWeights,
    engine: &dyn MacEngine,
) -> Result<Tensor, ShapeError> {
    let LayerKind::Conv { filters, .. } = layer.kind else {
        // lint:allow(P003) caller contract: conv2d_im2col dispatches on conv layers
        panic!("conv2d_im2col requires a convolution layer");
    };
    let patches = im2col(layer, input)?;
    let e = layer.output_feature_size();
    let mut out = Tensor::zeros(Shape::square(e, filters));
    let LayerWeights::Conv {
        kernel,
        channels,
        data,
        ..
    } = weights
    else {
        // lint:allow(P003) caller contract: conv weights accompany conv layers
        panic!("conv weights required");
    };
    let klen = kernel * kernel * channels;
    for p in 0..patches.rows() {
        let (oh, ow) = (p / e, p % e);
        for m in 0..filters {
            let kern = &data[m * klen..(m + 1) * klen];
            let v = engine.inner_product(patches.row(p), kern);
            out.set(oh, ow, m, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{conv2d, DirectMac};
    use pixel_units::rng::SplitMix64;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Tensor::from_fn(shape, |_, _, _| rng.range_u64(0, 15))
    }

    #[test]
    fn patch_matrix_dimensions() {
        let layer = Layer::conv("c", Shape::square(6, 3), 4, 3, 1);
        let input = random_tensor(Shape::square(6, 3), 1);
        let patches = im2col(&layer, &input).unwrap();
        assert_eq!(patches.rows(), 4 * 4);
        assert_eq!(patches.cols(), 9 * 3);
    }

    #[test]
    fn first_patch_is_top_left_window() {
        let layer = Layer::conv("c", Shape::square(4, 1), 1, 2, 1);
        let input = Tensor::from_fn(Shape::square(4, 1), |h, w, _| (h * 4 + w) as u64);
        let patches = im2col(&layer, &input).unwrap();
        assert_eq!(patches.row(0), &[0, 1, 4, 5]);
    }

    #[test]
    fn im2col_matches_direct_conv() {
        for (h, c, m, r, u, p) in [
            (8, 2, 3, 3, 1, 0),
            (9, 1, 2, 3, 2, 0),
            (6, 3, 4, 3, 1, 1),
            (5, 2, 2, 5, 1, 2),
        ] {
            let layer = Layer::conv_padded("c", Shape::square(h, c), m, r, u, p);
            let input = random_tensor(Shape::square(h, c), 7);
            let mut rng = SplitMix64::seed_from_u64(13);
            let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
            let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
            let lowered = conv2d_im2col(&layer, &input, &weights, &DirectMac).unwrap();
            assert_eq!(direct, lowered, "h={h} c={c} m={m} r={r} u={u} p={p}");
        }
    }

    #[test]
    fn patch_count_equals_paper_mvm_per_filter_channel() {
        // N_MVM = E²·M·C; the patch matrix has E² rows, each reused for
        // all M filters and covering all C channels.
        use crate::analysis::{analyze_layer, FcCountConvention};
        let layer = Layer::conv("c", Shape::square(10, 8), 4, 3, 1);
        let input = random_tensor(Shape::square(10, 8), 3);
        let patches = im2col(&layer, &input).unwrap();
        let counts = analyze_layer(&layer, FcCountConvention::Paper);
        assert_eq!(
            counts.mvm,
            (patches.rows() * 4 * 8) as u64,
            "E² rows × M × C"
        );
    }

    #[test]
    fn shape_mismatch_reported() {
        let layer = Layer::conv("c", Shape::square(6, 3), 4, 3, 1);
        let input = random_tensor(Shape::square(5, 3), 1);
        assert!(im2col(&layer, &input).is_err());
    }
}
