//! VGG16 as tabulated in the paper's Table I: ten convolution layers with
//! padding baked into the tabulated input shapes, plus three FC layers.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// The paper's VGG16 variant (Table I).
#[must_use]
pub fn vgg16() -> Network {
    Network::new(
        "VGG16",
        vec![
            Layer::conv_padded("Conv1", Shape::square(224, 3), 64, 3, 1, 1),
            Layer::conv("Conv2", Shape::square(226, 64), 64, 3, 1),
            Layer::pool("Pool1", Shape::square(224, 64), 2, 2, PoolKind::Max),
            Layer::conv("Conv3", Shape::square(114, 64), 128, 3, 1),
            Layer::conv("Conv4", Shape::square(114, 128), 128, 3, 1),
            Layer::pool("Pool2", Shape::square(112, 128), 2, 2, PoolKind::Max),
            Layer::conv("Conv5", Shape::square(58, 128), 256, 3, 1),
            Layer::conv("Conv6", Shape::square(58, 256), 256, 3, 1),
            Layer::pool("Pool3", Shape::square(56, 256), 2, 2, PoolKind::Max),
            Layer::conv("Conv7", Shape::square(30, 256), 512, 3, 1),
            Layer::conv("Conv8", Shape::square(30, 512), 512, 3, 1),
            Layer::pool("Pool4", Shape::square(28, 512), 2, 2, PoolKind::Max),
            Layer::conv("Conv9", Shape::square(16, 512), 512, 3, 1),
            Layer::conv("Conv10", Shape::square(16, 512), 512, 3, 1),
            Layer::pool("Pool5", Shape::square(14, 512), 2, 2, PoolKind::Max),
            Layer::fc("FC1", 25088, 4096),
            Layer::fc("FC2", 4096, 4096),
            Layer::fc("FC3", 4096, 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_network, FcCountConvention};

    /// Table I oracle: (name, MVM, Mul, Add, Act) in raw operation counts,
    /// checked against the paper's values in millions.
    const TABLE_I_MILLIONS: &[(&str, f64, f64, f64, f64)] = &[
        ("Conv1", 9.63, 86.7, 89.9, 3.21),
        ("Conv2", 206.0, 1850.0, 1853.0, 3.21),
        ("Conv3", 103.0, 925.0, 926.0, 1.61),
        ("Conv4", 206.0, 1850.0, 1850.0, 1.61),
        ("Conv5", 103.0, 926.0, 926.0, 0.803),
        ("Conv6", 206.0, 1850.0, 1850.0, 0.803),
        ("Conv7", 103.0, 925.0, 925.0, 0.401),
        ("Conv8", 206.0, 1850.0, 1850.0, 0.401),
        ("Conv9", 51.4, 462.0, 463.0, 0.100),
        ("Conv10", 51.4, 462.0, 463.0, 0.100),
        ("FC1", 1e-6, 629.0, 1259.0, 629.0),
        ("FC2", 1e-6, 16.8, 33.6, 16.8),
        ("FC3", 1e-6, 16.8, 33.6, 16.8),
    ];

    fn close(actual: u64, paper_millions: f64) -> bool {
        #[allow(clippy::cast_precision_loss)]
        let actual_m = actual as f64 / 1e6;
        if paper_millions < 1.0 {
            (actual_m - paper_millions).abs() < 0.05
        } else {
            // Paper rounds to 3 significant figures.
            (actual_m - paper_millions).abs() / paper_millions < 0.005
        }
    }

    #[test]
    fn reproduces_table_i() {
        let counts = analyze_network(&vgg16(), FcCountConvention::Paper);
        assert_eq!(counts.len(), TABLE_I_MILLIONS.len());
        for (c, &(name, mvm, mul, add, act)) in counts.iter().zip(TABLE_I_MILLIONS) {
            assert_eq!(c.name, name);
            assert!(close(c.mvm, mvm), "{name} MVM: {} vs {mvm}M", c.mvm);
            assert!(close(c.mul, mul), "{name} Mul: {} vs {mul}M", c.mul);
            assert!(close(c.add, add), "{name} Add: {} vs {add}M", c.add);
            assert!(close(c.act, act), "{name} Act: {} vs {act}M", c.act);
        }
    }

    #[test]
    fn conv1_exact_values() {
        let counts = analyze_network(&vgg16(), FcCountConvention::Paper);
        assert_eq!(counts[0].mvm, 9_633_792);
        assert_eq!(counts[0].mul, 86_704_128);
    }

    #[test]
    fn sequential_shapes_are_consistent() {
        vgg16().validate_sequential().unwrap();
    }

    #[test]
    fn thirteen_compute_layers() {
        assert_eq!(vgg16().compute_layers().count(), 13);
    }
}
