//! ZFNet (Zeiler & Fergus, 2014) — the network of the paper's Fig. 9
//! per-layer latency study.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// ZFNet: five convolutions and three FC layers.
#[must_use]
pub fn zfnet() -> Network {
    Network::new(
        "ZFNet",
        vec![
            // 224×224×3 pad 1, 96 kernels of 7×7 at stride 2 → 110.
            Layer::conv_padded("Conv1", Shape::square(224, 3), 96, 7, 2, 1),
            Layer::pool("Pool1", Shape::square(110, 96), 2, 2, PoolKind::Max),
            // 55×55×96, 256 kernels of 5×5 at stride 2 → 26.
            Layer::conv("Conv2", Shape::square(55, 96), 256, 5, 2),
            Layer::pool("Pool2", Shape::square(26, 256), 2, 2, PoolKind::Max),
            // 13×13 padded to 15, 3×3 kernels → 13.
            Layer::conv("Conv3", Shape::square(15, 256), 384, 3, 1),
            Layer::conv("Conv4", Shape::square(15, 384), 384, 3, 1),
            Layer::conv("Conv5", Shape::square(15, 384), 256, 3, 1),
            Layer::pool("Pool3", Shape::square(13, 256), 2, 2, PoolKind::Max),
            Layer::fc("FC1", 9216, 4096),
            Layer::fc("FC2", 4096, 4096),
            Layer::fc("FC3", 4096, 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_network, network_totals, FcCountConvention};

    #[test]
    fn canonical_feature_sizes() {
        let net = zfnet();
        let sizes: Vec<_> = net
            .compute_layers()
            .map(|l| l.output_feature_size())
            .collect();
        assert_eq!(sizes, [110, 26, 13, 13, 13, 1, 1, 1]);
    }

    #[test]
    fn total_mul_matches_table_ii_scale() {
        // Table II charges ZFNet's EE multiplies 1225 mJ; with the implied
        // ~1 nJ/mul that is ≈1.2 G multiplies.
        let totals = network_totals(&zfnet(), FcCountConvention::Paper);
        #[allow(clippy::cast_precision_loss)]
        let g = totals.mul as f64 / 1e9;
        assert!((1.0..1.45).contains(&g), "total mul = {g} G");
    }

    #[test]
    fn conv2_dominates_convs() {
        // Fig. 9 singles out Conv2 as the heavyweight layer.
        let counts = analyze_network(&zfnet(), FcCountConvention::Paper);
        let conv2 = counts.iter().find(|c| c.name == "Conv2").unwrap();
        for c in counts.iter().filter(|c| c.name != "Conv2") {
            assert!(
                conv2.mul > c.mul,
                "Conv2 ({}) vs {} ({})",
                conv2.mul,
                c.name,
                c.mul
            );
        }
    }

    #[test]
    fn sequential_shapes_are_consistent() {
        zfnet().validate_sequential().unwrap();
    }
}
