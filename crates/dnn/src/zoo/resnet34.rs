//! ResNet-34 (He et al., 2016), stored flattened: each basic block's two
//! 3×3 convolutions and each stage's 1×1 projection shortcut appear as
//! individual layers with their true input shapes.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// Appends one basic block (two 3×3 convs) operating at spatial size
/// `s` (tabulated padded as `s + 2`) with `c` channels.
fn push_block(layers: &mut Vec<Layer>, stage: usize, block: usize, s: usize, c: usize) {
    for half in 1..=2 {
        layers.push(Layer::conv(
            format!("Conv{stage}_{block}_{half}"),
            Shape::square(s + 2, c),
            c,
            3,
            1,
        ));
    }
}

/// ResNet-34: 33 convolutions + 3 projection shortcuts + global average
/// pool + FC, per the original topology.
#[must_use]
pub fn resnet34() -> Network {
    let mut layers = vec![
        // Stem: 7×7/2 with pad 3 → 112, then 2×2 pool → 56.
        Layer::conv_padded("Conv1", Shape::square(224, 3), 64, 7, 2, 3),
        Layer::pool("Pool1", Shape::square(112, 64), 2, 2, PoolKind::Max),
    ];

    // Stage 2: three 64-channel blocks at 56×56.
    for b in 1..=3 {
        push_block(&mut layers, 2, b, 56, 64);
    }

    // Stage 3: downsample to 28×28 / 128 channels (stride-2 first conv +
    // 1×1 projection), then continue.
    layers.push(Layer::conv("Conv3_1_1", Shape::square(58, 64), 128, 3, 2));
    layers.push(Layer::conv("Conv3_1_2", Shape::square(30, 128), 128, 3, 1));
    layers.push(Layer::conv("Proj3", Shape::square(56, 64), 128, 1, 2));
    for b in 2..=4 {
        push_block(&mut layers, 3, b, 28, 128);
    }

    // Stage 4: 14×14 / 256.
    layers.push(Layer::conv("Conv4_1_1", Shape::square(30, 128), 256, 3, 2));
    layers.push(Layer::conv("Conv4_1_2", Shape::square(16, 256), 256, 3, 1));
    layers.push(Layer::conv("Proj4", Shape::square(28, 128), 256, 1, 2));
    for b in 2..=6 {
        push_block(&mut layers, 4, b, 14, 256);
    }

    // Stage 5: 7×7 / 512.
    layers.push(Layer::conv("Conv5_1_1", Shape::square(16, 256), 512, 3, 2));
    layers.push(Layer::conv("Conv5_1_2", Shape::square(9, 512), 512, 3, 1));
    layers.push(Layer::conv("Proj5", Shape::square(14, 256), 512, 1, 2));
    for b in 2..=3 {
        push_block(&mut layers, 5, b, 7, 512);
    }

    layers.push(Layer::pool(
        "AvgPool",
        Shape::square(7, 512),
        7,
        7,
        PoolKind::Average,
    ));
    layers.push(Layer::fc("FC1", 512, 1000));

    Network::new("ResNet-34", layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{network_totals, FcCountConvention};

    #[test]
    fn layer_census() {
        let net = resnet34();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, crate::layer::LayerKind::Conv { .. }))
            .count();
        // 33 topology convs + 3 projection shortcuts.
        assert_eq!(convs, 36);
        // Convs + 1 FC.
        assert_eq!(net.compute_layers().count(), 37);
    }

    #[test]
    fn stage_feature_sizes() {
        let net = resnet34();
        let size_of = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.name == name)
                .unwrap()
                .output_feature_size()
        };
        assert_eq!(size_of("Conv1"), 112);
        assert_eq!(size_of("Conv2_1_1"), 56);
        assert_eq!(size_of("Conv3_1_1"), 28);
        assert_eq!(size_of("Proj3"), 28);
        assert_eq!(size_of("Conv4_1_1"), 14);
        assert_eq!(size_of("Proj4"), 14);
        assert_eq!(size_of("Conv5_1_1"), 7);
        assert_eq!(size_of("Proj5"), 7);
    }

    #[test]
    fn total_mul_matches_table_ii_scale() {
        // Table II: ResNet-34 EE multiplies cost 3634 mJ at the implied
        // ~1 nJ/mul ⇒ ≈3.6 G multiplies.
        let totals = network_totals(&resnet34(), FcCountConvention::Paper);
        #[allow(clippy::cast_precision_loss)]
        let g = totals.mul as f64 / 1e9;
        assert!((3.3..3.95).contains(&g), "total mul = {g} G");
    }
}
