//! AlexNet (Krizhevsky et al., 2012), tabulated paper-style with padding
//! baked into the listed input shapes.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// AlexNet: five convolutions and three FC layers.
#[must_use]
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        vec![
            // 227×227×3, 96 kernels of 11×11 at stride 4 → 55.
            Layer::conv("Conv1", Shape::square(227, 3), 96, 11, 4),
            Layer::pool("Pool1", Shape::square(55, 96), 3, 2, PoolKind::Max),
            // 27×27 padded to 31 (pad 2), 256 kernels of 5×5 → 27.
            Layer::conv("Conv2", Shape::square(31, 96), 256, 5, 1),
            Layer::pool("Pool2", Shape::square(27, 256), 3, 2, PoolKind::Max),
            // 13×13 padded to 15, 3×3 kernels → 13.
            Layer::conv("Conv3", Shape::square(15, 256), 384, 3, 1),
            Layer::conv("Conv4", Shape::square(15, 384), 384, 3, 1),
            Layer::conv("Conv5", Shape::square(15, 384), 256, 3, 1),
            Layer::pool("Pool3", Shape::square(13, 256), 3, 2, PoolKind::Max),
            Layer::fc("FC1", 9216, 4096),
            Layer::fc("FC2", 4096, 4096),
            Layer::fc("FC3", 4096, 1000),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{network_totals, FcCountConvention};

    #[test]
    fn canonical_feature_sizes() {
        let net = alexnet();
        let sizes: Vec<_> = net
            .compute_layers()
            .map(|l| l.output_feature_size())
            .collect();
        assert_eq!(sizes, [55, 27, 13, 13, 13, 1, 1, 1]);
    }

    #[test]
    fn eight_compute_layers() {
        assert_eq!(alexnet().compute_layers().count(), 8);
    }

    #[test]
    fn total_multiplications_scale() {
        // ≈1.1–1.3 G multiplies under the paper convention.
        let totals = network_totals(&alexnet(), FcCountConvention::Paper);
        assert!(
            (1.0e9..1.4e9).contains(&(totals.mul as f64)),
            "total mul = {}",
            totals.mul
        );
    }

    #[test]
    fn sequential_shapes_are_consistent() {
        alexnet().validate_sequential().unwrap();
    }
}
