//! LeNet-5 (LeCun et al., 1998) — the smallest evaluated network, also
//! used by the integration tests for full bit-true inference.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// LeNet-5: three convolutions (C5 implemented as a conv, as in the
/// original) and two FC layers.
#[must_use]
pub fn lenet() -> Network {
    Network::new(
        "LeNet",
        vec![
            Layer::conv("Conv1", Shape::square(32, 1), 6, 5, 1),
            Layer::pool("Pool1", Shape::square(28, 6), 2, 2, PoolKind::Average),
            Layer::conv("Conv2", Shape::square(14, 6), 16, 5, 1),
            Layer::pool("Pool2", Shape::square(10, 16), 2, 2, PoolKind::Average),
            Layer::conv("Conv3", Shape::square(5, 16), 120, 5, 1),
            Layer::fc("FC1", 120, 84),
            Layer::fc("FC2", 84, 10),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{network_totals, FcCountConvention};

    #[test]
    fn canonical_feature_sizes() {
        let net = lenet();
        let sizes: Vec<_> = net
            .compute_layers()
            .map(|l| l.output_feature_size())
            .collect();
        assert_eq!(sizes, [28, 10, 1, 1, 1]);
    }

    #[test]
    fn is_tiny() {
        let totals = network_totals(&lenet(), FcCountConvention::Paper);
        assert!(totals.mul < 2_000_000, "total mul = {}", totals.mul);
        assert!(totals.mul > 100_000);
    }

    #[test]
    fn weight_budget() {
        // LeNet-5 stores ≈60 k weights (we count conv + fc weights only).
        let w = lenet().total_weights();
        assert!((50_000..80_000).contains(&w), "weights = {w}");
    }

    #[test]
    fn sequential_shapes_are_consistent() {
        lenet().validate_sequential().unwrap();
    }
}
