//! The six CNN architectures the paper evaluates (§IV-B).
//!
//! Layer tables follow the paper's conventions: input shapes are tabulated
//! with padding baked in where Table I does so (the `[226,226,64]` style),
//! fully-connected layers are described by their input width, and branching
//! topologies (ResNet-34 shortcuts, GoogLeNet inception modules) are stored
//! flattened — every branch conv appears as its own layer with its true
//! input shape, which is all the op-count analysis needs.

mod alexnet;
mod googlenet;
mod lenet;
mod resnet34;
mod vgg16;
mod zfnet;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use lenet::lenet;
pub use resnet34::resnet34;
pub use vgg16::vgg16;
pub use zfnet::zfnet;

use crate::analysis::{network_totals, FcCountConvention};
use crate::network::Network;

/// One row of the zoo summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Compute (conv + FC) layer count.
    pub compute_layers: usize,
    /// Stored weights.
    pub weights: usize,
    /// Total multiplies under the paper convention.
    pub total_mul: u64,
}

/// Summarizes every network in the zoo.
#[must_use]
pub fn summary() -> Vec<NetworkSummary> {
    all_networks()
        .into_iter()
        .map(|net| NetworkSummary {
            name: net.name().to_owned(),
            compute_layers: net.compute_layers().count(),
            weights: net.total_weights(),
            total_mul: network_totals(&net, FcCountConvention::Paper).mul,
        })
        .collect()
}

/// All six evaluated networks, in the order the paper's figures list them.
#[must_use]
pub fn all_networks() -> Vec<Network> {
    vec![
        vgg16(),
        alexnet(),
        zfnet(),
        resnet34(),
        lenet(),
        googlenet(),
    ]
}

/// Builds a zoo network by its canonical name (the `Network::name` the
/// constructors assign), or `None` for a name outside the zoo.
#[must_use]
pub fn by_name(name: &str) -> Option<Network> {
    match name {
        "VGG16" => Some(vgg16()),
        "AlexNet" => Some(alexnet()),
        "ZFNet" => Some(zfnet()),
        "ResNet-34" => Some(resnet34()),
        "LeNet" => Some(lenet()),
        "GoogLeNet" => Some(googlenet()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_networks_in_paper_order() {
        let nets = all_networks();
        let names: Vec<_> = nets.iter().map(|n| n.name().to_owned()).collect();
        assert_eq!(
            names,
            [
                "VGG16",
                "AlexNet",
                "ZFNet",
                "ResNet-34",
                "LeNet",
                "GoogLeNet"
            ]
        );
    }

    #[test]
    fn by_name_round_trips_the_zoo() {
        for net in all_networks() {
            let found = by_name(net.name()).unwrap();
            assert_eq!(found.name(), net.name());
            assert_eq!(found.len(), net.len());
        }
        assert!(by_name("MLP-Mixer").is_none());
    }

    #[test]
    fn summary_covers_all_networks() {
        let rows = summary();
        assert_eq!(rows.len(), 6);
        let vgg = rows.iter().find(|r| r.name == "VGG16").unwrap();
        assert_eq!(vgg.compute_layers, 13);
        // VGG16's FC1 dominates the weight count (25088×4096 ≈ 103 M).
        assert!(vgg.weights > 100_000_000, "weights {}", vgg.weights);
        let lenet = rows.iter().find(|r| r.name == "LeNet").unwrap();
        assert!(lenet.weights < 100_000);
        assert!(rows.iter().all(|r| r.total_mul > 0));
    }

    #[test]
    fn network_scale_ordering_matches_paper() {
        // Table II energy ordering implies total-mul ordering:
        // ResNet-34 > GoogLeNet > ZFNet; VGG16 is the largest of all;
        // LeNet is tiny.
        let mul_of = |net: &Network| network_totals(net, FcCountConvention::Paper).mul;
        let nets = all_networks();
        let vgg = mul_of(&nets[0]);
        let alex = mul_of(&nets[1]);
        let zf = mul_of(&nets[2]);
        let resnet = mul_of(&nets[3]);
        let lenet = mul_of(&nets[4]);
        let goog = mul_of(&nets[5]);

        assert!(vgg > resnet, "VGG16 {vgg} should exceed ResNet-34 {resnet}");
        assert!(resnet > goog, "ResNet-34 {resnet} > GoogLeNet {goog}");
        assert!(goog > zf, "GoogLeNet {goog} > ZFNet {zf}");
        assert!(zf > lenet, "ZFNet {zf} > LeNet {lenet}");
        assert!(alex > lenet);
    }
}
