//! GoogLeNet (Szegedy et al., 2015), stored flattened: every inception
//! branch convolution is its own layer with its true input shape.

use crate::layer::{Layer, PoolKind, Shape};
use crate::network::Network;

/// Filter counts of one inception module:
/// `(n1x1, n3x3_reduce, n3x3, n5x5_reduce, n5x5, pool_proj)`.
type InceptionSpec = (usize, usize, usize, usize, usize, usize);

/// Appends the six convolutions of an inception module operating at
/// spatial size `s` with `c` input channels.
fn push_inception(layers: &mut Vec<Layer>, name: &str, s: usize, c: usize, spec: InceptionSpec) {
    let (n1, n3r, n3, n5r, n5, pp) = spec;
    layers.push(Layer::conv(
        format!("{name}_1x1"),
        Shape::square(s, c),
        n1,
        1,
        1,
    ));
    layers.push(Layer::conv(
        format!("{name}_3x3r"),
        Shape::square(s, c),
        n3r,
        1,
        1,
    ));
    layers.push(Layer::conv(
        format!("{name}_3x3"),
        Shape::square(s + 2, n3r),
        n3,
        3,
        1,
    ));
    layers.push(Layer::conv(
        format!("{name}_5x5r"),
        Shape::square(s, c),
        n5r,
        1,
        1,
    ));
    layers.push(Layer::conv(
        format!("{name}_5x5"),
        Shape::square(s + 4, n5r),
        n5,
        5,
        1,
    ));
    layers.push(Layer::conv(
        format!("{name}_pool"),
        Shape::square(s, c),
        pp,
        1,
        1,
    ));
}

/// Output channel count of an inception module.
const fn inception_out(spec: InceptionSpec) -> usize {
    spec.0 + spec.2 + spec.4 + spec.5
}

/// GoogLeNet: stem + nine inception modules + FC (auxiliary classifiers
/// omitted, as they are inference-time disabled).
#[must_use]
pub fn googlenet() -> Network {
    const I3A: InceptionSpec = (64, 96, 128, 16, 32, 32);
    const I3B: InceptionSpec = (128, 128, 192, 32, 96, 64);
    const I4A: InceptionSpec = (192, 96, 208, 16, 48, 64);
    const I4B: InceptionSpec = (160, 112, 224, 24, 64, 64);
    const I4C: InceptionSpec = (128, 128, 256, 24, 64, 64);
    const I4D: InceptionSpec = (112, 144, 288, 32, 64, 64);
    const I4E: InceptionSpec = (256, 160, 320, 32, 128, 128);
    const I5A: InceptionSpec = (256, 160, 320, 32, 128, 128);
    const I5B: InceptionSpec = (384, 192, 384, 48, 128, 128);

    let mut layers = vec![
        Layer::conv_padded("Conv1", Shape::square(224, 3), 64, 7, 2, 3),
        Layer::pool("Pool1", Shape::square(112, 64), 2, 2, PoolKind::Max),
        Layer::conv("Conv2r", Shape::square(56, 64), 64, 1, 1),
        Layer::conv("Conv2", Shape::square(58, 64), 192, 3, 1),
        Layer::pool("Pool2", Shape::square(56, 192), 2, 2, PoolKind::Max),
    ];

    push_inception(&mut layers, "Inc3a", 28, 192, I3A);
    push_inception(&mut layers, "Inc3b", 28, inception_out(I3A), I3B);
    layers.push(Layer::pool(
        "Pool3",
        Shape::square(28, inception_out(I3B)),
        2,
        2,
        PoolKind::Max,
    ));
    push_inception(&mut layers, "Inc4a", 14, inception_out(I3B), I4A);
    push_inception(&mut layers, "Inc4b", 14, inception_out(I4A), I4B);
    push_inception(&mut layers, "Inc4c", 14, inception_out(I4B), I4C);
    push_inception(&mut layers, "Inc4d", 14, inception_out(I4C), I4D);
    push_inception(&mut layers, "Inc4e", 14, inception_out(I4D), I4E);
    layers.push(Layer::pool(
        "Pool4",
        Shape::square(14, inception_out(I4E)),
        2,
        2,
        PoolKind::Max,
    ));
    push_inception(&mut layers, "Inc5a", 7, inception_out(I4E), I5A);
    push_inception(&mut layers, "Inc5b", 7, inception_out(I5A), I5B);
    layers.push(Layer::pool(
        "AvgPool",
        Shape::square(7, inception_out(I5B)),
        7,
        7,
        PoolKind::Average,
    ));
    layers.push(Layer::fc("FC1", inception_out(I5B), 1000));

    Network::new("GoogLeNet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{network_totals, FcCountConvention};

    #[test]
    fn layer_census() {
        let net = googlenet();
        // Stem 3 convs + 9 modules × 6 convs + 1 FC = 58 compute layers.
        assert_eq!(net.compute_layers().count(), 58);
    }

    #[test]
    fn inception_channel_arithmetic() {
        // 3a: 64+128+32+32 = 256; 5b: 384+384+128+128 = 1024.
        assert_eq!(inception_out((64, 96, 128, 16, 32, 32)), 256);
        assert_eq!(inception_out((384, 192, 384, 48, 128, 128)), 1024);
    }

    #[test]
    fn total_mul_matches_table_ii_scale() {
        // Table II: GoogLeNet EE multiplies cost 1578 mJ at ~1 nJ/mul
        // ⇒ ≈1.58 G multiplies.
        let totals = network_totals(&googlenet(), FcCountConvention::Paper);
        #[allow(clippy::cast_precision_loss)]
        let g = totals.mul as f64 / 1e9;
        assert!((1.4..1.75).contains(&g), "total mul = {g} G");
    }

    #[test]
    fn fc_sits_on_1024_features() {
        let net = googlenet();
        let fc = net.layers().iter().find(|l| l.name == "FC1").unwrap();
        assert_eq!(fc.input.elements(), 1024);
    }
}
