//! A minimal integer feature-map tensor in HWC layout.
//!
//! The functional inference path runs on unsigned integers because the
//! optical MAC units operate on unsigned pulse counts; quantization to a
//! given precision is handled by [`crate::quant`].

use crate::layer::Shape;

/// An `H × W × C` tensor of unsigned integer activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<u64>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Self {
            shape,
            data: vec![0; shape.elements()],
        }
    }

    /// Creates a tensor by evaluating `f(h, w, c)` at every element.
    #[must_use]
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> u64) -> Self {
        let mut t = Self::zeros(shape);
        for h in 0..shape.h {
            for w in 0..shape.w {
                for c in 0..shape.c {
                    let v = f(h, w, c);
                    t.set(h, w, c, v);
                }
            }
        }
        t
    }

    /// Creates a flat tensor `[1, 1, n]` from a slice.
    #[must_use]
    pub fn from_flat(values: &[u64]) -> Self {
        Self::from_flat_vec(values.to_vec())
    }

    /// Creates a flat tensor `[1, 1, n]` taking ownership of the values
    /// (no copy).
    #[must_use]
    pub fn from_flat_vec(values: Vec<u64>) -> Self {
        Self {
            shape: Shape::flat(values.len()),
            data: values,
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Raw data in HWC order.
    #[must_use]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Mutable raw data in HWC order. Rows are contiguous (`w·c` elements
    /// per row), so row-parallel writers can split this with
    /// `chunks_mut` without overlapping.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    fn index(&self, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(h < self.shape.h && w < self.shape.w && c < self.shape.c);
        (h * self.shape.w + w) * self.shape.c + c
    }

    /// Element at `(h, w, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, h: usize, w: usize, c: usize) -> u64 {
        self.data[self.index(h, w, c)]
    }

    /// Element at `(h, w, c)` treating out-of-bounds reads as zero padding.
    #[must_use]
    pub fn get_padded(&self, h: isize, w: isize, c: usize) -> u64 {
        if h < 0 || w < 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss)]
        let (h, w) = (h as usize, w as usize);
        if h >= self.shape.h || w >= self.shape.w || c >= self.shape.c {
            0
        } else {
            self.data[self.index(h, w, c)]
        }
    }

    /// Sets the element at `(h, w, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, h: usize, w: usize, c: usize, value: u64) {
        let i = self.index(h, w, c);
        self.data[i] = value;
    }

    /// Largest element (0 for an empty tensor).
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(u64) -> u64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Flattens to a vector in HWC order.
    #[must_use]
    pub fn to_flat(&self) -> Vec<u64> {
        self.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::zeros(Shape::new(2, 3, 4));
        assert_eq!(t.data().len(), 24);
        t.set(1, 2, 3, 42);
        assert_eq!(t.get(1, 2, 3), 42);
        assert_eq!(t.get(0, 0, 0), 0);
        assert_eq!(t.max_value(), 42);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::from_fn(Shape::new(2, 2, 2), |h, w, c| (h * 100 + w * 10 + c) as u64);
        assert_eq!(t.get(1, 0, 1), 101);
        assert_eq!(t.get(0, 1, 0), 10);
    }

    #[test]
    fn padded_reads() {
        let t = Tensor::from_fn(Shape::new(2, 2, 1), |h, w, _| (h * 2 + w + 1) as u64);
        assert_eq!(t.get_padded(-1, 0, 0), 0);
        assert_eq!(t.get_padded(0, 5, 0), 0);
        assert_eq!(t.get_padded(1, 1, 0), 4);
        assert_eq!(t.get_padded(0, 0, 9), 0);
    }

    #[test]
    fn flat_round_trip() {
        let t = Tensor::from_flat(&[1, 2, 3]);
        assert_eq!(t.shape(), Shape::flat(3));
        assert_eq!(t.to_flat(), vec![1, 2, 3]);
    }

    #[test]
    fn map_in_place() {
        let mut t = Tensor::from_flat(&[1, 2, 3]);
        t.map_in_place(|v| v * 2);
        assert_eq!(t.to_flat(), vec![2, 4, 6]);
    }
}
