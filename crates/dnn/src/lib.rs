//! CNN substrate for the PIXEL accelerator reproduction.
//!
//! The paper drives its accelerator models with a per-layer analysis of
//! six CNNs (VGG16, AlexNet, ZFNet, ResNet-34, LeNet, GoogLeNet),
//! performed in MATLAB. This crate rebuilds that substrate:
//!
//! * [`layer`] / [`network`] — layer specifications (conv, fully-connected,
//!   pool) with explicit input shapes, exactly as the paper tabulates them
//!   (Table I bakes padding into the input shape, e.g. Conv2's
//!   `[226,226,64]`).
//! * [`zoo`] — the six evaluated CNN architectures.
//! * [`analysis`] — the op-count formulas of §IV-B: output feature size
//!   `E = (H − R + U)/U` (Eq. 11), `N_MVM = E²MC`, `N_mul = R²·N_MVM`,
//!   `N_add = N_mul + E²M`, `N_act = E²M`, including the paper's
//!   idiosyncratic fully-connected convention (`N_mul = N_in²`; see
//!   DESIGN.md §3).
//! * [`tensor`], [`quant`], [`inference`] — an integer tensor type and a
//!   quantized forward-pass engine with a pluggable MAC, so inference can
//!   be executed bit-true through the EE/OE/OO functional MAC units.
//!
//! # Example
//!
//! Reproducing the first row of Table I:
//!
//! ```
//! use pixel_dnn::{zoo, analysis};
//!
//! let vgg = zoo::vgg16();
//! let counts = analysis::analyze_network(&vgg, analysis::FcCountConvention::Paper);
//! let conv1 = counts.iter().find(|c| c.name == "Conv1").unwrap();
//! assert_eq!(conv1.mvm, 9_633_792);          // 9.63 M
//! assert_eq!(conv1.mul, 86_704_128);         // 86.7 M
//! ```

pub mod analysis;
pub mod dataset;
pub mod im2col;
pub mod inference;
pub mod layer;
pub mod metrics;
pub mod mix;
pub mod network;
pub mod quant;
pub mod signed;
pub mod tensor;
pub mod zoo;

pub use analysis::{ComputeCounts, FcCountConvention};
pub use layer::{Layer, LayerKind, Shape};
pub use mix::NetworkMix;
pub use network::Network;
pub use tensor::Tensor;
