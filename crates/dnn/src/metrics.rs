//! Classification metrics: argmax, top-k, accuracy.

/// Index of the maximum score (first on ties).
///
/// # Panics
///
/// Panics if `scores` is empty.
#[must_use]
pub fn argmax(scores: &[u64]) -> usize {
    assert!(!scores.is_empty(), "argmax of empty scores");
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Indices of the `k` largest scores, descending (stable on ties).
#[must_use]
pub fn top_k(scores: &[u64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Fraction of `(predicted, actual)` pairs that agree.
#[must_use]
pub fn accuracy(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let correct = pairs.iter().filter(|(p, a)| p == a).count() as f64;
    #[allow(clippy::cast_precision_loss)]
    {
        correct / pairs.len() as f64
    }
}

/// Top-k accuracy: fraction of examples whose label appears in the top-k
/// predictions.
#[must_use]
pub fn top_k_accuracy(examples: &[(Vec<u64>, usize)], k: usize) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let hits = examples
        .iter()
        .filter(|(scores, label)| top_k(scores, k).contains(label))
        .count() as f64;
    #[allow(clippy::cast_precision_loss)]
    {
        hits / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1, 9, 3]), 1);
        assert_eq!(argmax(&[7]), 0);
        // First index wins ties.
        assert_eq!(argmax(&[5, 5, 2]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        let _ = argmax(&[]);
    }

    #[test]
    fn top_k_ordering() {
        assert_eq!(top_k(&[10, 40, 20, 30], 2), vec![1, 3]);
        assert_eq!(top_k(&[10, 40], 5), vec![1, 0]);
        assert_eq!(top_k(&[5, 5, 5], 2), vec![0, 1]);
    }

    #[test]
    fn accuracy_fraction() {
        assert!((accuracy(&[(0, 0), (1, 2), (3, 3), (4, 4)]) - 0.75).abs() < 1e-12);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn top_k_accuracy_widens_with_k() {
        let examples = vec![
            (vec![9u64, 5, 1], 0usize), // top-1 hit
            (vec![5, 9, 1], 0),         // top-2 hit
            (vec![1, 5, 9], 0),         // top-3 hit
        ];
        assert!((top_k_accuracy(&examples, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((top_k_accuracy(&examples, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top_k_accuracy(&examples, 3) - 1.0).abs() < 1e-12);
    }
}
