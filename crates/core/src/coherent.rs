//! A coherent nanophotonic matrix engine — the related-work comparator.
//!
//! The paper's §VI-B contrasts PIXEL with programmable-photonics designs
//! built from MZI meshes (Shen et al.'s coherent circuits, Miller's
//! couplers). This module implements that alternative so the comparison
//! is concrete: an arbitrary real weight matrix `W` is factored as
//! `W = U·Σ·Vᵀ` (one-sided Jacobi SVD), `U` and `Vᵀ` are synthesized as
//! Reck meshes, and `Σ` becomes a row of attenuators normalized to the
//! largest singular value (a passive mesh can only attenuate). The engine
//! then applies `W` to analog-encoded vectors at the speed of light —
//! trading PIXEL's bit-exact integer arithmetic for analog precision.

use pixel_photonics::complex::Complex;
use pixel_photonics::mesh::{MziMesh, Unitary};

/// Convergence threshold of the Jacobi sweeps.
const JACOBI_TOL: f64 = 1e-12;

/// Maximum Jacobi sweeps before giving up (well-conditioned matrices
/// converge in a handful).
const MAX_SWEEPS: usize = 64;

/// Result of a real SVD `W = U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors (orthogonal, column-major as row-major
    /// `Unitary`).
    pub u: Unitary,
    /// Singular values, descending order not guaranteed.
    pub sigma: Vec<f64>,
    /// Right singular vectors `V` (the engine applies `Vᵀ`).
    pub v: Unitary,
}

/// One-sided Jacobi SVD of a square real matrix (rows of `w`).
///
/// # Panics
///
/// Panics if `w` is empty or not square.
#[must_use]
pub fn jacobi_svd(w: &[Vec<f64>]) -> Svd {
    let n = w.len();
    assert!(n > 0, "matrix must be non-empty");
    assert!(w.iter().all(|r| r.len() == n), "matrix must be square");

    // Work on columns: a[j][i] = w[i][j].
    let mut a: Vec<Vec<f64>> = (0..n).map(|j| (0..n).map(|i| w[i][j]).collect()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| (0..n).map(|i| f64::from(u8::from(i == j))).collect())
        .collect();

    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha: f64 = a[p].iter().map(|x| x * x).sum();
                let beta: f64 = a[q].iter().map(|x| x * x).sum();
                let gamma: f64 = a[p].iter().zip(&a[q]).map(|(x, y)| x * y).sum();
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt().max(JACOBI_TOL) {
                    continue;
                }
                off = off.max(gamma.abs());
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..n {
                    let (ap, aq) = (a[p][i], a[q][i]);
                    a[p][i] = c * ap - s * aq;
                    a[q][i] = s * ap + c * aq;
                    let (vp, vq) = (v[p][i], v[q][i]);
                    v[p][i] = c * vp - s * vq;
                    v[q][i] = s * vp + c * vq;
                }
            }
        }
        if off < JACOBI_TOL {
            break;
        }
    }

    // Column norms are the singular values; normalized columns form U.
    let sigma: Vec<f64> = a
        .iter()
        .map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    // Normalize the full-rank columns first; null-σ columns are then
    // completed to an orthonormal basis against *all* kept columns.
    let rank_tol = 1e-10 * sigma.iter().copied().fold(1.0f64, f64::max);
    let mut u_cols: Vec<Option<Vec<f64>>> = a
        .iter()
        .enumerate()
        .map(|(j, col)| (sigma[j] > rank_tol).then(|| col.iter().map(|x| x / sigma[j]).collect()))
        .collect();
    for j in 0..n {
        if u_cols[j].is_some() {
            continue;
        }
        // Gram-Schmidt over the standard basis, picking the
        // best-conditioned candidate orthogonal to every kept column.
        let mut best: Option<Vec<f64>> = None;
        let mut best_norm = 0.0f64;
        for k in 0..n {
            let mut e = vec![0.0; n];
            e[k] = 1.0;
            for existing in u_cols.iter().flatten() {
                let proj: f64 = existing.iter().zip(&e).map(|(a, b)| a * b).sum();
                for (ev, &xv) in e.iter_mut().zip(existing) {
                    *ev -= proj * xv;
                }
            }
            let norm = e.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > best_norm {
                best_norm = norm;
                best = Some(e.iter().map(|x| x / norm).collect());
            }
        }
        // lint:allow(P002) Gram-Schmidt over the standard basis always yields a completion
        u_cols[j] = Some(best.expect("an orthogonal completion always exists"));
    }
    // lint:allow(P002) every column was filled by the completion loop above
    let u_cols: Vec<Vec<f64>> = u_cols.into_iter().map(|c| c.expect("filled")).collect();

    let to_unitary = |cols: &Vec<Vec<f64>>| {
        let mut m = Unitary::identity(n);
        for (j, col) in cols.iter().enumerate() {
            for (i, &x) in col.iter().enumerate() {
                m.set(i, j, Complex::new(x, 0.0));
            }
        }
        m
    };
    Svd {
        u: to_unitary(&u_cols),
        sigma,
        v: to_unitary(&v),
    }
}

/// A coherent matrix-vector engine: mesh(`Vᵀ`) → attenuators → mesh(`U`).
#[derive(Debug, Clone, PartialEq)]
pub struct CoherentEngine {
    v_t_mesh: MziMesh,
    u_mesh: MziMesh,
    attenuations: Vec<f64>,
    scale: f64,
    dim: usize,
}

impl CoherentEngine {
    /// Synthesizes an engine implementing the real matrix `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is empty or not square.
    #[must_use]
    pub fn synthesize(w: &[Vec<f64>]) -> Self {
        let n = w.len();
        let svd = jacobi_svd(w);
        let sigma_max = svd.sigma.iter().copied().fold(0.0f64, f64::max).max(1e-30);
        let attenuations: Vec<f64> = svd.sigma.iter().map(|s| s / sigma_max).collect();
        Self {
            v_t_mesh: MziMesh::synthesize(&svd.v.adjoint()),
            u_mesh: MziMesh::synthesize(&svd.u),
            attenuations,
            scale: sigma_max,
            dim: n,
        }
    }

    /// Mode count.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical MZI count: both meshes (the attenuator row reuses one MZI
    /// port each, counted with the `U` mesh in hardware).
    #[must_use]
    pub fn mzi_count(&self) -> usize {
        self.v_t_mesh.mzi_count() + self.u_mesh.mzi_count()
    }

    /// Per-mode attenuator settings (all in `[0, 1]`: passive optics).
    #[must_use]
    pub fn attenuations(&self) -> &[f64] {
        &self.attenuations
    }

    /// The electronic post-scale recovering absolute magnitudes
    /// (`σ_max`, applied at the receiver).
    #[must_use]
    pub fn post_scale(&self) -> f64 {
        self.scale
    }

    /// Applies the matrix to a real vector through the optical path.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let modes: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let after_vt = self.v_t_mesh.propagate(&modes);
        let attenuated: Vec<Complex> = after_vt
            .iter()
            .zip(&self.attenuations)
            .map(|(m, &a)| m.scale(a))
            .collect();
        let out = self.u_mesh.propagate(&attenuated);
        out.iter().map(|c| c.re * self.scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    fn random_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect())
            .collect()
    }

    fn matvec(w: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        w.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn svd_reconstructs_the_matrix() {
        for seed in 0..4 {
            let w = random_matrix(5, seed);
            let svd = jacobi_svd(&w);
            assert!(svd.u.is_unitary(1e-8), "U orthogonal");
            assert!(svd.v.is_unitary(1e-8), "V orthogonal");
            // Reconstruct: W = U·Σ·Vᵀ, checked entrywise.
            let n = w.len();
            for (i, row) in w.iter().enumerate() {
                for (j, &expected) in row.iter().enumerate() {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += svd.u.get(i, k).re * svd.sigma[k] * svd.v.get(j, k).re;
                    }
                    assert!((acc - expected).abs() < 1e-8, "seed {seed} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn singular_values_are_nonnegative() {
        let svd = jacobi_svd(&random_matrix(6, 9));
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn engine_applies_the_matrix() {
        for seed in 0..4 {
            let w = random_matrix(4, seed);
            let engine = CoherentEngine::synthesize(&w);
            let mut rng = SplitMix64::seed_from_u64(seed + 100);
            let x: Vec<f64> = (0..4).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let optical = engine.apply(&x);
            let reference = matvec(&w, &x);
            for (a, b) in optical.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-7, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn attenuators_are_passive() {
        let engine = CoherentEngine::synthesize(&random_matrix(5, 3));
        assert!(engine
            .attenuations()
            .iter()
            .all(|&a| (0.0..=1.0 + 1e-12).contains(&a)));
        assert!(engine.post_scale() > 0.0);
    }

    #[test]
    fn identity_matrix_needs_no_attenuation() {
        let n = 4;
        let eye: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| f64::from(u8::from(i == j))).collect())
            .collect();
        let engine = CoherentEngine::synthesize(&eye);
        assert!(engine
            .attenuations()
            .iter()
            .all(|&a| (a - 1.0).abs() < 1e-9));
        let x = vec![0.3, -0.7, 0.1, 0.9];
        let y = engine.apply(&x);
        for (a, b) in y.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn mesh_budget_is_two_reck_triangles() {
        let engine = CoherentEngine::synthesize(&random_matrix(6, 1));
        assert_eq!(engine.mzi_count(), 2 * (6 * 5 / 2));
    }

    #[test]
    fn rank_deficient_matrix_is_handled() {
        // Rank-1 outer product.
        let u = [1.0, 2.0, -1.0];
        let v = [0.5, -1.0, 2.0];
        let w: Vec<Vec<f64>> = u
            .iter()
            .map(|&a| v.iter().map(|&b| a * b).collect())
            .collect();
        let engine = CoherentEngine::synthesize(&w);
        let x = vec![1.0, 1.0, 1.0];
        let optical = engine.apply(&x);
        let reference = matvec(&w, &x);
        for (a, b) in optical.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }
}
