//! SWMR vs MWSR: the photonic-NoC paradigm trade-off (§VI-A).
//!
//! The paper notes photonic NoCs choose between multiple-write-single-read
//! (what PIXEL's home channels use) and single-write-multiple-read
//! paradigms, "trading off between energy consumption and performance".
//! This module makes the trade concrete for the OMAC fabric:
//!
//! * **MWSR** — every tile modulates its own wavelength block; one reader
//!   drops the whole multiplexed signal. `N` modulators, one detector per
//!   wavelength, no splitting loss.
//! * **SWMR** — one writer broadcasts; every tile taps the line through a
//!   splitter. One modulator, `N` detector sets, and a `1/N` splitting
//!   loss the laser must overcome (`10·log₁₀ N` dB extra budget).

use pixel_photonics::link::PhotonicLink;
use pixel_photonics::signal::PulseTrain;
use pixel_photonics::waveguide::Waveguide;
use pixel_units::{Energy, Length, Power};

/// The two broadcast paradigms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Multiple writers, single reader (PIXEL's home channels).
    Mwsr,
    /// Single writer, multiple readers (broadcast with splitters).
    Swmr,
}

/// Device census and optical budget of one line under a paradigm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineBudget {
    /// Paradigm.
    pub paradigm: Paradigm,
    /// Tiles on the line.
    pub tiles: usize,
    /// Modulator (ring) drive sites.
    pub modulators: usize,
    /// Receiver sites.
    pub receivers: usize,
    /// Splitting loss in dB (zero for MWSR).
    pub splitting_loss_db: f64,
    /// Required laser power per wavelength.
    pub required_power: Power,
}

/// Computes a line's budget for `tiles` tiles at `pitch` spacing.
///
/// # Panics
///
/// Panics if `tiles` is zero.
#[must_use]
pub fn line_budget(paradigm: Paradigm, tiles: usize, pitch: Length) -> LineBudget {
    assert!(tiles > 0, "at least one tile");
    #[allow(clippy::cast_precision_loss)]
    let span = Length::new(pitch.value() * tiles as f64);
    let link = PhotonicLink::paper_default(span);
    let base_required = link.required_laser_power().value();
    let (modulators, receivers, splitting_loss_db) = match paradigm {
        Paradigm::Mwsr => (tiles, 1, 0.0),
        Paradigm::Swmr => {
            #[allow(clippy::cast_precision_loss)]
            let loss = 10.0 * (tiles as f64).log10();
            (1, tiles, loss)
        }
    };
    let required_power = Power::new(base_required * 10f64.powf(splitting_loss_db / 10.0));
    LineBudget {
        paradigm,
        tiles,
        modulators,
        receivers,
        splitting_loss_db,
        required_power,
    }
}

/// Energy to move one `bits`-bit word to every tile on the line.
///
/// MWSR needs one transmission per destination (each reader has its own
/// line in a full crossbar; on one line the word reaches the single
/// reader); SWMR reaches all readers in one shot but every receiver burns
/// detection energy.
#[must_use]
pub fn broadcast_energy(paradigm: Paradigm, tiles: usize, bits: usize) -> Energy {
    let detector = pixel_photonics::photodetector::Photodetector::default();
    let modulation = pixel_photonics::constants::mrr_energy_per_bit() * (2.0 * bits as f64);
    match paradigm {
        Paradigm::Mwsr => {
            // One transmission per destination tile.
            #[allow(clippy::cast_precision_loss)]
            let n = tiles as f64;
            (modulation + detector.detection_energy(bits)) * n
        }
        Paradigm::Swmr => {
            #[allow(clippy::cast_precision_loss)]
            let n = tiles as f64;
            modulation + detector.detection_energy(bits) * n
        }
    }
}

/// Functional SWMR broadcast: one writer's train reaches every tap with
/// cumulative splitter + waveguide loss applied per hop.
#[must_use]
pub fn swmr_broadcast(train: &PulseTrain, tiles: usize, pitch: Length) -> Vec<PulseTrain> {
    #[allow(clippy::cast_precision_loss)]
    let per_tap = 1.0 / tiles as f64;
    (0..tiles)
        .map(|t| {
            #[allow(clippy::cast_precision_loss)]
            let guide = Waveguide::new(Length::new(pitch.value() * (t + 1) as f64));
            train.attenuated(per_tap * guide.transmission())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pitch() -> Length {
        Length::from_millimetres(1.0)
    }

    #[test]
    fn device_census() {
        let mwsr = line_budget(Paradigm::Mwsr, 8, pitch());
        assert_eq!((mwsr.modulators, mwsr.receivers), (8, 1));
        assert!(mwsr.splitting_loss_db.abs() < 1e-12);

        let swmr = line_budget(Paradigm::Swmr, 8, pitch());
        assert_eq!((swmr.modulators, swmr.receivers), (1, 8));
        assert!((swmr.splitting_loss_db - 9.03).abs() < 0.01);
    }

    #[test]
    fn swmr_needs_more_laser_power() {
        for tiles in [2usize, 4, 16] {
            let mwsr = line_budget(Paradigm::Mwsr, tiles, pitch());
            let swmr = line_budget(Paradigm::Swmr, tiles, pitch());
            #[allow(clippy::cast_precision_loss)]
            let expect = tiles as f64;
            let ratio = swmr.required_power / mwsr.required_power;
            assert!((ratio - expect).abs() < 1e-9, "tiles={tiles}: {ratio}");
        }
    }

    #[test]
    fn swmr_wins_broadcast_energy_mwsr_wins_unicast() {
        // Broadcasting one word to 16 tiles: SWMR modulates once.
        let mwsr = broadcast_energy(Paradigm::Mwsr, 16, 8);
        let swmr = broadcast_energy(Paradigm::Swmr, 16, 8);
        assert!(swmr < mwsr, "SWMR broadcast cheaper: {swmr} vs {mwsr}");
        // Unicast (1 destination): identical device activity.
        let m1 = broadcast_energy(Paradigm::Mwsr, 1, 8);
        let s1 = broadcast_energy(Paradigm::Swmr, 1, 8);
        assert!((m1.value() - s1.value()).abs() < 1e-24);
    }

    #[test]
    fn functional_swmr_taps_decode_with_headroom() {
        let train = PulseTrain::from_bits(0b1011, 4);
        let taps = swmr_broadcast(&train, 4, pitch());
        assert_eq!(taps.len(), 4);
        // Each tap sees 1/4 power minus waveguide loss, same bit pattern.
        for tap in &taps {
            let scaled: Vec<u32> = tap
                .iter()
                .map(|a| u32::from(a > 0.1)) // receiver threshold at 0.1 of a pulse
                .collect();
            assert_eq!(scaled, vec![1, 1, 0, 1]);
        }
        assert!(taps[3].total_amplitude() < taps[0].total_amplitude());
    }

    #[test]
    fn paradigm_crossover_matches_paper_tradeoff() {
        // §VI-A: the paradigms trade energy against performance. For the
        // OMAC broadcast pattern (every neuron reaches all tiles), SWMR's
        // modulator savings beat MWSR as soon as there is more than one
        // destination.
        let cross = (2..32)
            .find(|&t| {
                broadcast_energy(Paradigm::Swmr, t, 8) < broadcast_energy(Paradigm::Mwsr, t, 8)
            })
            .unwrap();
        assert_eq!(cross, 2);
    }
}
