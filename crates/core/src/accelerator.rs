//! End-to-end accelerator evaluation: map a CNN onto a configuration and
//! report per-layer and total energy, latency and EDP.

use crate::config::AcceleratorConfig;
use crate::edp::Edp;
use crate::energy::{layer_energy, EnergyBreakdown};
use crate::latency::layer_latency;
use crate::model::EvalContext;
use pixel_dnn::analysis::{analyze_network, ComputeCounts, FcCountConvention};
use pixel_dnn::network::Network;
use pixel_units::{Energy, Time};

/// Evaluation result for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Op counts driving the models.
    pub counts: ComputeCounts,
    /// Energy split by component.
    pub energy: EnergyBreakdown,
    /// Layer latency.
    pub latency: Time,
}

/// Evaluation result for a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// The configuration evaluated.
    pub config: AcceleratorConfig,
    /// Per-layer results, compute layers only, in network order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total energy across layers.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.layers.iter().map(|l| l.energy.total()).sum()
    }

    /// Component-wise energy totals.
    #[must_use]
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.layers.iter().map(|l| l.energy).sum()
    }

    /// Total inference latency (layers execute sequentially).
    #[must_use]
    pub fn total_latency(&self) -> Time {
        self.layers.iter().map(|l| l.latency).sum()
    }

    /// Energy-delay product of the inference.
    #[must_use]
    pub fn edp(&self) -> Edp {
        Edp::new(self.total_energy(), self.total_latency())
    }
}

/// An accelerator instance: a configuration plus evaluation entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Evaluates a network with the paper's FC op-count convention.
    #[must_use]
    pub fn evaluate(&self, network: &Network) -> NetworkReport {
        self.evaluate_with(network, FcCountConvention::Paper)
    }

    /// Evaluates a network through a shared memoizing [`EvalContext`]
    /// (bitwise-identical to [`Self::evaluate`], but repeated
    /// evaluations of the same configuration or network reuse the
    /// context's caches).
    #[must_use]
    pub fn evaluate_in(&self, ctx: &EvalContext, network: &Network) -> NetworkReport {
        ctx.evaluate(&self.config, network)
    }

    /// Evaluates a network with an explicit FC op-count convention.
    #[must_use]
    pub fn evaluate_with(&self, network: &Network, convention: FcCountConvention) -> NetworkReport {
        pixel_obs::add("dse.model_evals", 1);
        let layers = analyze_network(network, convention)
            .into_iter()
            .map(|counts| LayerReport {
                name: counts.name.clone(),
                energy: layer_energy(&self.config, &counts),
                latency: layer_latency(&self.config, &counts),
                counts,
            })
            .collect();
        NetworkReport {
            network: network.name().to_owned(),
            config: self.config,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn report(design: Design, lanes: usize, bits: u32) -> NetworkReport {
        Accelerator::new(AcceleratorConfig::new(design, lanes, bits)).evaluate(&zoo::zfnet())
    }

    #[test]
    fn per_layer_reports_cover_compute_layers() {
        let r = report(Design::Oe, 4, 16);
        assert_eq!(r.layers.len(), 8); // ZFNet: 5 conv + 3 FC
        assert_eq!(r.layers[0].name, "Conv1");
        assert!(r.layers.iter().all(|l| l.latency.value() > 0.0));
    }

    #[test]
    fn totals_are_sums() {
        let r = report(Design::Oo, 4, 16);
        let sum: f64 = r.layers.iter().map(|l| l.energy.total().value()).sum();
        assert!((r.total_energy().value() - sum).abs() < 1e-12 * sum.abs().max(1.0));
        let lat_sum: f64 = r.layers.iter().map(|l| l.latency.value()).sum();
        assert!((r.total_latency().value() - lat_sum).abs() < 1e-12);
    }

    #[test]
    fn headline_energy_ordering_at_16_bits() {
        let ee = report(Design::Ee, 4, 16).total_energy();
        let oe = report(Design::Oe, 4, 16).total_energy();
        let oo = report(Design::Oo, 4, 16).total_energy();
        assert!(oo < oe && oe < ee);
    }

    #[test]
    fn edp_headline_at_4_lanes_16_bits() {
        let ee = report(Design::Ee, 4, 16).edp();
        let oe = report(Design::Oe, 4, 16).edp();
        let oo = report(Design::Oo, 4, 16).edp();
        let oe_imp = oe.improvement_over(ee);
        let oo_imp = oo.improvement_over(ee);
        // Paper: OE −48.4%, OO −73.9% (geomean over six networks; single-
        // network values land nearby).
        assert!((0.30..0.70).contains(&oe_imp), "OE improvement {oe_imp}");
        assert!((0.55..0.90).contains(&oo_imp), "OO improvement {oo_imp}");
        assert!(oo_imp > oe_imp);
    }

    #[test]
    fn table_ii_zfnet_row_reproduced() {
        // Paper Table II, ZFNet (4 lanes, 16 bits/lane), in mJ.
        let tol = 0.15;
        let check = |actual: Energy, paper_mj: f64, label: &str| {
            let a = actual.as_millijoules();
            assert!(
                (a - paper_mj).abs() / paper_mj < tol,
                "{label}: {a:.1} vs paper {paper_mj}"
            );
        };
        let ee = report(Design::Ee, 4, 16).energy_breakdown();
        check(ee.mul, 1225.0, "EE mul");
        check(ee.add, 313.0, "EE add");
        check(ee.act, 34.2, "EE act");
        check(ee.comm, 46.9, "EE comm");

        let oe = report(Design::Oe, 4, 16).energy_breakdown();
        check(oe.mul, 62.9, "OE mul");
        check(oe.add, 336.0, "OE add");
        check(oe.oe, 76.6, "OE o/e");
        check(oe.comm, 39.9, "OE comm");
        check(oe.laser, 20.1, "OE laser");

        let oo = report(Design::Oo, 4, 16).energy_breakdown();
        check(oo.mul, 62.9, "OO mul");
        check(oo.add, 155.0, "OO add");
        check(oo.laser, 30.4, "OO laser");
    }
}
