//! Plain-text table formatting for the reproduction artifacts.
//!
//! Used by the `reproduce` binary and EXPERIMENTS.md generation; kept in
//! the library so benches and tests can snapshot the same output.

use crate::audit::ActivityAuditRow;
use crate::dse::{
    AreaPoint, ComponentEnergyBar, EnergyPerBitPoint, LatencyPoint, LayerLatencyPoint,
    NormalizedPoint, TableIiRow,
};
use crate::energy::EnergyBreakdown;
use std::fmt::Write as _;

/// Renders the activity audit: counted vs analytic lit/toggle rates.
#[must_use]
pub fn format_audit(rows: &[ActivityAuditRow]) -> String {
    let mut s = String::from(
        "des  |    slots |  lit counted  analytic  rel-err | tog counted  analytic  rel-err\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<4} | {:>8} | {:>12.4} {:>9.2} {:>7.2}% | {:>11.4} {:>9.2} {:>7.2}%",
            r.design.label(),
            r.slots,
            r.counted_lit_rate,
            r.analytic_lit_rate,
            r.lit_rel_error() * 100.0,
            r.counted_toggle_rate,
            r.analytic_toggle_rate,
            r.toggle_rel_error() * 100.0,
        );
    }
    s
}

/// Renders a Fig. 4-style table: rows = (lanes, bits), columns = designs.
#[must_use]
pub fn format_energy_per_bit(points: &[EnergyPerBitPoint]) -> String {
    let mut s = String::from("lanes bits |    EE [pJ/b]    OE [pJ/b]    OO [pJ/b]\n");
    let mut keys: Vec<(usize, u32)> = points.iter().map(|p| (p.lanes, p.bits)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (lanes, bits) in keys {
        let value = |d| {
            points
                .iter()
                .find(|p| p.design == d && p.lanes == lanes && p.bits == bits)
                .map_or(f64::NAN, |p| p.energy_per_bit * 1e12)
        };
        let _ = writeln!(
            s,
            "{lanes:>5} {bits:>4} | {:>12.3} {:>12.3} {:>12.3}",
            value(crate::config::Design::Ee),
            value(crate::config::Design::Oe),
            value(crate::config::Design::Oo),
        );
    }
    s
}

/// Renders one energy breakdown as a Table II-style row body \[mJ\].
#[must_use]
pub fn format_breakdown_row(b: &EnergyBreakdown) -> String {
    format!(
        "{:>9.1} {:>8.1} {:>7.2} {:>7.1} {:>7.1} {:>7.1}",
        b.mul.as_millijoules(),
        b.add.as_millijoules(),
        b.act.as_millijoules(),
        b.oe.as_millijoules(),
        b.comm.as_millijoules(),
        b.laser.as_millijoules(),
    )
}

/// Renders Table II.
#[must_use]
pub fn format_table2(rows: &[TableIiRow]) -> String {
    let mut s =
        String::from("CNN        Des |      Mul      Add     Act     o/e    Comm   Laser  [mJ]\n");
    for row in rows {
        let _ = writeln!(
            s,
            "{:<10} {:<3} | {}",
            row.network,
            row.design.label(),
            format_breakdown_row(&row.breakdown)
        );
    }
    s
}

/// Renders the Fig. 5 component bars.
#[must_use]
pub fn format_components(bars: &[ComponentEnergyBar]) -> String {
    let mut s = String::from(
        "network    des bits |      Mul      Add     Act     o/e    Comm   Laser  [mJ]\n",
    );
    for bar in bars {
        let _ = writeln!(
            s,
            "{:<10} {:<3} {:>4} | {}",
            bar.network,
            bar.design.label(),
            bar.bits,
            format_breakdown_row(&bar.breakdown)
        );
    }
    s
}

/// Renders the Fig. 6 area series \[mm²\].
#[must_use]
pub fn format_area(points: &[AreaPoint]) -> String {
    let mut s = String::from("lanes |     EE [mm²]     OE [mm²]     OO [mm²]\n");
    let mut lanes: Vec<usize> = points.iter().map(|p| p.lanes).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for l in lanes {
        let value = |d| {
            points
                .iter()
                .find(|p| p.design == d && p.lanes == l)
                .map_or(f64::NAN, |p| p.area.as_square_millimetres())
        };
        let _ = writeln!(
            s,
            "{l:>5} | {:>12.4} {:>12.4} {:>12.4}",
            value(crate::config::Design::Ee),
            value(crate::config::Design::Oe),
            value(crate::config::Design::Oo),
        );
    }
    s
}

/// Renders normalized bars (Figs. 7/10): rows = (network, bits).
#[must_use]
pub fn format_normalized(points: &[NormalizedPoint], metric: &str) -> String {
    let mut s = format!("network    bits | normalized {metric} (EE = 1.0)   EE     OE     OO\n");
    let mut keys: Vec<(String, u32)> = points.iter().map(|p| (p.network.clone(), p.bits)).collect();
    keys.sort();
    keys.dedup();
    for (net, bits) in keys {
        let value = |d| {
            points
                .iter()
                .find(|p| p.design == d && p.network == net && p.bits == bits)
                .map_or(f64::NAN, |p| p.normalized)
        };
        let _ = writeln!(
            s,
            "{net:<10} {bits:>4} | {:>36.3} {:>6.3} {:>6.3}",
            value(crate::config::Design::Ee),
            value(crate::config::Design::Oe),
            value(crate::config::Design::Oo),
        );
    }
    s
}

/// Renders the Fig. 8 latency series \[ms\].
#[must_use]
pub fn format_latency(points: &[LatencyPoint]) -> String {
    let mut s = String::from("bits |      EE [ms]      OE [ms]      OO [ms]\n");
    let mut bits: Vec<u32> = points.iter().map(|p| p.bits).collect();
    bits.sort_unstable();
    bits.dedup();
    for b in bits {
        let value = |d| {
            points
                .iter()
                .find(|p| p.design == d && p.bits == b)
                .map_or(f64::NAN, |p| p.latency_geomean * 1e3)
        };
        let _ = writeln!(
            s,
            "{b:>4} | {:>12.3} {:>12.3} {:>12.3}",
            value(crate::config::Design::Ee),
            value(crate::config::Design::Oe),
            value(crate::config::Design::Oo),
        );
    }
    s
}

/// Renders the Fig. 9 per-layer latency series \[ms\].
#[must_use]
pub fn format_layer_latency(points: &[LayerLatencyPoint]) -> String {
    let mut s = String::from("layer    |      EE [ms]      OE [ms]      OO [ms]\n");
    let mut layers: Vec<String> = Vec::new();
    for p in points {
        if !layers.contains(&p.layer) {
            layers.push(p.layer.clone());
        }
    }
    for layer in layers {
        let value = |d| {
            points
                .iter()
                .find(|p| p.design == d && p.layer == layer)
                .map_or(f64::NAN, |p| p.latency * 1e3)
        };
        let _ = writeln!(
            s,
            "{layer:<8} | {:>12.3} {:>12.3} {:>12.3}",
            value(crate::config::Design::Ee),
            value(crate::config::Design::Oe),
            value(crate::config::Design::Oo),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse;

    #[test]
    fn table2_formats_all_rows() {
        let rows = dse::table2_breakdown();
        let text = format_table2(&rows);
        assert!(text.contains("ResNet-34"));
        assert!(text.contains("GoogLeNet"));
        assert!(text.contains("ZFNet"));
        assert_eq!(text.lines().count(), 10); // header + 9 rows
    }

    #[test]
    fn energy_per_bit_table_has_sorted_keys() {
        let points = dse::fig4_energy_per_bit(&[8, 2], &[8, 4]);
        let text = format_energy_per_bit(&points);
        let first_data_line = text.lines().nth(1).unwrap();
        assert!(first_data_line.trim_start().starts_with("2    4"));
    }

    #[test]
    fn area_table_renders() {
        let points = dse::fig6_area(&[2, 4]);
        let text = format_area(&points);
        assert_eq!(text.lines().count(), 3);
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn layer_latency_preserves_network_order() {
        let points = dse::fig9_zfnet_layer_latency();
        let text = format_layer_latency(&points);
        let conv1_pos = text.find("Conv1").unwrap();
        let fc3_pos = text.find("FC3").unwrap();
        assert!(conv1_pos < fc3_pos);
    }
}
