//! PIXEL — the photonic neural network accelerator (HPCA 2020).
//!
//! This crate is the paper's primary contribution: the three accelerator
//! designs (all-electrical **EE**, hybrid **OE**, all-optical **OO**), the
//! PIXEL tile fabric with its x/y photonic interconnect, and the
//! energy/area/latency/EDP models behind every figure and table of the
//! evaluation. It is built on three substrates:
//!
//! * `pixel-photonics` — MRR / MZI / waveguide / laser / detector devices
//!   with bit-true pulse-train simulation,
//! * `pixel-electronics` — the 22 nm gate-level logic models and bit-true
//!   CLA/shifter/Stripes implementations,
//! * `pixel-dnn` — the six evaluated CNNs and the §IV-B op-count analysis.
//!
//! Two complementary layers live here:
//!
//! 1. **Functional OMACs** ([`omac`]) — bit-true EE/OE/OO multiply-
//!    accumulate units that actually compute through the device
//!    simulations, all verified equivalent to integer arithmetic.
//! 2. **Architecture models** ([`energy`], [`area`], [`latency`],
//!    [`edp`], [`accelerator`], [`dse`]) — the analytic evaluation the
//!    paper reports, with constants documented in [`calibration`].
//!
//! # Example
//!
//! ```
//! use pixel_core::accelerator::Accelerator;
//! use pixel_core::config::{AcceleratorConfig, Design};
//! use pixel_dnn::zoo;
//!
//! // The paper's headline configuration: 4 lanes, 16 bits/lane.
//! let oo = Accelerator::new(AcceleratorConfig::new(Design::Oo, 4, 16));
//! let ee = Accelerator::new(AcceleratorConfig::new(Design::Ee, 4, 16));
//! let net = zoo::lenet();
//! let edp_oo = oo.evaluate(&net).edp();
//! let edp_ee = ee.evaluate(&net).edp();
//! assert!(edp_oo < edp_ee, "OO wins EDP at high bits/lane");
//! ```

pub mod ablation;
pub mod accelerator;
pub mod area;
pub mod audit;
pub mod calibration;
pub mod coherent;
pub mod config;
pub mod dataflow;
pub mod dse;
pub mod edp;
pub mod energy;
pub mod functional_fabric;
pub mod interconnect;
pub mod latency;
pub mod mapping;
pub mod model;
pub mod omac;
pub mod overrides;
pub mod pam;
pub mod partition;
pub mod power;
pub mod reliability;
pub mod report;
pub mod robustness;
pub mod roofline;
pub mod scaling;
pub mod seed;
pub mod sim;
pub mod sweep;
pub mod swmr;
pub mod throughput;
pub mod tile;
pub mod validation;
pub mod weight_streaming;

pub use accelerator::{Accelerator, LayerReport, NetworkReport};
pub use config::{AcceleratorConfig, Design};
pub use energy::EnergyBreakdown;
pub use model::{DesignModel, EvalContext};
pub use sweep::SweepEngine;
