//! Ablation and sensitivity studies over the design choices DESIGN.md
//! flags: the MRR energy constant (100 fJ device vs 500 fJ worked
//! example), the receiver re-synchronization cost behind the latency
//! U-shape, the paper's FC op-count convention, and the fabric size.

use crate::accelerator::Accelerator;
use crate::config::{AcceleratorConfig, Design};
use crate::edp::{geomean, Edp};
use crate::energy::layer_energy_with;
use crate::latency::layer_latency_with;
use crate::overrides::ModelOverrides;
use pixel_dnn::analysis::{analyze_network, FcCountConvention};
use pixel_dnn::network::Network;
use pixel_dnn::zoo;
use pixel_units::{Energy, Time};

/// EDP of a network under explicit overrides.
#[must_use]
pub fn edp_with(config: &AcceleratorConfig, network: &Network, overrides: &ModelOverrides) -> Edp {
    let counts = analyze_network(network, FcCountConvention::Paper);
    let energy: Energy = counts
        .iter()
        .map(|c| layer_energy_with(config, c, overrides).total())
        .sum();
    let latency: Time = counts
        .iter()
        .map(|c| layer_latency_with(config, c, overrides))
        .sum();
    Edp::new(energy, latency)
}

/// One row of a sensitivity sweep: parameter value → geomean EDP
/// improvements of OE and OO over EE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// OE geomean EDP improvement over EE.
    pub oe_improvement: f64,
    /// OO geomean EDP improvement over EE.
    pub oo_improvement: f64,
}

fn improvements_under(overrides: &ModelOverrides) -> (f64, f64) {
    let networks = zoo::all_networks();
    let geo = |design: Design| {
        let cfg = AcceleratorConfig::new(design, 4, 16);
        let values: Vec<f64> = networks
            .iter()
            .map(|n| edp_with(&cfg, n, overrides).value())
            .collect();
        geomean(&values)
    };
    let ee = geo(Design::Ee);
    (1.0 - geo(Design::Oe) / ee, 1.0 - geo(Design::Oo) / ee)
}

/// Sweeps the MRR drive energy scale (1.0 = 100 fJ/bit device figure,
/// 5.0 = the paper's worked example) and reports the headline EDP
/// improvements at each point.
#[must_use]
pub fn mrr_energy_sensitivity(scales: &[f64]) -> Vec<SensitivityPoint> {
    scales
        .iter()
        .map(|&scale| {
            let overrides = ModelOverrides::calibrated().with_mrr_scale(scale);
            let (oe, oo) = improvements_under(&overrides);
            SensitivityPoint {
                parameter: scale,
                oe_improvement: oe,
                oo_improvement: oo,
            }
        })
        .collect()
}

/// Sweeps the receiver re-synchronization cost (cycles per extra optical
/// chunk) and reports the headline EDP improvements.
#[must_use]
pub fn resync_sensitivity(cycles: &[f64]) -> Vec<SensitivityPoint> {
    cycles
        .iter()
        .map(|&c| {
            let overrides = ModelOverrides::calibrated().with_resync(c);
            let (oe, oo) = improvements_under(&overrides);
            SensitivityPoint {
                parameter: c,
                oe_improvement: oe,
                oo_improvement: oo,
            }
        })
        .collect()
}

/// Compares the paper's FC op-count convention against the textbook one:
/// returns `(paper_energy, textbook_energy)` totals for `network` on the
/// given design at 4 lanes / 16 bits.
#[must_use]
pub fn fc_convention_ablation(network: &Network, design: Design) -> (Energy, Energy) {
    let accel = Accelerator::new(AcceleratorConfig::new(design, 4, 16));
    let paper = accel
        .evaluate_with(network, FcCountConvention::Paper)
        .total_energy();
    let textbook = accel
        .evaluate_with(network, FcCountConvention::Textbook)
        .total_energy();
    (paper, textbook)
}

/// Tile-count scaling: latency of one network as the fabric grows.
#[must_use]
pub fn tile_scaling(network: &Network, design: Design, tiles: &[usize]) -> Vec<(usize, Time)> {
    tiles
        .iter()
        .map(|&t| {
            let accel = Accelerator::new(AcceleratorConfig::new(design, 4, 16).with_tiles(t));
            (t, accel.evaluate(network).total_latency())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_mrr_energy_still_wins_but_less() {
        let points = mrr_energy_sensitivity(&[1.0, 5.0]);
        let device = points[0];
        let worked = points[1];
        // With 5× MRR energy the optical designs lose some of their edge
        // but the headline conclusion (large EDP win) survives.
        assert!(worked.oo_improvement < device.oo_improvement);
        assert!(
            worked.oo_improvement > 0.5,
            "OO still wins decisively: {}",
            worked.oo_improvement
        );
    }

    #[test]
    fn resync_cost_drives_the_oe_gap() {
        let points = resync_sensitivity(&[0.0, 6.0, 12.0]);
        // Cheaper resync → optical latency penalty shrinks → bigger wins.
        assert!(points[0].oo_improvement > points[1].oo_improvement);
        assert!(points[1].oo_improvement > points[2].oo_improvement);
        // Even with double the calibrated resync cost OO keeps a healthy win.
        assert!(points[2].oo_improvement > 0.5);
    }

    #[test]
    fn fc_convention_changes_fc_heavy_networks_most() {
        // ZFNet's FC1 (9216² under the paper convention vs 9216·4096
        // textbook) dominates; conv-only differences are small.
        let (paper, textbook) = fc_convention_ablation(&zoo::zfnet(), Design::Ee);
        assert!(paper > textbook, "paper convention over-counts FCs");
        let ratio = paper / textbook;
        assert!(ratio > 1.02 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn tile_scaling_is_inverse_linear() {
        let rows = tile_scaling(&zoo::lenet(), Design::Oo, &[8, 16, 32]);
        let t8 = rows[0].1.value();
        let t32 = rows[2].1.value();
        assert!((t8 / t32 - 4.0).abs() < 0.6, "≈4× speedup from 4× tiles");
    }

    #[test]
    fn calibrated_overrides_reproduce_headline() {
        let (oe, oo) = improvements_under(&ModelOverrides::calibrated());
        assert!((oe - 0.484).abs() < 0.08);
        assert!((oo - 0.739).abs() < 0.06);
    }
}
