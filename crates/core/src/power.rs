//! Power analysis: average inference power, peak laser power and the
//! thermal-tuning overhead the paper folds away (§II-A1's ring heaters).
//!
//! The static photonic overheads come from the design's
//! [`crate::model::DesignModel`] backend; this module keeps the report
//! type and the workload-dependent average.

use crate::accelerator::NetworkReport;
use crate::config::AcceleratorConfig;
use pixel_units::{Energy, Power, Time};

/// Power figures of one inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Average power: total energy over total latency.
    pub average: Power,
    /// Electrical power of the laser bank while lasing (zero for EE).
    pub laser_wall_plug: Power,
    /// Static ring-heater tuning power (zero for EE).
    pub thermal_tuning: Power,
}

impl PowerReport {
    /// Average power including the static photonic overheads.
    #[must_use]
    pub fn total_average(&self) -> Power {
        self.average + self.thermal_tuning
    }
}

/// Number of microrings in the fabric: `tiles × lanes² × 2` (each tile's
/// synapse lanes filter every wavelength through a double ring).
#[must_use]
pub fn ring_count(config: &AcceleratorConfig) -> usize {
    config.tiles * config.lanes * config.lanes * 2
}

/// Derives the power report for a finished evaluation.
#[must_use]
pub fn power_report(report: &NetworkReport) -> PowerReport {
    let config = &report.config;
    let energy: Energy = report.total_energy();
    let latency: Time = report.total_latency();
    let average = energy / latency;

    let overheads = config.design.model().static_power(config);

    PowerReport {
        average,
        laser_wall_plug: overheads.laser_wall_plug,
        thermal_tuning: overheads.thermal_tuning,
    }
}

/// The performance-per-watt figure of merit (multiplies per second per
/// watt of average power) the paper's introduction motivates.
#[must_use]
pub fn macs_per_second_per_watt(report: &NetworkReport) -> f64 {
    let total_macs: u64 = report.layers.iter().map(|l| l.counts.mul).sum();
    let seconds = report.total_latency().value();
    let watts = power_report(report).total_average().value();
    if seconds <= 0.0 || watts <= 0.0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        total_macs as f64 / seconds / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn report(design: Design) -> NetworkReport {
        Accelerator::new(AcceleratorConfig::new(design, 4, 16)).evaluate(&zoo::zfnet())
    }

    #[test]
    fn ring_census() {
        let cfg = AcceleratorConfig::new(Design::Oe, 4, 16);
        // Paper §IV-C: the 4-lane, 4-OMAC design has 128 rings; our
        // default fabric has 16 tiles → 512.
        assert_eq!(ring_count(&cfg.with_tiles(4)), 128);
        assert_eq!(ring_count(&cfg), 512);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let r = report(Design::Oo);
        let p = power_report(&r);
        let expect = r.total_energy().value() / r.total_latency().value();
        assert!((p.average.value() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn ee_has_no_photonic_overheads() {
        let p = power_report(&report(Design::Ee));
        assert_eq!(p.laser_wall_plug, Power::ZERO);
        assert_eq!(p.thermal_tuning, Power::ZERO);
        assert_eq!(p.total_average(), p.average);
    }

    #[test]
    fn optical_designs_pay_static_overheads() {
        let p = power_report(&report(Design::Oo));
        assert!(p.laser_wall_plug.value() > 0.0);
        assert!(p.thermal_tuning.value() > 0.0);
        assert!(p.total_average() > p.average);
    }

    #[test]
    fn optical_wins_performance_per_watt() {
        // The paper's core pitch: better performance-per-watt than the
        // electrical design.
        let ee = macs_per_second_per_watt(&report(Design::Ee));
        let oo = macs_per_second_per_watt(&report(Design::Oo));
        assert!(oo > ee, "OO {oo:.3e} vs EE {ee:.3e} MAC/s/W");
        assert!(ee > 0.0);
    }
}
