//! Energy-delay product (Fig. 10 and the headline claims).

use pixel_units::{Energy, Time};

/// An energy-delay product in joule-seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Edp(f64);

impl Edp {
    /// Computes `energy × delay`.
    #[must_use]
    pub fn new(energy: Energy, delay: Time) -> Self {
        Self(energy.value() * delay.value())
    }

    /// The raw value in J·s.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Ratio against a baseline (e.g. OO vs EE). 1.0 = equal.
    #[must_use]
    pub fn relative_to(self, baseline: Self) -> f64 {
        self.0 / baseline.0
    }

    /// Fractional improvement over a baseline: the paper's "73.9%
    /// improvement" is `1 − self/baseline`.
    #[must_use]
    pub fn improvement_over(self, baseline: Self) -> f64 {
        1.0 - self.relative_to(baseline)
    }
}

/// Geometric mean of a set of EDPs (used across networks, as the paper
/// reports geomeans).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = values.len() as f64;
    (values.iter().map(|v| v.ln()).sum::<f64>() / n).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_is_product() {
        let edp = Edp::new(Energy::from_millijoules(2.0), Time::from_millis(3.0));
        assert!((edp.value() - 6.0e-6).abs() < 1e-18);
    }

    #[test]
    fn improvement_arithmetic() {
        let base = Edp::new(Energy::new(4.0), Time::new(1.0));
        let better = Edp::new(Energy::new(1.0), Time::new(1.0));
        assert!((better.relative_to(base) - 0.25).abs() < 1e-12);
        assert!((better.improvement_over(base) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_scale_equivariant() {
        let a = [1.0, 3.0, 9.0];
        let scaled: Vec<f64> = a.iter().map(|v| v * 7.0).collect();
        assert!((geomean(&scaled) - 7.0 * geomean(&a)).abs() < 1e-9);
    }
}
