//! Memoizing evaluation context for the analytic models.
//!
//! Every sweep point in the evaluation re-derives the same quantities:
//! the per-operation energies and the firing-round service time depend
//! only on `(design, lanes, bits/lane, tiles, clocks, overrides)`, and
//! the §IV-B op counts depend only on the network. [`EvalContext`]
//! caches both behind mutex-protected maps, so a sweep that visits the
//! same configuration or network twice pays the derivation once. Cache
//! traffic is counted through `pixel-obs` (`eval.cache_hit`,
//! `eval.cache_miss`, `eval.counts_hit`, `eval.counts_miss`); the
//! `reproduce --profile` run surfaces the totals.
//!
//! The context is `Sync`: the parallel sweep executor in
//! [`crate::sweep`] shares one context across its workers, so a value
//! derived by one worker is a cache hit for the rest.

use crate::accelerator::{LayerReport, NetworkReport};
use crate::config::AcceleratorConfig;
use crate::energy::{self, OperationEnergies};
use crate::latency;
use crate::overrides::ModelOverrides;
use pixel_dnn::analysis::{analyze_network, ComputeCounts, FcCountConvention};
use pixel_dnn::network::Network;
// HashMap iteration order never reaches any artifact: both caches are
// read per-key (and `len()` for stats), so nondeterministic ordering
// cannot leak into reports. Audited for the D002 hash-order invariant.
// lint:allow(C004) per-key cache reads only; iteration order never leaves this file
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: every model input that the derived quantities depend on,
/// with floats keyed by their bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DerivedKey {
    design: crate::config::Design,
    lanes: usize,
    bits: u32,
    tiles: usize,
    native_bits: u32,
    clock_bits: [u64; 2],
    override_bits: [u64; 5],
}

impl DerivedKey {
    fn new(config: &AcceleratorConfig, overrides: &ModelOverrides) -> Self {
        Self {
            design: config.design,
            lanes: config.lanes,
            bits: config.bits_per_lane,
            tiles: config.tiles,
            native_bits: config.native_bits,
            clock_bits: [
                config.clocks.electrical_hz.to_bits(),
                config.clocks.optical_hz.to_bits(),
            ],
            override_bits: [
                overrides.mrr_energy_scale.to_bits(),
                overrides.oo_add_fixed_scale.to_bits(),
                overrides.oe_conversion_scale.to_bits(),
                overrides.resync_cycles.to_bits(),
                overrides.ee_cycles_per_bit.to_bits(),
            ],
        }
    }
}

/// The memoized derivation of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Derived {
    ops: OperationEnergies,
    cycles_per_firing: f64,
}

/// The memoized §IV-B op-count analyses, keyed by network name and FC
/// convention.
type CountsCache = HashMap<(String, FcCountConvention), Arc<Vec<ComputeCounts>>>;

/// A memoizing handle on the analytic evaluation.
///
/// Construct one per sweep (or share one across sweeps with the same
/// [`ModelOverrides`]); it is cheap when cold and `Sync` when shared.
#[derive(Debug, Default)]
pub struct EvalContext {
    overrides: ModelOverrides,
    derived: Mutex<HashMap<DerivedKey, Derived>>,
    counts: Mutex<CountsCache>,
}

impl EvalContext {
    /// A context over the calibrated model.
    #[must_use]
    pub fn new() -> Self {
        Self::with_overrides(ModelOverrides::calibrated())
    }

    /// A context over an explicitly overridden model.
    #[must_use]
    pub fn with_overrides(overrides: ModelOverrides) -> Self {
        Self {
            overrides,
            derived: Mutex::new(HashMap::new()),
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// The overrides every derivation in this context uses.
    #[must_use]
    pub fn overrides(&self) -> &ModelOverrides {
        &self.overrides
    }

    fn derived(&self, config: &AcceleratorConfig) -> Derived {
        let key = DerivedKey::new(config, &self.overrides);
        let mut cache = self
            .derived
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = cache.get(&key) {
            pixel_obs::add("eval.cache_hit", 1);
            return *hit;
        }
        pixel_obs::add("eval.cache_miss", 1);
        let model = config.design.model();
        let value = Derived {
            ops: model.operation_energies(config, &self.overrides),
            cycles_per_firing: model.cycles_per_firing(config, &self.overrides),
        };
        cache.insert(key, value);
        value
    }

    /// Memoized per-operation energies of a configuration.
    #[must_use]
    pub fn operation_energies(&self, config: &AcceleratorConfig) -> OperationEnergies {
        self.derived(config).ops
    }

    /// Memoized firing-round service time of a configuration.
    #[must_use]
    pub fn cycles_per_firing(&self, config: &AcceleratorConfig) -> f64 {
        self.derived(config).cycles_per_firing
    }

    /// Memoized §IV-B op counts of a network.
    ///
    /// Keyed by network name and convention: the evaluated zoo gives
    /// each architecture a unique canonical name.
    #[must_use]
    pub fn network_counts(
        &self,
        network: &Network,
        convention: FcCountConvention,
    ) -> Arc<Vec<ComputeCounts>> {
        let key = (network.name().to_owned(), convention);
        let mut cache = self
            .counts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = cache.get(&key) {
            pixel_obs::add("eval.counts_hit", 1);
            return Arc::clone(hit);
        }
        pixel_obs::add("eval.counts_miss", 1);
        let counts = Arc::new(analyze_network(network, convention));
        cache.insert(key, Arc::clone(&counts));
        counts
    }

    /// Evaluates a network with the paper's FC op-count convention.
    #[must_use]
    pub fn evaluate(&self, config: &AcceleratorConfig, network: &Network) -> NetworkReport {
        self.evaluate_with(config, network, FcCountConvention::Paper)
    }

    /// Evaluates a network with an explicit FC op-count convention,
    /// through the memoized derivations.
    #[must_use]
    pub fn evaluate_with(
        &self,
        config: &AcceleratorConfig,
        network: &Network,
        convention: FcCountConvention,
    ) -> NetworkReport {
        pixel_obs::add("dse.model_evals", 1);
        let derived = self.derived(config);
        let layers = self
            .network_counts(network, convention)
            .iter()
            .map(|counts| LayerReport {
                name: counts.name.clone(),
                energy: energy::breakdown_from_ops(&derived.ops, counts),
                latency: latency::layer_latency_from_cycles(
                    config,
                    derived.cycles_per_firing,
                    counts,
                ),
                counts: counts.clone(),
            })
            .collect();
        NetworkReport {
            network: network.name().to_owned(),
            config: *config,
            layers,
        }
    }

    /// Service time and dynamic energy of one `batch`-sized dispatch —
    /// the serving simulator's per-batch cost, derived through the
    /// memoized evaluation (paper FC convention) and the pipeline-fill
    /// batching model of [`crate::throughput`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn batch_service(
        &self,
        config: &AcceleratorConfig,
        network: &Network,
        batch: usize,
    ) -> crate::throughput::BatchService {
        let report = self.evaluate(config, network);
        #[allow(clippy::cast_precision_loss)]
        let energy = report.total_energy() * batch as f64;
        crate::throughput::BatchService {
            batch,
            latency: crate::throughput::batch_latency(&report, batch),
            energy,
        }
    }

    /// Number of distinct configurations derived so far.
    #[must_use]
    pub fn derived_entries(&self) -> usize {
        self.derived
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::config::Design;
    use pixel_dnn::zoo;

    #[test]
    fn context_matches_the_direct_path_bitwise() {
        let ctx = EvalContext::new();
        let net = zoo::lenet();
        for design in Design::ALL {
            for bits in [4u32, 16] {
                let cfg = AcceleratorConfig::new(design, 4, bits);
                let direct = Accelerator::new(cfg).evaluate(&net);
                let cached = ctx.evaluate(&cfg, &net);
                assert_eq!(direct, cached, "{design} b={bits}");
                // Second pass hits the cache and stays identical.
                assert_eq!(ctx.evaluate(&cfg, &net), cached, "{design} b={bits}");
            }
        }
    }

    #[test]
    fn derivations_are_cached_per_configuration() {
        let ctx = EvalContext::new();
        let cfg = AcceleratorConfig::new(Design::Oo, 4, 16);
        let a = ctx.operation_energies(&cfg);
        let b = ctx.operation_energies(&cfg);
        assert_eq!(a, b);
        assert_eq!(ctx.derived_entries(), 1);
        let _ = ctx.cycles_per_firing(&AcceleratorConfig::new(Design::Ee, 4, 16));
        assert_eq!(ctx.derived_entries(), 2);
    }

    #[test]
    fn overrides_flow_into_the_derivations() {
        let calibrated = EvalContext::new();
        let scaled = EvalContext::with_overrides(ModelOverrides::worked_example_mrr());
        let cfg = AcceleratorConfig::new(Design::Oe, 4, 16);
        let base = calibrated.operation_energies(&cfg).mul;
        let boosted = scaled.operation_energies(&cfg).mul;
        assert!((boosted / base - 5.0).abs() < 1e-12);
    }

    #[test]
    fn network_counts_are_shared() {
        let ctx = EvalContext::new();
        let net = zoo::zfnet();
        let a = ctx.network_counts(&net, FcCountConvention::Paper);
        let b = ctx.network_counts(&net, FcCountConvention::Paper);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 8);
    }
}
