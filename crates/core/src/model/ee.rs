//! The all-electrical **EE** backend: the Stripes bit-serial baseline.
//!
//! Multiplies are bit-serial AND+shift through the unrolled STR
//! datapath, accumulates go through a carry-lookahead adder, and every
//! word moves over electrical links in both directions. There is no
//! photonic substrate: o/e conversion, laser energy, static photonic
//! power and shared photonic fabric area are all zero.

use super::{DesignModel, StaticPower};
use crate::area::AreaBreakdown;
use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Clocks, Design};
use crate::energy::OperationEnergies;
use crate::omac::{ActivityMac, EeMac};
use crate::overrides::ModelOverrides;
use pixel_electronics::dsent;
use pixel_electronics::gates::LogicDepth;
use pixel_electronics::stripes::StripesMac;
use pixel_electronics::technology::Technology;
use pixel_units::{Area, Energy};

/// The Stripes-style all-electrical design.
#[derive(Debug, Clone, Copy, Default)]
pub struct EeModel;

impl DesignModel for EeModel {
    fn design(&self) -> Design {
        Design::Ee
    }

    fn operation_energies(
        &self,
        config: &AcceleratorConfig,
        overrides: &ModelOverrides,
    ) -> OperationEnergies {
        let _ = overrides;
        let b = config.b();
        let g = cal::lane_width_factor(config.lanes, config.bits_per_lane);
        OperationEnergies {
            mul: cal::pj(cal::K_EE_MUL_PJ_PER_BIT2 * b * b),
            add: cal::pj(cal::K_EE_ADD_PJ_PER_BIT * b * g),
            act: super::activation_energy(config),
            oe: Energy::ZERO,
            comm: cal::pj(2.0 * cal::K_LINK_E_PJ_PER_BIT * b),
            laser: Energy::ZERO,
        }
    }

    fn tile_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        let tech = Technology::bulk22lvt();
        let bits = config.bits_per_lane.clamp(1, 16);
        let estimate = |gates| dsent::estimate(gates, LogicDepth::new(1), &tech).area;
        let electrical = estimate(super::common_electrical_gates(config))
            + estimate(StripesMac::new(config.lanes, bits).gate_count());
        AreaBreakdown {
            electrical,
            photonic: Area::default(),
        }
    }

    fn cycles_per_firing(&self, config: &AcceleratorConfig, overrides: &ModelOverrides) -> f64 {
        // The unrolled STR datapath retires ≈3 synapse bits per cycle.
        cal::PIPELINE_CYCLES + (overrides.ee_cycles_per_bit * config.b()).ceil()
    }

    fn static_power(&self, _config: &AcceleratorConfig) -> StaticPower {
        StaticPower::default()
    }

    fn ingress_line_rate_hz(&self, clocks: &Clocks) -> f64 {
        clocks.electrical_hz
    }

    fn chunk_handoff_cycles(&self) -> Option<f64> {
        None
    }

    fn analytic_activity(&self) -> (f64, f64) {
        // Independent fair synapse bits, serially streamed: lit and
        // toggle rates are both 1/2.
        (0.5, 0.5)
    }

    fn functional_engine(&self, config: &AcceleratorConfig) -> Box<dyn ActivityMac> {
        Box::new(EeMac::new(config.lanes, config.bits_per_lane))
    }
}
