//! The hybrid **OE** backend: optical multiply, electrical accumulate.
//!
//! Multiplies run through double-MRR filters (2 rings × ~100 fJ per
//! bit-slot), products are serially converted back to the electrical
//! domain and accumulated by a barrel shifter + CLA. The receiver-side
//! deserialization widens the accumulate path (+7% over EE), every word
//! pays an o/e conversion and a laser share, and each optical pulse
//! chunk needs a 2-cycle o/e + accumulate handoff.

use super::{DesignModel, StaticPower};
use crate::area::AreaBreakdown;
use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Clocks, Design};
use crate::energy::OperationEnergies;
use crate::omac::{ActivityMac, OeMac};
use crate::overrides::ModelOverrides;
use pixel_electronics::cla::Cla;
use pixel_electronics::converter::SerialConverter;
use pixel_electronics::dsent;
use pixel_electronics::gates::LogicDepth;
use pixel_electronics::shifter::BarrelShifter;
use pixel_electronics::stripes::StripesMac;
use pixel_electronics::technology::Technology;

/// Per-chunk electrical handoff: o/e conversion plus accumulate.
const CHUNK_HANDOFF_CYCLES: f64 = 2.0;

/// The hybrid optical-multiply / electrical-accumulate design.
#[derive(Debug, Clone, Copy, Default)]
pub struct OeModel;

impl DesignModel for OeModel {
    fn design(&self) -> Design {
        Design::Oe
    }

    fn operation_energies(
        &self,
        config: &AcceleratorConfig,
        overrides: &ModelOverrides,
    ) -> OperationEnergies {
        let b = config.b();
        let g = cal::lane_width_factor(config.lanes, config.bits_per_lane);
        OperationEnergies {
            mul: super::mrr_multiply_energy(config, overrides),
            add: cal::pj(cal::K_EE_ADD_PJ_PER_BIT * b * g * cal::OE_ADD_FACTOR),
            act: super::activation_energy(config),
            oe: super::oe_conversion_energy(config, overrides),
            comm: super::optical_comm_energy(config),
            laser: cal::pj(super::laser_word_energy(config)),
        }
    }

    fn tile_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        let tech = Technology::bulk22lvt();
        let bits = config.bits_per_lane.clamp(1, 16);
        let acc_width = StripesMac::accumulator_width(config.lanes, bits).min(64);
        let estimate = |gates| dsent::estimate(gates, LogicDepth::new(1), &tech).area;
        // Accumulate-side logic: per-lane converter + shared shifter and
        // accumulator.
        let logic = SerialConverter::new(bits).gate_count() * config.lanes as u64
            + BarrelShifter::new(acc_width).gate_count()
            + Cla::new(acc_width).gate_count();
        AreaBreakdown {
            electrical: estimate(super::common_electrical_gates(config)) + estimate(logic),
            photonic: super::mrr_array_area(config) + super::receiver_area(config),
        }
    }

    fn fabric_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        super::optical_fabric_area(self.tile_area(config), config)
    }

    fn cycles_per_firing(&self, config: &AcceleratorConfig, overrides: &ModelOverrides) -> f64 {
        super::optical_cycles_per_firing(config, overrides, CHUNK_HANDOFF_CYCLES)
    }

    fn static_power(&self, config: &AcceleratorConfig) -> StaticPower {
        super::optical_static_power(config)
    }

    fn ingress_line_rate_hz(&self, clocks: &Clocks) -> f64 {
        clocks.optical_hz
    }

    fn chunk_handoff_cycles(&self) -> Option<f64> {
        Some(CHUNK_HANDOFF_CYCLES)
    }

    fn analytic_activity(&self) -> (f64, f64) {
        // Neuron bit AND synapse-bit gate: lit rate 1/4; the gate is
        // shared along the train, correlating adjacent slots into a
        // toggle rate of 1/4 (not the independent-model 3/8).
        (0.25, 0.25)
    }

    fn functional_engine(&self, config: &AcceleratorConfig) -> Box<dyn ActivityMac> {
        Box::new(OeMac::new(config.lanes, config.bits_per_lane))
    }
}
