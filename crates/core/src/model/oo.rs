//! The all-optical **OO** backend: MRR multiply plus MZI-chain
//! accumulation.
//!
//! Multiplies share the OE design's double-MRR front end; accumulation
//! stays in the optical domain through a delay-matched MZI chain whose
//! multi-level output a comparator ladder resolves. The accumulate cost
//! is a fixed per-word chain-drive/resolve term plus a per-bit MZI
//! modulation term, the laser pays a 1.52× premium for the chain's path
//! loss, and each pulse chunk needs only a single handoff cycle.

use super::{DesignModel, StaticPower};
use crate::area::AreaBreakdown;
use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Clocks, Design};
use crate::energy::OperationEnergies;
use crate::omac::{ActivityMac, OoMac};
use crate::overrides::ModelOverrides;
use pixel_electronics::cla::Cla;
use pixel_electronics::comparator::ComparatorLadder;
use pixel_electronics::converter::AmplitudeConverter;
use pixel_electronics::dsent;
use pixel_electronics::gates::LogicDepth;
use pixel_electronics::stripes::StripesMac;
use pixel_electronics::technology::Technology;
use pixel_photonics::constants::OPTICAL_CLOCK_HZ;
use pixel_photonics::mzi::MziChain;
use pixel_units::Area;

/// Per-chunk electrical handoff: the chain output resolves once.
const CHUNK_HANDOFF_CYCLES: f64 = 1.0;

/// The all-optical multiply-and-accumulate design.
#[derive(Debug, Clone, Copy, Default)]
pub struct OoModel;

impl DesignModel for OoModel {
    fn design(&self) -> Design {
        Design::Oo
    }

    fn operation_energies(
        &self,
        config: &AcceleratorConfig,
        overrides: &ModelOverrides,
    ) -> OperationEnergies {
        let b = config.b();
        let g = cal::lane_width_factor(config.lanes, config.bits_per_lane);
        OperationEnergies {
            mul: super::mrr_multiply_energy(config, overrides),
            add: cal::pj(
                cal::K_OO_ADD_FIXED_PJ * overrides.oo_add_fixed_scale * g
                    + cal::K_MZI_PJ_PER_BIT * b,
            ),
            act: super::activation_energy(config),
            oe: super::oe_conversion_energy(config, overrides),
            comm: super::optical_comm_energy(config),
            laser: cal::pj(super::laser_word_energy(config) * cal::LASER_OO_FACTOR),
        }
    }

    fn tile_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        let tech = Technology::bulk22lvt();
        let bits = config.bits_per_lane.clamp(1, 16);
        let acc_width = StripesMac::accumulator_width(config.lanes, bits).min(64);
        let estimate = |gates| dsent::estimate(gates, LogicDepth::new(1), &tech).area;
        let logic = AmplitudeConverter::new(bits).gate_count() * config.lanes as u64
            + ComparatorLadder::new(bits).gate_count() * config.lanes as u64
            + Cla::new(acc_width).gate_count();
        let chain = MziChain::delay_matched(bits as usize, OPTICAL_CLOCK_HZ);
        let chains = Area::new(chain.area().value() * config.lanes as f64);
        AreaBreakdown {
            electrical: estimate(super::common_electrical_gates(config)) + estimate(logic),
            photonic: super::mrr_array_area(config) + super::receiver_area(config) + chains,
        }
    }

    fn fabric_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        super::optical_fabric_area(self.tile_area(config), config)
    }

    fn cycles_per_firing(&self, config: &AcceleratorConfig, overrides: &ModelOverrides) -> f64 {
        super::optical_cycles_per_firing(config, overrides, CHUNK_HANDOFF_CYCLES)
    }

    fn static_power(&self, config: &AcceleratorConfig) -> StaticPower {
        super::optical_static_power(config)
    }

    fn ingress_line_rate_hz(&self, clocks: &Clocks) -> f64 {
        clocks.optical_hz
    }

    fn chunk_handoff_cycles(&self) -> Option<f64> {
        Some(CHUNK_HANDOFF_CYCLES)
    }

    fn analytic_activity(&self) -> (f64, f64) {
        // Same shared-gate partial-product trains as OE: the MZI
        // accumulation changes where sums happen, not slot statistics.
        (0.25, 0.25)
    }

    fn functional_engine(&self, config: &AcceleratorConfig) -> Box<dyn ActivityMac> {
        Box::new(OoMac::new(config.lanes, config.bits_per_lane))
    }
}
