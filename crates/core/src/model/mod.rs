//! The `DesignModel` backend layer: one module per accelerator design.
//!
//! Every cost the evaluation derives from a design — per-operation
//! energies, tile and fabric area, cycles per firing round, static
//! photonic power, ingress line rate — used to be computed by `match
//! Design` arms scattered across `energy`, `area`, `latency`, `power`,
//! `roofline` and friends. This module inverts that structure: the
//! [`DesignModel`] trait names each derived quantity once, and each
//! design implements it in its own backend module ([`ee`], [`oe`],
//! [`oo`]), owning its device-level composition from
//! `pixel-electronics` / `pixel-photonics`.
//!
//! Adding a fourth design (a Winograd-photonic or PAM/stochastic
//! variant, say) is one new backend module plus one entry in the
//! registry below — no edits to the model call sites.
//!
//! [`context::EvalContext`] memoizes the derived quantities per
//! configuration and [`crate::sweep`] runs design-point grids through
//! it in parallel.

pub mod context;
pub mod ee;
pub mod oe;
pub mod oo;

pub use context::EvalContext;
pub use ee::EeModel;
pub use oe::OeModel;
pub use oo::OoModel;

use crate::area::AreaBreakdown;
use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Clocks, Design};
use crate::energy::OperationEnergies;
use crate::omac::ActivityMac;
use crate::overrides::ModelOverrides;
use pixel_electronics::activation::TanhUnit;
use pixel_electronics::gates::GateCount;
use pixel_electronics::register::GATES_PER_FLIPFLOP;
use pixel_photonics::constants::waveguide_pitch;
use pixel_photonics::laser::FabryPerotLaser;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::thermal::RingHeaterBank;
use pixel_units::{Area, Energy, Power};

/// Static (workload-independent) power of a design's photonic substrate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticPower {
    /// Electrical wall-plug power of the laser bank while lasing.
    pub laser_wall_plug: Power,
    /// Ring-heater thermal-tuning power.
    pub thermal_tuning: Power,
}

/// The cost model of one accelerator design.
///
/// Implementations are stateless: every method derives its result from
/// the configuration (and overrides) alone, so values are memoizable by
/// [`EvalContext`] and safe to evaluate from parallel sweep workers.
pub trait DesignModel: Send + Sync {
    /// The design this backend models.
    fn design(&self) -> Design;

    /// Per-operation energies (the §IV-B components of Table II).
    fn operation_energies(
        &self,
        config: &AcceleratorConfig,
        overrides: &ModelOverrides,
    ) -> OperationEnergies;

    /// Area of one OMAC tile.
    fn tile_area(&self, config: &AcceleratorConfig) -> AreaBreakdown;

    /// Area of the whole fabric: tiles plus any shared infrastructure
    /// (laser die, x/y waveguide routing). The default is tiles only.
    fn fabric_area(&self, config: &AcceleratorConfig) -> AreaBreakdown {
        scaled_tile_area(self.tile_area(config), config)
    }

    /// Service time of one firing round, in electrical cycles.
    fn cycles_per_firing(&self, config: &AcceleratorConfig, overrides: &ModelOverrides) -> f64;

    /// Static photonic power (zero for all-electrical designs).
    fn static_power(&self, config: &AcceleratorConfig) -> StaticPower;

    /// Data-ingress line rate per lane \[bit/s\] (roofline bandwidth).
    fn ingress_line_rate_hz(&self, clocks: &Clocks) -> f64;

    /// Electrical handoff cycles per optical pulse chunk, or `None` for
    /// designs without an optical front end (no line code to choose).
    fn chunk_handoff_cycles(&self) -> Option<f64>;

    /// Closed-form (lit, toggle) activity factors for uniformly random
    /// operands — what the energy model multiplies by, and what
    /// [`crate::audit`] checks the counted functional activity against.
    fn analytic_activity(&self) -> (f64, f64);

    /// Builds the bit-true functional MAC engine of this design.
    fn functional_engine(&self, config: &AcceleratorConfig) -> Box<dyn ActivityMac>;
}

/// The backend registry, indexed in [`Design::ALL`] order.
static MODELS: [&dyn DesignModel; 3] = [&EeModel, &OeModel, &OoModel];

impl Design {
    /// The cost-model backend of this design.
    #[must_use]
    pub fn model(self) -> &'static dyn DesignModel {
        MODELS[self as usize]
    }
}

// ---------------------------------------------------------------------
// Composition helpers shared by the backends.
// ---------------------------------------------------------------------

/// Tile area scaled to the full fabric (no shared infrastructure).
pub(crate) fn scaled_tile_area(tile: AreaBreakdown, config: &AcceleratorConfig) -> AreaBreakdown {
    #[allow(clippy::cast_precision_loss)]
    let tiles = config.tiles as f64;
    AreaBreakdown {
        electrical: tile.electrical * tiles,
        photonic: tile.photonic * tiles,
    }
}

/// Activation-function energy per evaluation (identical tanh units in
/// every design).
pub(crate) fn activation_energy(config: &AcceleratorConfig) -> Energy {
    cal::pj(cal::K_ACT_PJ_PER_BIT * config.b())
}

/// Gate count of the weight register file: `lanes` synapse words.
pub(crate) fn register_file_gates(config: &AcceleratorConfig) -> GateCount {
    GateCount::new(config.lanes as u64 * u64::from(config.bits_per_lane) * GATES_PER_FLIPFLOP)
}

/// Electrical area common to all designs: register file + activation.
pub(crate) fn common_electrical_gates(config: &AcceleratorConfig) -> GateCount {
    register_file_gates(config) + TanhUnit::new().gate_count()
}

/// MRR drive energy of one optical multiply: b bits stream for b cycles
/// through a double (2-ring) filter.
pub(crate) fn mrr_multiply_energy(
    config: &AcceleratorConfig,
    overrides: &ModelOverrides,
) -> Energy {
    let b = config.b();
    cal::pj(2.0 * cal::K_MRR_PJ_PER_BIT * overrides.mrr_energy_scale * b * b)
}

/// Per-word optical-to-electrical conversion energy.
pub(crate) fn oe_conversion_energy(
    config: &AcceleratorConfig,
    overrides: &ModelOverrides,
) -> Energy {
    let b = config.b();
    cal::pj(
        (cal::K_OE_CONV_FIXED_PJ + cal::K_OE_CONV_PJ_PER_BIT * b) * overrides.oe_conversion_scale,
    )
}

/// Link energy of an optically-ingested word: optical in, electrical out.
pub(crate) fn optical_comm_energy(config: &AcceleratorConfig) -> Energy {
    cal::pj((cal::K_LINK_O_PJ_PER_BIT + cal::K_LINK_E_PJ_PER_BIT) * config.b())
}

/// Laser share per word fired (before any design-specific premium).
pub(crate) fn laser_word_energy(config: &AcceleratorConfig) -> f64 {
    cal::K_LASER_FIXED_PJ + cal::K_LASER_PJ_PER_BIT * config.b()
}

/// Optical firing-round service time: `A + k·⌈b/Q⌉ + R·(⌈b/Q⌉−1)` with
/// `k` the per-chunk handoff cost (§V-B2 pulse clumping).
pub(crate) fn optical_cycles_per_firing(
    config: &AcceleratorConfig,
    overrides: &ModelOverrides,
    handoff: f64,
) -> f64 {
    let chunks = (config.b() / config.clocks.pulses_per_electrical_cycle()).ceil();
    cal::PIPELINE_CYCLES + handoff * chunks + overrides.resync_cycles * (chunks - 1.0)
}

/// Footprint of the tile's double-MRR array: `lanes` synapse lanes each
/// filtering `lanes` wavelengths (paper §IV-C: the 4-lane design uses 16
/// double filters per OMAC).
pub(crate) fn mrr_array_area(config: &AcceleratorConfig) -> Area {
    let filter = DoubleMrrFilter::default();
    #[allow(clippy::cast_precision_loss)]
    let count = (config.lanes * config.lanes) as f64;
    Area::new(filter.area().value() * count)
}

/// Photodetector area: one Ge detector per wavelength (~200 µm² each).
pub(crate) fn receiver_area(config: &AcceleratorConfig) -> Area {
    #[allow(clippy::cast_precision_loss)]
    let count = config.lanes as f64;
    Area::from_square_micrometres(200.0 * count)
}

/// Fabric area of an optical design: tiles plus the shared laser die and
/// x/y waveguide routing bundles.
pub(crate) fn optical_fabric_area(
    tile: AreaBreakdown,
    config: &AcceleratorConfig,
) -> AreaBreakdown {
    let mut total = scaled_tile_area(tile, config);
    #[allow(clippy::cast_precision_loss)]
    let tiles = config.tiles as f64;
    let laser = FabryPerotLaser::default().area();
    // x + y waveguide bundles: one waveguide per tile per dimension,
    // spanning the fabric edge (≈1 mm per tile pitch).
    let per_guide = pixel_units::Length::from_millimetres(tiles.sqrt().ceil()) * waveguide_pitch();
    let guides = Area::new(per_guide.value() * 2.0 * tiles);
    total.photonic = total.photonic + laser + guides;
    total
}

/// Static power of an optical design's shared substrate: the laser bank
/// plus the ring-heater tuning of every microring in the fabric.
pub(crate) fn optical_static_power(config: &AcceleratorConfig) -> StaticPower {
    let per_channel = config.lanes.min(128);
    let laser = FabryPerotLaser::new(per_channel, Power::from_milliwatts(1.0), 0.1)
        // lint:allow(P002) lanes clamped to the 128-channel comb capacity above
        .expect("lanes clamped to channel capacity");
    #[allow(clippy::cast_precision_loss)]
    let channels = config.tiles as f64;
    let heater = RingHeaterBank::new(
        crate::power::ring_count(config),
        Power::from_milliwatts(0.1),
        1.0,
    );
    StaticPower {
        laser_wall_plug: laser.electrical_power() * channels,
        thermal_tuning: heater.total_power(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_matches_design_all() {
        for design in Design::ALL {
            assert_eq!(design.model().design(), design, "{design}");
        }
    }

    #[test]
    fn only_optical_backends_expose_chunk_handoff() {
        assert!(Design::Ee.model().chunk_handoff_cycles().is_none());
        assert_eq!(Design::Oe.model().chunk_handoff_cycles(), Some(2.0));
        assert_eq!(Design::Oo.model().chunk_handoff_cycles(), Some(1.0));
    }

    #[test]
    fn functional_engines_compute_correct_inner_products() {
        let n = [3u64, 5, 7, 9];
        let s = [2u64, 4, 6, 8];
        let expect: u64 = n.iter().zip(&s).map(|(a, b)| a * b).sum();
        for design in Design::ALL {
            let cfg = AcceleratorConfig::new(design, 4, 8);
            let engine = design.model().functional_engine(&cfg);
            assert_eq!(engine.inner_product(&n, &s), expect, "{design}");
            assert!(engine.activity().gated_slots() > 0, "{design}");
        }
    }

    #[test]
    fn static_power_is_zero_only_for_ee() {
        let cfg = |d| AcceleratorConfig::new(d, 4, 16);
        let ee = Design::Ee.model().static_power(&cfg(Design::Ee));
        assert_eq!(ee.laser_wall_plug, Power::ZERO);
        assert_eq!(ee.thermal_tuning, Power::ZERO);
        for d in [Design::Oe, Design::Oo] {
            let p = d.model().static_power(&cfg(d));
            assert!(p.laser_wall_plug.value() > 0.0, "{d}");
            assert!(p.thermal_tuning.value() > 0.0, "{d}");
        }
    }

    #[test]
    fn ingress_line_rates() {
        let clocks = Clocks::paper();
        assert!(
            (Design::Ee.model().ingress_line_rate_hz(&clocks) - clocks.electrical_hz).abs() < 1.0
        );
        for d in [Design::Oe, Design::Oo] {
            assert!(
                (d.model().ingress_line_rate_hz(&clocks) - clocks.optical_hz).abs() < 1.0,
                "{d}"
            );
        }
    }
}
