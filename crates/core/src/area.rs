//! Per-design area model (Fig. 6).
//!
//! Electrical logic is costed through the mini-DSENT gate pathway;
//! photonic devices through their physical footprints (450 µm² per
//! double-MRR filter at 7.5 µm radius, millimetre-scale MZI chains).
//! The paper's qualitative result — EE smallest, OE larger (MRR arrays),
//! OO much larger (cascaded MZIs) — follows directly from the device
//! geometry. (The paper's printed absolute deltas mix units
//! inconsistently; see DESIGN.md §6. We report mm².)

use crate::config::{AcceleratorConfig, Design};
use pixel_electronics::activation::TanhUnit;
use pixel_electronics::cla::Cla;
use pixel_electronics::comparator::ComparatorLadder;
use pixel_electronics::converter::{AmplitudeConverter, SerialConverter};
use pixel_electronics::dsent;
use pixel_electronics::gates::{GateCount, LogicDepth};
use pixel_electronics::register::GATES_PER_FLIPFLOP;
use pixel_electronics::shifter::BarrelShifter;
use pixel_electronics::stripes::StripesMac;
use pixel_electronics::technology::Technology;
use pixel_photonics::constants::{waveguide_pitch, OPTICAL_CLOCK_HZ};
use pixel_photonics::laser::FabryPerotLaser;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::mzi::MziChain;
use pixel_units::Area;

/// Area split between the electrical and photonic portions of one design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Electrical logic area.
    pub electrical: Area,
    /// Photonic device area (MRRs, MZI chains, lasers, detectors).
    pub photonic: Area,
}

impl AreaBreakdown {
    /// Total area.
    #[must_use]
    pub fn total(&self) -> Area {
        self.electrical + self.photonic
    }
}

/// Gate count of the weight register file: `lanes` synapse words.
fn register_file_gates(config: &AcceleratorConfig) -> GateCount {
    GateCount::new(config.lanes as u64 * u64::from(config.bits_per_lane) * GATES_PER_FLIPFLOP)
}

/// Electrical area common to all designs: register file + activation.
fn common_electrical_gates(config: &AcceleratorConfig) -> GateCount {
    register_file_gates(config) + TanhUnit::new().gate_count()
}

/// Area of one OMAC tile under `config`.
#[must_use]
pub fn tile_area(config: &AcceleratorConfig) -> AreaBreakdown {
    let tech = Technology::bulk22lvt();
    let bits = config.bits_per_lane.clamp(1, 16);
    let acc_width = StripesMac::accumulator_width(config.lanes, bits).min(64);
    let estimate = |gates: GateCount| dsent::estimate(gates, LogicDepth::new(1), &tech).area;

    let mut electrical = estimate(common_electrical_gates(config));
    let mut photonic = Area::default();

    match config.design {
        Design::Ee => {
            electrical += estimate(StripesMac::new(config.lanes, bits).gate_count());
        }
        Design::Oe => {
            // Accumulate-side logic: per-lane converter + shared shifter
            // and accumulator.
            let logic = SerialConverter::new(bits).gate_count() * config.lanes as u64
                + BarrelShifter::new(acc_width).gate_count()
                + Cla::new(acc_width).gate_count();
            electrical += estimate(logic);
            photonic = photonic + mrr_array_area(config) + receiver_area(config);
        }
        Design::Oo => {
            let logic = AmplitudeConverter::new(bits).gate_count() * config.lanes as u64
                + ComparatorLadder::new(bits).gate_count() * config.lanes as u64
                + Cla::new(acc_width).gate_count();
            electrical += estimate(logic);
            let chain = MziChain::delay_matched(bits as usize, OPTICAL_CLOCK_HZ);
            let chains = Area::new(chain.area().value() * config.lanes as f64);
            photonic = photonic + mrr_array_area(config) + receiver_area(config) + chains;
        }
    }

    AreaBreakdown {
        electrical,
        photonic,
    }
}

/// Footprint of the tile's double-MRR array: `lanes` synapse lanes each
/// filtering `lanes` wavelengths (paper §IV-C: the 4-lane design uses 16
/// double filters per OMAC).
fn mrr_array_area(config: &AcceleratorConfig) -> Area {
    let filter = DoubleMrrFilter::default();
    #[allow(clippy::cast_precision_loss)]
    let count = (config.lanes * config.lanes) as f64;
    Area::new(filter.area().value() * count)
}

/// Photodetector area: one Ge detector per wavelength (~200 µm² each).
fn receiver_area(config: &AcceleratorConfig) -> Area {
    #[allow(clippy::cast_precision_loss)]
    let count = config.lanes as f64;
    Area::from_square_micrometres(200.0 * count)
}

/// Area of the whole fabric: tiles plus shared photonic infrastructure
/// (laser die, x/y waveguide routing).
#[must_use]
pub fn fabric_area(config: &AcceleratorConfig) -> AreaBreakdown {
    let tile = tile_area(config);
    #[allow(clippy::cast_precision_loss)]
    let tiles = config.tiles as f64;
    let mut total = AreaBreakdown {
        electrical: tile.electrical * tiles,
        photonic: tile.photonic * tiles,
    };
    if config.design.is_optical() {
        let laser = FabryPerotLaser::default().area();
        // x + y waveguide bundles: one waveguide per tile per dimension,
        // spanning the fabric edge (≈1 mm per tile pitch).
        let per_guide = pixel_units::Length::from_millimetres(tiles.sqrt().ceil())
            * waveguide_pitch();
        let guides = Area::new(per_guide.value() * 2.0 * tiles);
        total.photonic = total.photonic + laser + guides;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(design: Design, lanes: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(design, lanes, 4)
    }

    #[test]
    fn fig6_ordering_ee_smallest_oo_largest() {
        for lanes in [2, 4, 8, 16] {
            let ee = tile_area(&cfg(Design::Ee, lanes)).total();
            let oe = tile_area(&cfg(Design::Oe, lanes)).total();
            let oo = tile_area(&cfg(Design::Oo, lanes)).total();
            assert!(ee < oe, "EE < OE at {lanes} lanes");
            assert!(oe < oo, "OE < OO at {lanes} lanes");
        }
    }

    #[test]
    fn area_grows_with_lanes() {
        for d in Design::ALL {
            let small = tile_area(&cfg(d, 2)).total();
            let big = tile_area(&cfg(d, 16)).total();
            assert!(big > small, "{d}");
        }
    }

    #[test]
    fn mzi_chains_dominate_oo() {
        let oo = tile_area(&cfg(Design::Oo, 4));
        assert!(
            oo.photonic.value() > 10.0 * oo.electrical.value(),
            "photonic {} vs electrical {}",
            oo.photonic.as_square_millimetres(),
            oo.electrical.as_square_millimetres()
        );
    }

    #[test]
    fn ee_has_no_photonics() {
        let ee = tile_area(&cfg(Design::Ee, 4));
        assert!(ee.photonic.value().abs() < 1e-18);
        let fabric = fabric_area(&cfg(Design::Ee, 4));
        assert!(fabric.photonic.value().abs() < 1e-18);
    }

    #[test]
    fn fabric_scales_with_tiles() {
        let one = fabric_area(&cfg(Design::Oe, 4).with_tiles(1)).total();
        let many = fabric_area(&cfg(Design::Oe, 4).with_tiles(16)).total();
        assert!(many.value() > 10.0 * one.value());
    }

    #[test]
    fn oo_area_grows_with_bits() {
        // MZI chains have one stage per bit.
        let narrow = tile_area(&AcceleratorConfig::new(Design::Oo, 4, 4)).total();
        let wide = tile_area(&AcceleratorConfig::new(Design::Oo, 4, 16)).total();
        assert!(wide.value() > 2.0 * narrow.value());
    }
}
