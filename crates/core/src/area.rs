//! Per-design area model (Fig. 6).
//!
//! Electrical logic is costed through the mini-DSENT gate pathway;
//! photonic devices through their physical footprints (450 µm² per
//! double-MRR filter at 7.5 µm radius, millimetre-scale MZI chains).
//! The paper's qualitative result — EE smallest, OE larger (MRR arrays),
//! OO much larger (cascaded MZIs) — follows directly from the device
//! geometry. (The paper's printed absolute deltas mix units
//! inconsistently; see DESIGN.md §6. We report mm².)
//!
//! The composition itself lives in the per-design
//! [`crate::model::DesignModel`] backends; this module keeps the
//! breakdown type and the dispatching entry points.

use crate::config::AcceleratorConfig;
use pixel_units::Area;

/// Area split between the electrical and photonic portions of one design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Electrical logic area.
    pub electrical: Area,
    /// Photonic device area (MRRs, MZI chains, lasers, detectors).
    pub photonic: Area,
}

impl AreaBreakdown {
    /// Total area.
    #[must_use]
    pub fn total(&self) -> Area {
        self.electrical + self.photonic
    }
}

/// Area of one OMAC tile under `config`.
#[must_use]
pub fn tile_area(config: &AcceleratorConfig) -> AreaBreakdown {
    config.design.model().tile_area(config)
}

/// Area of the whole fabric: tiles plus shared photonic infrastructure
/// (laser die, x/y waveguide routing).
#[must_use]
pub fn fabric_area(config: &AcceleratorConfig) -> AreaBreakdown {
    config.design.model().fabric_area(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn cfg(design: Design, lanes: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(design, lanes, 4)
    }

    #[test]
    fn fig6_ordering_ee_smallest_oo_largest() {
        for lanes in [2, 4, 8, 16] {
            let ee = tile_area(&cfg(Design::Ee, lanes)).total();
            let oe = tile_area(&cfg(Design::Oe, lanes)).total();
            let oo = tile_area(&cfg(Design::Oo, lanes)).total();
            assert!(ee < oe, "EE < OE at {lanes} lanes");
            assert!(oe < oo, "OE < OO at {lanes} lanes");
        }
    }

    #[test]
    fn area_grows_with_lanes() {
        for d in Design::ALL {
            let small = tile_area(&cfg(d, 2)).total();
            let big = tile_area(&cfg(d, 16)).total();
            assert!(big > small, "{d}");
        }
    }

    #[test]
    fn mzi_chains_dominate_oo() {
        let oo = tile_area(&cfg(Design::Oo, 4));
        assert!(
            oo.photonic.value() > 10.0 * oo.electrical.value(),
            "photonic {} vs electrical {}",
            oo.photonic.as_square_millimetres(),
            oo.electrical.as_square_millimetres()
        );
    }

    #[test]
    fn ee_has_no_photonics() {
        let ee = tile_area(&cfg(Design::Ee, 4));
        assert!(ee.photonic.value().abs() < 1e-18);
        let fabric = fabric_area(&cfg(Design::Ee, 4));
        assert!(fabric.photonic.value().abs() < 1e-18);
    }

    #[test]
    fn fabric_scales_with_tiles() {
        let one = fabric_area(&cfg(Design::Oe, 4).with_tiles(1)).total();
        let many = fabric_area(&cfg(Design::Oe, 4).with_tiles(16)).total();
        assert!(many.value() > 10.0 * one.value());
    }

    #[test]
    fn oo_area_grows_with_bits() {
        // MZI chains have one stage per bit.
        let narrow = tile_area(&AcceleratorConfig::new(Design::Oo, 4, 4)).total();
        let wide = tile_area(&AcceleratorConfig::new(Design::Oo, 4, 16)).total();
        assert!(wide.value() > 2.0 * narrow.value());
    }
}
