//! Design-space exploration: the sweeps behind every figure and table.
//!
//! Each function regenerates the data series of one paper artifact; the
//! `reproduce` binary and the criterion benches are thin wrappers over
//! these.

use crate::accelerator::Accelerator;
use crate::area::fabric_area;
use crate::config::{AcceleratorConfig, Design};
use crate::edp::geomean;
use crate::energy::{EnergyBreakdown, OperationEnergies};
use pixel_dnn::network::Network;
use pixel_dnn::zoo;
use pixel_units::Area;

/// One point of the Fig. 4 single-MAC energy/bit study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPerBitPoint {
    /// Design.
    pub design: Design,
    /// Lane (wavelength) count.
    pub lanes: usize,
    /// Bits per lane.
    pub bits: u32,
    /// Energy per payload bit \[J\].
    pub energy_per_bit: f64,
}

/// Fig. 4: energy/bit of a single MAC unit over lanes × bits/lane.
#[must_use]
pub fn fig4_energy_per_bit(lanes_sweep: &[usize], bits_sweep: &[u32]) -> Vec<EnergyPerBitPoint> {
    let mut out = Vec::new();
    for design in Design::ALL {
        let _design_span = pixel_obs::span(design.label());
        for &lanes in lanes_sweep {
            for &bits in bits_sweep {
                pixel_obs::add("dse/design_points", 1);
                let cfg = AcceleratorConfig::new(design, lanes, bits);
                let ops = OperationEnergies::for_config(&cfg);
                out.push(EnergyPerBitPoint {
                    design,
                    lanes,
                    bits,
                    energy_per_bit: ops.energy_per_bit(lanes, bits).value(),
                });
            }
        }
    }
    out
}

/// One bar of the Fig. 5 component-energy study.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEnergyBar {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Component breakdown.
    pub breakdown: EnergyBreakdown,
}

/// Fig. 5: per-component energy for the given networks at 4 lanes over a
/// bits/lane sweep.
#[must_use]
pub fn fig5_component_energy(networks: &[Network], bits_sweep: &[u32]) -> Vec<ComponentEnergyBar> {
    let mut out = Vec::new();
    for net in networks {
        for design in Design::ALL {
            let _design_span = pixel_obs::span(design.label());
            for &bits in bits_sweep {
                pixel_obs::add("dse/design_points", 1);
                let accel = Accelerator::new(AcceleratorConfig::new(design, 4, bits));
                let report = accel.evaluate(net);
                out.push(ComponentEnergyBar {
                    network: net.name().to_owned(),
                    design,
                    bits,
                    breakdown: report.energy_breakdown(),
                });
            }
        }
    }
    out
}

/// One point of the Fig. 6 area study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPoint {
    /// Design.
    pub design: Design,
    /// Lane count.
    pub lanes: usize,
    /// Fabric area.
    pub area: Area,
}

/// Fig. 6: fabric area at 4 bits/lane over a lane sweep.
#[must_use]
pub fn fig6_area(lanes_sweep: &[usize]) -> Vec<AreaPoint> {
    let mut out = Vec::new();
    for design in Design::ALL {
        let _design_span = pixel_obs::span(design.label());
        for &lanes in lanes_sweep {
            pixel_obs::add("dse/design_points", 1);
            let cfg = AcceleratorConfig::new(design, lanes, 4);
            out.push(AreaPoint {
                design,
                lanes,
                area: fabric_area(&cfg).total(),
            });
        }
    }
    out
}

/// One bar of a normalized per-network study (Figs. 7 and 10).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedPoint {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Value normalized to the EE design at the same (network, bits).
    pub normalized: f64,
}

/// Fig. 7: energy normalized to EE, per network × bits/lane, at 8 lanes.
#[must_use]
pub fn fig7_normalized_energy(networks: &[Network], bits_sweep: &[u32]) -> Vec<NormalizedPoint> {
    normalized_sweep(networks, bits_sweep, 8, |accel, net| {
        accel.evaluate(net).total_energy().value()
    })
}

/// Fig. 10: EDP normalized to EE, per network × bits/lane, at 4 lanes.
#[must_use]
pub fn fig10_normalized_edp(networks: &[Network], bits_sweep: &[u32]) -> Vec<NormalizedPoint> {
    normalized_sweep(networks, bits_sweep, 4, |accel, net| {
        accel.evaluate(net).edp().value()
    })
}

fn normalized_sweep(
    networks: &[Network],
    bits_sweep: &[u32],
    lanes: usize,
    metric: impl Fn(&Accelerator, &Network) -> f64,
) -> Vec<NormalizedPoint> {
    let mut out = Vec::new();
    for net in networks {
        for &bits in bits_sweep {
            let baseline = metric(
                &Accelerator::new(AcceleratorConfig::new(Design::Ee, lanes, bits)),
                net,
            );
            for design in Design::ALL {
                let _design_span = pixel_obs::span(design.label());
                pixel_obs::add("dse/design_points", 1);
                let value = metric(
                    &Accelerator::new(AcceleratorConfig::new(design, lanes, bits)),
                    net,
                );
                out.push(NormalizedPoint {
                    network: net.name().to_owned(),
                    design,
                    bits,
                    normalized: value / baseline,
                });
            }
        }
    }
    out
}

/// One point of the Fig. 8 latency study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Geometric-mean inference latency across the networks \[s\].
    pub latency_geomean: f64,
}

/// Fig. 8: geomean latency across the six CNNs at 8 lanes, bits/lane 1–32.
#[must_use]
pub fn fig8_latency_geomean(networks: &[Network], bits_sweep: &[u32]) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    for design in Design::ALL {
        let _design_span = pixel_obs::span(design.label());
        for &bits in bits_sweep {
            pixel_obs::add("dse/design_points", 1);
            let accel = Accelerator::new(AcceleratorConfig::new(design, 8, bits));
            let latencies: Vec<f64> = networks
                .iter()
                .map(|n| accel.evaluate(n).total_latency().value())
                .collect();
            out.push(LatencyPoint {
                design,
                bits,
                latency_geomean: geomean(&latencies),
            });
        }
    }
    out
}

/// One bar of the Fig. 9 per-layer latency study.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatencyPoint {
    /// Layer name.
    pub layer: String,
    /// Design.
    pub design: Design,
    /// Layer latency \[s\].
    pub latency: f64,
}

/// Fig. 9: ZFNet per-layer latency at 8 lanes, 8 bits/lane.
#[must_use]
pub fn fig9_zfnet_layer_latency() -> Vec<LayerLatencyPoint> {
    let net = zoo::zfnet();
    let mut out = Vec::new();
    for design in Design::ALL {
        let _design_span = pixel_obs::span(design.label());
        pixel_obs::add("dse/design_points", 1);
        let accel = Accelerator::new(AcceleratorConfig::new(design, 8, 8));
        for layer in accel.evaluate(&net).layers {
            out.push(LayerLatencyPoint {
                layer: layer.name.clone(),
                design,
                latency: layer.latency.value(),
            });
        }
    }
    out
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIiRow {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Component breakdown.
    pub breakdown: EnergyBreakdown,
}

/// Table II: component energies for ResNet-34, GoogLeNet and ZFNet at
/// 4 lanes, 16 bits/lane.
#[must_use]
pub fn table2_breakdown() -> Vec<TableIiRow> {
    let mut out = Vec::new();
    for net in [zoo::resnet34(), zoo::googlenet(), zoo::zfnet()] {
        for design in Design::ALL {
            let _design_span = pixel_obs::span(design.label());
            pixel_obs::add("dse/design_points", 1);
            let accel = Accelerator::new(AcceleratorConfig::new(design, 4, 16));
            out.push(TableIiRow {
                network: net.name().to_owned(),
                design,
                breakdown: accel.evaluate(&net).energy_breakdown(),
            });
        }
    }
    out
}

/// The paper's headline claim: geomean EDP improvement of OE and OO over
/// EE at 4 lanes, 16 bits/lane, across the six networks. Returns
/// `(oe_improvement, oo_improvement)` as fractions (paper: 0.484, 0.739).
#[must_use]
pub fn headline_edp_improvements() -> (f64, f64) {
    let networks = zoo::all_networks();
    let edp_for = |design: Design| {
        let _design_span = pixel_obs::span(design.label());
        pixel_obs::add("dse/design_points", 1);
        let accel = Accelerator::new(AcceleratorConfig::new(design, 4, 16));
        let values: Vec<f64> = networks
            .iter()
            .map(|n| accel.evaluate(n).edp().value())
            .collect();
        geomean(&values)
    };
    let ee = edp_for(Design::Ee);
    (1.0 - edp_for(Design::Oe) / ee, 1.0 - edp_for(Design::Oo) / ee)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_improvements_match_paper() {
        // Paper: OE 48.4%, OO 73.9%.
        let (oe, oo) = headline_edp_improvements();
        assert!((oe - 0.484).abs() < 0.08, "OE improvement {oe}");
        assert!((oo - 0.739).abs() < 0.06, "OO improvement {oo}");
    }

    #[test]
    fn fig4_shapes() {
        let points = fig4_energy_per_bit(&[4], &[4, 8, 16, 32]);
        let series = |d: Design| -> Vec<f64> {
            points
                .iter()
                .filter(|p| p.design == d)
                .map(|p| p.energy_per_bit)
                .collect()
        };
        let ee = series(Design::Ee);
        assert!(ee.windows(2).all(|w| w[1] > w[0]), "EE rises with bits");
        let oo = series(Design::Oo);
        assert!(oo[3] < oo[0], "OO falls from 4 to 32 bits");
    }

    #[test]
    fn fig6_ordering() {
        let points = fig6_area(&[2, 4, 8]);
        for lanes in [2usize, 4, 8] {
            let area = |d: Design| {
                points
                    .iter()
                    .find(|p| p.design == d && p.lanes == lanes)
                    .unwrap()
                    .area
            };
            assert!(area(Design::Ee) < area(Design::Oe));
            assert!(area(Design::Oe) < area(Design::Oo));
        }
    }

    #[test]
    fn fig7_crossover() {
        // At 4 bits/lane on 8 lanes EE is competitive; at 32 bits/lane the
        // optical designs win decisively.
        let nets = [zoo::lenet()];
        let points = fig7_normalized_energy(&nets, &[4, 32]);
        let value = |d: Design, b: u32| {
            points
                .iter()
                .find(|p| p.design == d && p.bits == b)
                .unwrap()
                .normalized
        };
        assert!((value(Design::Ee, 4) - 1.0).abs() < 1e-12);
        assert!(value(Design::Oo, 4) > 0.7, "no big optical win at 4 bits");
        assert!(value(Design::Oo, 32) < 0.25, "large OO win at 32 bits");
        assert!(value(Design::Oe, 32) < value(Design::Ee, 32));
    }

    #[test]
    fn fig8_ee_monotone_and_optical_u() {
        let nets = [zoo::lenet(), zoo::zfnet()];
        let bits: Vec<u32> = vec![1, 2, 4, 8, 10, 16, 24, 32];
        let points = fig8_latency_geomean(&nets, &bits);
        let series = |d: Design| -> Vec<f64> {
            bits.iter()
                .map(|&b| {
                    points
                        .iter()
                        .find(|p| p.design == d && p.bits == b)
                        .unwrap()
                        .latency_geomean
                })
                .collect()
        };
        let ee = series(Design::Ee);
        assert!(ee.windows(2).all(|w| w[1] < w[0]), "EE declines: {ee:?}");
        let oo = series(Design::Oo);
        let min_idx = oo
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (3..=5).contains(&min_idx),
            "OO minimum near the 10-pulse threshold: {oo:?}"
        );
        assert!(oo[bits.len() - 1] > oo[min_idx], "OO rises after minimum");
    }

    #[test]
    fn fig9_oo_fastest_per_layer() {
        let points = fig9_zfnet_layer_latency();
        let conv2 = |d: Design| {
            points
                .iter()
                .find(|p| p.design == d && p.layer == "Conv2")
                .unwrap()
                .latency
        };
        assert!(conv2(Design::Oo) < conv2(Design::Oe));
        assert!(conv2(Design::Oe) < conv2(Design::Ee));
        // Paper: OO 31.9% faster than EE on Conv2.
        let speedup = 1.0 - conv2(Design::Oo) / conv2(Design::Ee);
        assert!((speedup - 0.319).abs() < 0.08, "speedup {speedup}");
    }

    #[test]
    fn table2_has_nine_rows() {
        let rows = table2_breakdown();
        assert_eq!(rows.len(), 9);
        assert!(rows
            .iter()
            .all(|r| r.breakdown.total().value() > 0.0));
    }
}
