//! Design-space exploration: the sweeps behind every figure and table.
//!
//! Each function regenerates the data series of one paper artifact; the
//! `reproduce` binary and the criterion benches are thin wrappers over
//! these. Every artifact routes through [`SweepEngine`]: the design
//! points are laid out as a flat grid, mapped in parallel over worker
//! threads, and evaluated through the engine's shared memoizing
//! [`crate::model::EvalContext`]. Results are returned in grid order,
//! so a parallel sweep is bitwise-identical to a serial one; the
//! `*_with` variants take an explicit engine (worker count, overrides),
//! the plain functions use the process-default worker count.

use crate::config::{AcceleratorConfig, Design};
use crate::edp::geomean;
use crate::energy::EnergyBreakdown;
use crate::model::EvalContext;
use crate::sweep::SweepEngine;
use pixel_dnn::network::Network;
use pixel_dnn::zoo;
use pixel_units::Area;

/// One point of the Fig. 4 single-MAC energy/bit study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPerBitPoint {
    /// Design.
    pub design: Design,
    /// Lane (wavelength) count.
    pub lanes: usize,
    /// Bits per lane.
    pub bits: u32,
    /// Energy per payload bit \[J\].
    pub energy_per_bit: f64,
}

/// Fig. 4: energy/bit of a single MAC unit over lanes × bits/lane.
#[must_use]
pub fn fig4_energy_per_bit(lanes_sweep: &[usize], bits_sweep: &[u32]) -> Vec<EnergyPerBitPoint> {
    fig4_energy_per_bit_with(&SweepEngine::with_default_jobs(), lanes_sweep, bits_sweep)
}

/// Fig. 4 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig4_energy_per_bit_with(
    engine: &SweepEngine,
    lanes_sweep: &[usize],
    bits_sweep: &[u32],
) -> Vec<EnergyPerBitPoint> {
    let points: Vec<(Design, usize, u32)> = Design::ALL
        .iter()
        .flat_map(|&design| {
            lanes_sweep
                .iter()
                .flat_map(move |&lanes| bits_sweep.iter().map(move |&bits| (design, lanes, bits)))
        })
        .collect();
    engine.map(&points, |ctx, &(design, lanes, bits)| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let cfg = AcceleratorConfig::new(design, lanes, bits);
        EnergyPerBitPoint {
            design,
            lanes,
            bits,
            energy_per_bit: ctx
                .operation_energies(&cfg)
                .energy_per_bit(lanes, bits)
                .value(),
        }
    })
}

/// One bar of the Fig. 5 component-energy study.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEnergyBar {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Component breakdown.
    pub breakdown: EnergyBreakdown,
}

/// Fig. 5: per-component energy for the given networks at 4 lanes over a
/// bits/lane sweep.
#[must_use]
pub fn fig5_component_energy(networks: &[Network], bits_sweep: &[u32]) -> Vec<ComponentEnergyBar> {
    fig5_component_energy_with(&SweepEngine::with_default_jobs(), networks, bits_sweep)
}

/// Fig. 5 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig5_component_energy_with(
    engine: &SweepEngine,
    networks: &[Network],
    bits_sweep: &[u32],
) -> Vec<ComponentEnergyBar> {
    let points: Vec<(&Network, Design, u32)> = networks
        .iter()
        .flat_map(|net| {
            Design::ALL
                .iter()
                .flat_map(move |&design| bits_sweep.iter().map(move |&bits| (net, design, bits)))
        })
        .collect();
    engine.map(&points, |ctx, &(net, design, bits)| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let report = ctx.evaluate(&AcceleratorConfig::new(design, 4, bits), net);
        ComponentEnergyBar {
            network: net.name().to_owned(),
            design,
            bits,
            breakdown: report.energy_breakdown(),
        }
    })
}

/// One point of the Fig. 6 area study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPoint {
    /// Design.
    pub design: Design,
    /// Lane count.
    pub lanes: usize,
    /// Fabric area.
    pub area: Area,
}

/// Fig. 6: fabric area at 4 bits/lane over a lane sweep.
#[must_use]
pub fn fig6_area(lanes_sweep: &[usize]) -> Vec<AreaPoint> {
    fig6_area_with(&SweepEngine::with_default_jobs(), lanes_sweep)
}

/// Fig. 6 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig6_area_with(engine: &SweepEngine, lanes_sweep: &[usize]) -> Vec<AreaPoint> {
    let points: Vec<(Design, usize)> = Design::ALL
        .iter()
        .flat_map(|&design| lanes_sweep.iter().map(move |&lanes| (design, lanes)))
        .collect();
    engine.map(&points, |_ctx, &(design, lanes)| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let cfg = AcceleratorConfig::new(design, lanes, 4);
        AreaPoint {
            design,
            lanes,
            area: design.model().fabric_area(&cfg).total(),
        }
    })
}

/// One bar of a normalized per-network study (Figs. 7 and 10).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedPoint {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Value normalized to the EE design at the same (network, bits).
    pub normalized: f64,
}

/// Fig. 7: energy normalized to EE, per network × bits/lane, at 8 lanes.
#[must_use]
pub fn fig7_normalized_energy(networks: &[Network], bits_sweep: &[u32]) -> Vec<NormalizedPoint> {
    fig7_normalized_energy_with(&SweepEngine::with_default_jobs(), networks, bits_sweep)
}

/// Fig. 7 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig7_normalized_energy_with(
    engine: &SweepEngine,
    networks: &[Network],
    bits_sweep: &[u32],
) -> Vec<NormalizedPoint> {
    normalized_sweep(engine, networks, bits_sweep, 8, |ctx, cfg, net| {
        ctx.evaluate(cfg, net).total_energy().value()
    })
}

/// Fig. 10: EDP normalized to EE, per network × bits/lane, at 4 lanes.
#[must_use]
pub fn fig10_normalized_edp(networks: &[Network], bits_sweep: &[u32]) -> Vec<NormalizedPoint> {
    fig10_normalized_edp_with(&SweepEngine::with_default_jobs(), networks, bits_sweep)
}

/// Fig. 10 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig10_normalized_edp_with(
    engine: &SweepEngine,
    networks: &[Network],
    bits_sweep: &[u32],
) -> Vec<NormalizedPoint> {
    normalized_sweep(engine, networks, bits_sweep, 4, |ctx, cfg, net| {
        ctx.evaluate(cfg, net).edp().value()
    })
}

fn normalized_sweep(
    engine: &SweepEngine,
    networks: &[Network],
    bits_sweep: &[u32],
    lanes: usize,
    metric: impl Fn(&EvalContext, &AcceleratorConfig, &Network) -> f64 + Sync,
) -> Vec<NormalizedPoint> {
    // One point per (network, bits): the EE baseline and the three
    // normalized bars belong together, so they evaluate on one worker.
    let points: Vec<(&Network, u32)> = networks
        .iter()
        .flat_map(|net| bits_sweep.iter().map(move |&bits| (net, bits)))
        .collect();
    let groups = engine.map(&points, |ctx, &(net, bits)| {
        let baseline = metric(ctx, &AcceleratorConfig::new(Design::Ee, lanes, bits), net);
        Design::ALL
            .map(|design| {
                let _span = pixel_obs::span(design.label());
                pixel_obs::add("dse.design_points", 1);
                let value = metric(ctx, &AcceleratorConfig::new(design, lanes, bits), net);
                NormalizedPoint {
                    network: net.name().to_owned(),
                    design,
                    bits,
                    normalized: value / baseline,
                }
            })
            .to_vec()
    });
    groups.into_iter().flatten().collect()
}

/// One point of the Fig. 8 latency study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Design.
    pub design: Design,
    /// Bits per lane.
    pub bits: u32,
    /// Geometric-mean inference latency across the networks \[s\].
    pub latency_geomean: f64,
}

/// Fig. 8: geomean latency across the six CNNs at 8 lanes, bits/lane 1–32.
#[must_use]
pub fn fig8_latency_geomean(networks: &[Network], bits_sweep: &[u32]) -> Vec<LatencyPoint> {
    fig8_latency_geomean_with(&SweepEngine::with_default_jobs(), networks, bits_sweep)
}

/// Fig. 8 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig8_latency_geomean_with(
    engine: &SweepEngine,
    networks: &[Network],
    bits_sweep: &[u32],
) -> Vec<LatencyPoint> {
    let points: Vec<(Design, u32)> = Design::ALL
        .iter()
        .flat_map(|&design| bits_sweep.iter().map(move |&bits| (design, bits)))
        .collect();
    engine.map(&points, |ctx, &(design, bits)| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let cfg = AcceleratorConfig::new(design, 8, bits);
        let latencies: Vec<f64> = networks
            .iter()
            .map(|n| ctx.evaluate(&cfg, n).total_latency().value())
            .collect();
        LatencyPoint {
            design,
            bits,
            latency_geomean: geomean(&latencies),
        }
    })
}

/// One bar of the Fig. 9 per-layer latency study.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatencyPoint {
    /// Layer name.
    pub layer: String,
    /// Design.
    pub design: Design,
    /// Layer latency \[s\].
    pub latency: f64,
}

/// Fig. 9: ZFNet per-layer latency at 8 lanes, 8 bits/lane.
#[must_use]
pub fn fig9_zfnet_layer_latency() -> Vec<LayerLatencyPoint> {
    fig9_zfnet_layer_latency_with(&SweepEngine::with_default_jobs())
}

/// Fig. 9 through an explicit [`SweepEngine`].
#[must_use]
pub fn fig9_zfnet_layer_latency_with(engine: &SweepEngine) -> Vec<LayerLatencyPoint> {
    let net = zoo::zfnet();
    let groups = engine.map(&Design::ALL, |ctx, &design| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let report = ctx.evaluate(&AcceleratorConfig::new(design, 8, 8), &net);
        report
            .layers
            .into_iter()
            .map(|layer| LayerLatencyPoint {
                layer: layer.name,
                design,
                latency: layer.latency.value(),
            })
            .collect::<Vec<_>>()
    });
    groups.into_iter().flatten().collect()
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIiRow {
    /// Network name.
    pub network: String,
    /// Design.
    pub design: Design,
    /// Component breakdown.
    pub breakdown: EnergyBreakdown,
}

/// Table II: component energies for ResNet-34, GoogLeNet and ZFNet at
/// 4 lanes, 16 bits/lane.
#[must_use]
pub fn table2_breakdown() -> Vec<TableIiRow> {
    table2_breakdown_with(&SweepEngine::with_default_jobs())
}

/// Table II through an explicit [`SweepEngine`].
#[must_use]
pub fn table2_breakdown_with(engine: &SweepEngine) -> Vec<TableIiRow> {
    let networks = [zoo::resnet34(), zoo::googlenet(), zoo::zfnet()];
    let points: Vec<(&Network, Design)> = networks
        .iter()
        .flat_map(|net| Design::ALL.iter().map(move |&design| (net, design)))
        .collect();
    engine.map(&points, |ctx, &(net, design)| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let report = ctx.evaluate(&AcceleratorConfig::new(design, 4, 16), net);
        TableIiRow {
            network: net.name().to_owned(),
            design,
            breakdown: report.energy_breakdown(),
        }
    })
}

/// The paper's headline claim: geomean EDP improvement of OE and OO over
/// EE at 4 lanes, 16 bits/lane, across the six networks. Returns
/// `(oe_improvement, oo_improvement)` as fractions (paper: 0.484, 0.739).
#[must_use]
pub fn headline_edp_improvements() -> (f64, f64) {
    headline_edp_improvements_with(&SweepEngine::with_default_jobs())
}

/// Headline EDP improvements through an explicit [`SweepEngine`].
#[must_use]
pub fn headline_edp_improvements_with(engine: &SweepEngine) -> (f64, f64) {
    let networks = zoo::all_networks();
    let edps = engine.map(&Design::ALL, |ctx, &design| {
        let _span = pixel_obs::span(design.label());
        pixel_obs::add("dse.design_points", 1);
        let cfg = AcceleratorConfig::new(design, 4, 16);
        let values: Vec<f64> = networks
            .iter()
            .map(|n| ctx.evaluate(&cfg, n).edp().value())
            .collect();
        geomean(&values)
    });
    let [ee, oe, oo] = edps[..] else {
        unreachable!("one geomean per design");
    };
    (1.0 - oe / ee, 1.0 - oo / ee)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_improvements_match_paper() {
        // Paper: OE 48.4%, OO 73.9%.
        let (oe, oo) = headline_edp_improvements();
        assert!((oe - 0.484).abs() < 0.08, "OE improvement {oe}");
        assert!((oo - 0.739).abs() < 0.06, "OO improvement {oo}");
    }

    #[test]
    fn fig4_shapes() {
        let points = fig4_energy_per_bit(&[4], &[4, 8, 16, 32]);
        let series = |d: Design| -> Vec<f64> {
            points
                .iter()
                .filter(|p| p.design == d)
                .map(|p| p.energy_per_bit)
                .collect()
        };
        let ee = series(Design::Ee);
        assert!(ee.windows(2).all(|w| w[1] > w[0]), "EE rises with bits");
        let oo = series(Design::Oo);
        assert!(oo[3] < oo[0], "OO falls from 4 to 32 bits");
    }

    #[test]
    fn fig6_ordering() {
        let points = fig6_area(&[2, 4, 8]);
        for lanes in [2usize, 4, 8] {
            let area = |d: Design| {
                points
                    .iter()
                    .find(|p| p.design == d && p.lanes == lanes)
                    .unwrap()
                    .area
            };
            assert!(area(Design::Ee) < area(Design::Oe));
            assert!(area(Design::Oe) < area(Design::Oo));
        }
    }

    #[test]
    fn fig7_crossover() {
        // At 4 bits/lane on 8 lanes EE is competitive; at 32 bits/lane the
        // optical designs win decisively.
        let nets = [zoo::lenet()];
        let points = fig7_normalized_energy(&nets, &[4, 32]);
        let value = |d: Design, b: u32| {
            points
                .iter()
                .find(|p| p.design == d && p.bits == b)
                .unwrap()
                .normalized
        };
        assert!((value(Design::Ee, 4) - 1.0).abs() < 1e-12);
        assert!(value(Design::Oo, 4) > 0.7, "no big optical win at 4 bits");
        assert!(value(Design::Oo, 32) < 0.25, "large OO win at 32 bits");
        assert!(value(Design::Oe, 32) < value(Design::Ee, 32));
    }

    #[test]
    fn fig8_ee_monotone_and_optical_u() {
        let nets = [zoo::lenet(), zoo::zfnet()];
        let bits: Vec<u32> = vec![1, 2, 4, 8, 10, 16, 24, 32];
        let points = fig8_latency_geomean(&nets, &bits);
        let series = |d: Design| -> Vec<f64> {
            bits.iter()
                .map(|&b| {
                    points
                        .iter()
                        .find(|p| p.design == d && p.bits == b)
                        .unwrap()
                        .latency_geomean
                })
                .collect()
        };
        let ee = series(Design::Ee);
        assert!(ee.windows(2).all(|w| w[1] < w[0]), "EE declines: {ee:?}");
        let oo = series(Design::Oo);
        let min_idx = oo
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (3..=5).contains(&min_idx),
            "OO minimum near the 10-pulse threshold: {oo:?}"
        );
        assert!(oo[bits.len() - 1] > oo[min_idx], "OO rises after minimum");
    }

    #[test]
    fn fig9_oo_fastest_per_layer() {
        let points = fig9_zfnet_layer_latency();
        let conv2 = |d: Design| {
            points
                .iter()
                .find(|p| p.design == d && p.layer == "Conv2")
                .unwrap()
                .latency
        };
        assert!(conv2(Design::Oo) < conv2(Design::Oe));
        assert!(conv2(Design::Oe) < conv2(Design::Ee));
        // Paper: OO 31.9% faster than EE on Conv2.
        let speedup = 1.0 - conv2(Design::Oo) / conv2(Design::Ee);
        assert!((speedup - 0.319).abs() < 0.08, "speedup {speedup}");
    }

    #[test]
    fn table2_has_nine_rows() {
        let rows = table2_breakdown();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| r.breakdown.total().value() > 0.0));
    }

    #[test]
    fn parallel_artifacts_match_serial_exactly() {
        // The determinism contract: a 4-worker sweep reproduces the
        // serial artifact bit for bit.
        let serial = SweepEngine::new(1);
        let parallel = SweepEngine::new(4);
        let nets = [zoo::lenet(), zoo::alexnet()];
        assert_eq!(
            fig4_energy_per_bit_with(&serial, &[2, 4, 8], &[4, 8, 16, 32]),
            fig4_energy_per_bit_with(&parallel, &[2, 4, 8], &[4, 8, 16, 32]),
        );
        assert_eq!(
            fig7_normalized_energy_with(&serial, &nets, &[4, 16]),
            fig7_normalized_energy_with(&parallel, &nets, &[4, 16]),
        );
        assert_eq!(
            fig8_latency_geomean_with(&serial, &nets, &[4, 8, 16]),
            fig8_latency_geomean_with(&parallel, &nets, &[4, 8, 16]),
        );
        assert_eq!(
            table2_breakdown_with(&serial),
            table2_breakdown_with(&parallel),
        );
        let (oe_s, oo_s) = headline_edp_improvements_with(&serial);
        let (oe_p, oo_p) = headline_edp_improvements_with(&parallel);
        assert!(oe_s == oe_p && oo_s == oo_p);
    }

    #[test]
    fn sweeps_reuse_the_engine_cache() {
        let engine = SweepEngine::new(2);
        let nets = [zoo::lenet()];
        let first = fig7_normalized_energy_with(&engine, &nets, &[4, 16]);
        let entries = engine.ctx().derived_entries();
        assert!(entries > 0);
        let second = fig7_normalized_energy_with(&engine, &nets, &[4, 16]);
        assert_eq!(first, second);
        // No new derivations on the second pass.
        assert_eq!(engine.ctx().derived_entries(), entries);
    }
}
