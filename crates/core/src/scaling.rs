//! Scalability analysis: how large can the fabric grow before the optical
//! link budget stops closing?
//!
//! §III-C(ii): "one can scale up by driving the optical signal with
//! higher intensity". That intensity is bounded — by the per-wavelength
//! power an on-chip comb laser can deliver and by nonlinear limits in the
//! waveguide — so the waveguide loss accumulated across a growing tile
//! grid caps the fabric size. This module finds that cap from the link
//! model.

use crate::config::{AcceleratorConfig, Design};
use pixel_photonics::link::PhotonicLink;
use pixel_units::{Length, Power};

/// Per-wavelength laser power limit used as the scaling bound
/// (10 mW: an aggressive but physical on-chip comb line).
#[must_use]
pub fn max_power_per_wavelength() -> Power {
    Power::from_milliwatts(10.0)
}

/// Extra optical loss \[dB\] an OO tile's MZI accumulation chain adds over
/// OE's direct detection path (chain waveguide + stage insertion loss);
/// consistent with Table II's 1.52× laser premium (≈1.8 dB).
pub const OO_CHAIN_EXTRA_LOSS_DB: f64 = 1.8;

/// The MWSR line length for a `tiles`-tile fabric at 1 mm pitch: one
/// edge of the (square) grid.
#[must_use]
pub fn line_length(tiles: usize) -> Length {
    #[allow(clippy::cast_precision_loss)]
    Length::from_millimetres((tiles as f64).sqrt().ceil())
}

/// Required per-wavelength laser power for a fabric of `tiles` tiles.
#[must_use]
pub fn required_power(design: Design, tiles: usize) -> Power {
    let link = PhotonicLink::paper_default(line_length(tiles));
    let mut required = link.required_laser_power().value();
    if design == Design::Oo {
        required *= 10f64.powf(OO_CHAIN_EXTRA_LOSS_DB / 10.0);
    }
    Power::new(required)
}

/// Whether the link budget closes at the given size.
#[must_use]
pub fn budget_closes(design: Design, tiles: usize) -> bool {
    required_power(design, tiles) <= max_power_per_wavelength()
}

/// Largest supported tile count (binary search up to `limit`). Returns
/// `limit` if the budget closes everywhere. EE has no optical budget and
/// always returns `limit`.
#[must_use]
pub fn max_supported_tiles(design: Design, limit: usize) -> usize {
    if design == Design::Ee {
        return limit;
    }
    if !budget_closes(design, 1) {
        return 0;
    }
    let (mut lo, mut hi) = (1usize, limit);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if budget_closes(design, mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// One row of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Fabric size in tiles.
    pub tiles: usize,
    /// Required laser power per wavelength.
    pub required_power: Power,
    /// Whether the budget closes.
    pub feasible: bool,
}

/// Sweeps fabric sizes for a design.
#[must_use]
pub fn scaling_sweep(design: Design, sizes: &[usize]) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&tiles| ScalingPoint {
            tiles,
            required_power: required_power(design, tiles),
            feasible: budget_closes(design, tiles),
        })
        .collect()
}

/// Sanity accessor used by benches: confirms a configuration's fabric
/// fits its design's budget.
#[must_use]
pub fn config_is_feasible(config: &AcceleratorConfig) -> bool {
    config.design == Design::Ee || budget_closes(config.design, config.tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fabric_is_feasible() {
        for d in Design::ALL {
            let cfg = AcceleratorConfig::new(d, 4, 16);
            assert!(config_is_feasible(&cfg), "{d}");
        }
    }

    #[test]
    fn required_power_grows_with_size() {
        let small = required_power(Design::Oe, 4);
        let big = required_power(Design::Oe, 1024);
        assert!(big > small);
    }

    #[test]
    fn oo_pays_the_chain_loss() {
        let oe = required_power(Design::Oe, 64);
        let oo = required_power(Design::Oo, 64);
        let ratio = oo / oe;
        assert!((ratio - 10f64.powf(0.18)).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn max_tiles_ordering() {
        let limit = 100_000;
        let ee = max_supported_tiles(Design::Ee, limit);
        let oe = max_supported_tiles(Design::Oe, limit);
        let oo = max_supported_tiles(Design::Oo, limit);
        assert_eq!(ee, limit, "EE is unconstrained by optics");
        assert!(oe > oo, "OE scales further than OO (no chain loss)");
        assert!(oo > 16, "the evaluated fabric fits comfortably");
    }

    #[test]
    fn binary_search_is_tight() {
        let max = max_supported_tiles(Design::Oo, 1_000_000);
        assert!(budget_closes(Design::Oo, max));
        assert!(!budget_closes(Design::Oo, next_infeasible(max)));
    }

    fn next_infeasible(from: usize) -> usize {
        // line_length is stepwise in √tiles; find the next size whose
        // required power actually exceeds the cap.
        let mut t = from + 1;
        while budget_closes(Design::Oo, t) {
            t += (t / 10).max(1);
        }
        t
    }

    #[test]
    fn sweep_marks_feasibility_transition() {
        let max = max_supported_tiles(Design::Oo, 1_000_000);
        let points = scaling_sweep(Design::Oo, &[16, max, 4 * max]);
        assert!(points[0].feasible);
        assert!(points[1].feasible);
        assert!(!points[2].feasible);
    }
}
