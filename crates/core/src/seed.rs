//! Process-wide seed plumbing for the stochastic artifacts.
//!
//! Every stochastic path in the reproduction — the receiver-noise Monte
//! Carlo ([`crate::robustness`]), the activity audit's operand streams
//! ([`crate::audit`]), and the serving simulator's arrival processes —
//! draws from a [`pixel_units::rng::SplitMix64`] stream. Each path ships
//! a pinned per-artifact seed so default outputs are bitwise stable
//! across runs and machines. The `reproduce --seed <u64>` flag installs
//! a process-wide override here; [`artifact_seed`] then derives one
//! independent stream per artifact by mixing the override with a
//! per-path label, so two artifacts never consume the same stream even
//! under a single CLI seed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel: no override installed (an explicit `--seed` of this exact
/// value is remapped by [`set_default_seed`]; see there).
const UNSET: u64 = u64::MAX;

/// Process-wide seed override; `UNSET` = use pinned per-artifact seeds.
static DEFAULT_SEED: AtomicU64 = AtomicU64::new(UNSET);

/// Installs (or, with `None`, clears) the process-wide seed override —
/// the `--seed` flag of the `reproduce` binary lands here.
///
/// `u64::MAX` is reserved as the internal "unset" sentinel; asking for
/// it is folded to `u64::MAX - 1`, which is indistinguishable in
/// practice (both select a fixed, reproducible stream).
pub fn set_default_seed(seed: Option<u64>) {
    let value = match seed {
        Some(UNSET) => UNSET - 1,
        Some(s) => s,
        None => UNSET,
    };
    DEFAULT_SEED.store(value, Ordering::Relaxed);
}

/// The installed seed override, if any.
#[must_use]
pub fn default_seed() -> Option<u64> {
    match DEFAULT_SEED.load(Ordering::Relaxed) {
        UNSET => None,
        s => Some(s),
    }
}

/// Resolves the seed an artifact should use: its pinned default when no
/// override is installed, otherwise a stream derived from the override
/// and the artifact's label (FNV-1a over the label, SplitMix64-mixed
/// with the override so distinct labels get decorrelated streams).
#[must_use]
pub fn artifact_seed(label: &str, pinned: u64) -> u64 {
    let Some(base) = default_seed() else {
        return pinned;
    };
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = pixel_units::rng::SplitMix64::seed_from_u64(base ^ hash);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The override is process-global, so every interaction lives in one
    // #[test] (the test harness runs #[test] fns concurrently).
    #[test]
    fn pinned_by_default_and_derived_under_override() {
        set_default_seed(None);
        assert_eq!(default_seed(), None);
        assert_eq!(artifact_seed("noise", 42), 42);
        assert_eq!(artifact_seed("audit", 2020), 2020);

        set_default_seed(Some(7));
        assert_eq!(default_seed(), Some(7));
        let noise = artifact_seed("noise", 42);
        let audit = artifact_seed("audit", 2020);
        // Derived streams: stable per label, decorrelated across labels,
        // and independent of the pinned fallback.
        assert_eq!(noise, artifact_seed("noise", 0));
        assert_ne!(noise, audit);
        assert_ne!(noise, 42);

        set_default_seed(Some(8));
        assert_ne!(artifact_seed("noise", 42), noise);

        // The sentinel value is folded, not treated as "unset".
        set_default_seed(Some(u64::MAX));
        assert_eq!(default_seed(), Some(u64::MAX - 1));

        set_default_seed(None);
        assert_eq!(default_seed(), None);
    }
}
