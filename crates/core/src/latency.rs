//! Per-layer latency model.
//!
//! The fabric fires neuron words in rounds: every tile drives its `lanes`
//! wavelengths, so one firing round carries `tiles × lanes` words of
//! `bits_per_lane` bits. The CNN's data stream has a fixed native width
//! (default 16 bits), so sweeping bits/lane trades the number of firing
//! rounds (`∝ 1/b`) against the per-round service time (grows with `b`):
//!
//! * **EE** — the unrolled STR datapath retires ≈3 synapse bits per cycle:
//!   `cycles = A + ⌈0.35·b⌉`. Per-payload-bit latency declines
//!   monotonically with `b` (Fig. 8's EE curve).
//! * **OE/OO** — the optical burst must fit electrical envelopes: at
//!   10 GHz optical / 1 GHz electrical only `Q = 10` pulses "clump" into
//!   one cycle (§V-B2). Each chunk beyond the first costs a receiver
//!   re-synchronization, so `cycles = A + k·⌈b/Q⌉ + R·(⌈b/Q⌉−1)` with
//!   `k = 2` for OE (extra o/e + accumulate handoff) and `k = 1` for OO.
//!   Per-bit latency is U-shaped with its minimum at `b = Q` — exactly
//!   the paper's description of the optical latency response.

use crate::config::AcceleratorConfig;
use crate::overrides::ModelOverrides;
use pixel_dnn::analysis::ComputeCounts;
use pixel_units::Time;

/// Service time of one firing round, in electrical cycles.
#[must_use]
pub fn cycles_per_firing(config: &AcceleratorConfig) -> f64 {
    cycles_per_firing_with(config, &ModelOverrides::calibrated())
}

/// Service time of one firing round under explicit [`ModelOverrides`],
/// dispatching through the design's [`crate::model::DesignModel`]
/// backend.
#[must_use]
pub fn cycles_per_firing_with(config: &AcceleratorConfig, overrides: &ModelOverrides) -> f64 {
    config.design.model().cycles_per_firing(config, overrides)
}

/// Number of firing rounds a layer needs: each scalar multiply consumes
/// one native word, transported in `bits_per_lane`-bit chunks across
/// `tiles × lanes` parallel words per round.
#[must_use]
pub fn firings(config: &AcceleratorConfig, counts: &ComputeCounts) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let words = counts.mul as f64;
    let packing = f64::from(config.native_bits) / config.b();
    #[allow(clippy::cast_precision_loss)]
    let parallel = config.macs_per_firing() as f64;
    (words * packing / parallel).ceil()
}

/// Latency of one layer.
#[must_use]
pub fn layer_latency(config: &AcceleratorConfig, counts: &ComputeCounts) -> Time {
    layer_latency_with(config, counts, &ModelOverrides::calibrated())
}

/// Latency of one layer under explicit [`ModelOverrides`].
#[must_use]
pub fn layer_latency_with(
    config: &AcceleratorConfig,
    counts: &ComputeCounts,
    overrides: &ModelOverrides,
) -> Time {
    layer_latency_from_cycles(config, cycles_per_firing_with(config, overrides), counts)
}

/// Latency of one layer given an already-derived firing-round service
/// time — the shared kernel of the direct path and the memoized
/// [`crate::model::EvalContext`] path.
#[must_use]
pub fn layer_latency_from_cycles(
    config: &AcceleratorConfig,
    cycles_per_firing: f64,
    counts: &ComputeCounts,
) -> Time {
    let mac_cycles = firings(config, counts) * cycles_per_firing;
    // Activation evaluations stream through the (identical) tanh units,
    // one per tile per cycle.
    #[allow(clippy::cast_precision_loss)]
    let act_cycles = (counts.act as f64 / config.tiles as f64).ceil();
    Time::new((mac_cycles + act_cycles) * config.clocks.electrical_period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn counts(mul: u64) -> ComputeCounts {
        ComputeCounts {
            name: "t".into(),
            mvm: mul / 9,
            mul,
            add: mul,
            act: mul / 9,
        }
    }

    fn cfg(design: Design, lanes: usize, bits: u32) -> AcceleratorConfig {
        AcceleratorConfig::new(design, lanes, bits)
    }

    #[test]
    fn fig9_ordering_at_8_lanes_8_bits() {
        // ZFNet Conv2 configuration: OO fastest, then OE, then EE.
        let c = counts(415_000_000);
        let t_ee = layer_latency(&cfg(Design::Ee, 8, 8), &c);
        let t_oe = layer_latency(&cfg(Design::Oe, 8, 8), &c);
        let t_oo = layer_latency(&cfg(Design::Oo, 8, 8), &c);
        assert!(t_oo < t_oe && t_oe < t_ee);
        // Paper: OO is 31.9% faster than EE, 18.6% faster than OE.
        let vs_ee = 1.0 - t_oo / t_ee;
        let vs_oe = 1.0 - t_oo / t_oe;
        assert!((vs_ee - 0.319).abs() < 0.07, "vs EE: {vs_ee}");
        assert!((vs_oe - 0.186).abs() < 0.07, "vs OE: {vs_oe}");
    }

    #[test]
    fn ee_per_bit_latency_declines_monotonically() {
        let c = counts(100_000_000);
        let mut prev = f64::INFINITY;
        for b in [1, 2, 4, 8, 16, 32] {
            let t = layer_latency(&cfg(Design::Ee, 8, b), &c).value();
            assert!(t < prev, "EE latency should fall at b={b}");
            prev = t;
        }
    }

    #[test]
    fn optical_latency_is_u_shaped() {
        // Minimum at the clumping threshold (b = 10), rising after.
        let c = counts(100_000_000);
        let t = |b| layer_latency(&cfg(Design::Oo, 8, b), &c).value();
        assert!(t(10) < t(4), "declining before threshold");
        assert!(t(32) > t(10), "rising after threshold");
        let toe = |b| layer_latency(&cfg(Design::Oe, 8, b), &c).value();
        assert!(toe(32) > toe(10));
    }

    #[test]
    fn cycles_formulas() {
        // b = 8: EE 3+⌈2.8⌉ = 6, OE 3+2 = 5, OO 3+1 = 4.
        assert!((cycles_per_firing(&cfg(Design::Ee, 8, 8)) - 6.0).abs() < 1e-12);
        assert!((cycles_per_firing(&cfg(Design::Oe, 8, 8)) - 5.0).abs() < 1e-12);
        assert!((cycles_per_firing(&cfg(Design::Oo, 8, 8)) - 4.0).abs() < 1e-12);
        // b = 16 (two chunks): OE 3+4+6 = 13, OO 3+2+6 = 11.
        assert!((cycles_per_firing(&cfg(Design::Oe, 8, 16)) - 13.0).abs() < 1e-12);
        assert!((cycles_per_firing(&cfg(Design::Oo, 8, 16)) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn firings_scale_with_work_and_parallelism() {
        let cfg8 = cfg(Design::Ee, 8, 8);
        let f1 = firings(&cfg8, &counts(1_000_000));
        let f2 = firings(&cfg8, &counts(2_000_000));
        assert!((f2 / f1 - 2.0).abs() < 0.01);
        // Twice the bits/lane → half the firings.
        let f_wide = firings(&cfg(Design::Ee, 8, 16), &counts(1_000_000));
        assert!((f1 / f_wide - 2.0).abs() < 0.01);
        // More tiles → fewer firings.
        let f_tiles = firings(&cfg8.with_tiles(32), &counts(1_000_000));
        assert!((f1 / f_tiles - 2.0).abs() < 0.01);
    }

    #[test]
    fn latency_is_positive_and_finite_for_all_designs() {
        let c = counts(1_000);
        for d in Design::ALL {
            for b in 1..=32 {
                let t = layer_latency(&cfg(d, 4, b), &c);
                assert!(t.value() > 0.0 && t.is_finite(), "{d} b={b}");
            }
        }
    }
}
