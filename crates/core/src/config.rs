//! Accelerator configuration: design flavor and the two swept parameters.

use std::fmt;

/// Which of the paper's three accelerator designs to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// All-electrical Stripes baseline.
    Ee,
    /// Hybrid: optical multiply (MRR AND), electrical shift-accumulate.
    Oe,
    /// All-optical: MRR AND plus MZI-chain accumulation.
    Oo,
}

impl Design {
    /// All three designs, in the paper's EE/OE/OO presentation order.
    pub const ALL: [Self; 3] = [Self::Ee, Self::Oe, Self::Oo];

    /// True for the designs with a photonic front end.
    #[must_use]
    pub fn is_optical(self) -> bool {
        !matches!(self, Self::Ee)
    }

    /// The paper's short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Ee => "EE",
            Self::Oe => "OE",
            Self::Oo => "OO",
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Clock domains of the evaluation (§IV: 1 GHz electrical, 10 GHz optical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clocks {
    /// Electrical clock frequency \[Hz\].
    pub electrical_hz: f64,
    /// Optical pulse clock frequency \[Hz\].
    pub optical_hz: f64,
}

impl Clocks {
    /// The paper's clocks: 1 GHz electrical, 10 GHz optical.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            electrical_hz: 1.0e9,
            optical_hz: 10.0e9,
        }
    }

    /// One electrical cycle period \[s\].
    #[must_use]
    pub fn electrical_period(&self) -> f64 {
        1.0 / self.electrical_hz
    }

    /// Optical pulses per electrical cycle (the "clumping" limit of §V-B2).
    #[must_use]
    pub fn pulses_per_electrical_cycle(&self) -> f64 {
        self.optical_hz / self.electrical_hz
    }
}

impl Default for Clocks {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full configuration of one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Design flavor.
    pub design: Design,
    /// Lanes = wavelengths per OMAC (the paper equates the two, §III-A).
    pub lanes: usize,
    /// Bits per lane (= operand precision; swept 1–32 in the evaluation).
    pub bits_per_lane: u32,
    /// Number of OMAC tiles in the fabric.
    pub tiles: usize,
    /// Native word width of the CNN data stream; firings are packed into
    /// `bits_per_lane`-bit chunks of this (used by the latency model).
    pub native_bits: u32,
    /// Clock domains.
    pub clocks: Clocks,
}

impl AcceleratorConfig {
    /// Default tile count of the modelled fabric.
    pub const DEFAULT_TILES: usize = 16;
    /// Default native word width.
    pub const DEFAULT_NATIVE_BITS: u32 = 16;

    /// Creates a configuration with the default fabric (16 tiles, 16-bit
    /// native words, paper clocks).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `bits_per_lane` is outside 1..=32.
    #[must_use]
    pub fn new(design: Design, lanes: usize, bits_per_lane: u32) -> Self {
        assert!(lanes > 0, "at least one lane");
        assert!(
            (1..=32).contains(&bits_per_lane),
            "bits/lane must be 1..=32"
        );
        Self {
            design,
            lanes,
            bits_per_lane,
            tiles: Self::DEFAULT_TILES,
            native_bits: Self::DEFAULT_NATIVE_BITS,
            clocks: Clocks::paper(),
        }
    }

    /// Returns a copy with a different design (for like-for-like sweeps).
    #[must_use]
    pub fn with_design(mut self, design: Design) -> Self {
        self.design = design;
        self
    }

    /// Returns a copy with a different tile count.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    #[must_use]
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        assert!(tiles > 0, "at least one tile");
        self.tiles = tiles;
        self
    }

    /// Parallel scalar multiplies in flight per firing round: every tile
    /// drives its `lanes` wavelengths.
    #[must_use]
    pub fn macs_per_firing(&self) -> u64 {
        (self.tiles * self.lanes) as u64
    }

    /// Bits per lane as `f64` for model arithmetic.
    #[must_use]
    pub fn b(&self) -> f64 {
        f64::from(self.bits_per_lane)
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} lanes, {} bits/lane, {} tiles)",
            self.design, self.lanes, self.bits_per_lane, self.tiles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_labels_and_order() {
        let labels: Vec<_> = Design::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels, ["EE", "OE", "OO"]);
        assert!(!Design::Ee.is_optical());
        assert!(Design::Oe.is_optical());
        assert!(Design::Oo.is_optical());
    }

    #[test]
    fn paper_clocks() {
        let c = Clocks::paper();
        assert!((c.pulses_per_electrical_cycle() - 10.0).abs() < 1e-12);
        assert!((c.electrical_period() - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn config_construction() {
        let cfg = AcceleratorConfig::new(Design::Oe, 4, 16);
        assert_eq!(cfg.macs_per_firing(), 64);
        assert_eq!(cfg.with_tiles(4).macs_per_firing(), 16);
        assert_eq!(cfg.with_design(Design::Oo).design, Design::Oo);
        assert_eq!(cfg.to_string(), "OE (4 lanes, 16 bits/lane, 16 tiles)");
    }

    #[test]
    #[should_panic(expected = "bits/lane")]
    fn rejects_excess_bits() {
        let _ = AcceleratorConfig::new(Design::Ee, 4, 33);
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn rejects_zero_lanes() {
        let _ = AcceleratorConfig::new(Design::Ee, 0, 8);
    }
}
