//! Thermal-drift reliability: what happens when a ring heater fails.
//!
//! §II-A1 motivates the ring heaters: MRRs are thermally sensitive. Here
//! we close the loop functionally — a detuned ring's drop-port
//! transmission (from the Lorentzian spectral model) attenuates the
//! neuron pulse train before the receiver, and we measure at what
//! temperature offset the bit-true OE multiply starts failing. The result
//! is the thermal margin the heater control loop must hold.

use pixel_electronics::converter::SerialConverter;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::signal::PulseTrain;
use pixel_photonics::spectral::RingSpectrum;

/// Receiver decision threshold (fraction of a unit pulse).
pub const RECEIVER_THRESHOLD: f64 = 0.5;

/// An OE-style optical AND whose rings sit `delta_kelvin` away from
/// their heater setpoint.
#[derive(Debug, Clone)]
pub struct DetunedAnd {
    filter: DoubleMrrFilter,
    transmission: f64,
    bits: u32,
}

impl DetunedAnd {
    /// Creates the unit at `bits` precision with a thermal offset.
    #[must_use]
    pub fn new(bits: u32, delta_kelvin: f64) -> Self {
        let nominal = RingSpectrum::paper_default();
        let drifted = nominal.thermally_shifted(delta_kelvin);
        // The drive targets the nominal resonance; the drifted ring only
        // couples this fraction of the pulse power (squared: two rings).
        let single = drifted.drop_transmission(nominal.resonance());
        Self {
            filter: DoubleMrrFilter::default(),
            transmission: single * single,
            bits,
        }
    }

    /// Power transmission of the detuned double filter.
    #[must_use]
    pub fn transmission(&self) -> f64 {
        self.transmission
    }

    /// Performs the optical AND and receiver decision; returns the decoded
    /// word, or `None` if decoding failed outright.
    #[must_use]
    pub fn and_decode(&self, neuron: u64, synapse_bit: bool) -> Option<u64> {
        let train = PulseTrain::from_bits(neuron, self.bits as usize);
        let dropped = self.filter.and(&train, synapse_bit);
        let attenuated = dropped.attenuated(self.transmission);
        // Threshold receiver: a slot counts as 1 above half a pulse.
        let levels: Vec<u32> = attenuated
            .iter()
            .map(|a| u32::from(a > RECEIVER_THRESHOLD))
            .collect();
        SerialConverter::new(self.bits).decode(&levels).ok()
    }

    /// Whether the unit still computes the AND correctly for `neuron`.
    #[must_use]
    pub fn is_correct(&self, neuron: u64, synapse_bit: bool) -> bool {
        let expected = if synapse_bit { neuron } else { 0 };
        self.and_decode(neuron, synapse_bit) == Some(expected)
    }
}

/// The largest thermal offset (in steps of `step_kelvin`) at which the
/// optical AND still decodes every `bits`-bit word correctly.
#[must_use]
pub fn thermal_margin_kelvin(bits: u32, step_kelvin: f64, max_kelvin: f64) -> f64 {
    let mut last_good = 0.0;
    let mut dt = 0.0;
    let limit = (1u64 << bits) - 1;
    while dt <= max_kelvin {
        let unit = DetunedAnd::new(bits, dt);
        // All-ones is the worst case (every slot must clear threshold).
        if unit.is_correct(limit, true) && unit.is_correct(limit, false) {
            last_good = dt;
        } else {
            break;
        }
        dt += step_kelvin;
    }
    last_good
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_setpoint_is_transparent() {
        let unit = DetunedAnd::new(8, 0.0);
        assert!((unit.transmission() - 1.0).abs() < 1e-9);
        assert_eq!(unit.and_decode(0xA5, true), Some(0xA5));
        assert_eq!(unit.and_decode(0xA5, false), Some(0));
    }

    #[test]
    fn transmission_falls_with_drift() {
        let t = |dt: f64| DetunedAnd::new(8, dt).transmission();
        assert!(t(0.5) > t(1.0));
        assert!(t(1.0) > t(2.0));
        assert!(t(5.0) < 0.01, "5 K kills the double filter: {}", t(5.0));
    }

    #[test]
    fn failure_is_graceful_ones_drop_to_zeros() {
        // A badly detuned ring reads all-dark: the AND collapses to 0
        // rather than producing garbage.
        let unit = DetunedAnd::new(8, 10.0);
        assert_eq!(unit.and_decode(0xFF, true), Some(0));
        assert!(!unit.is_correct(0xFF, true));
        assert!(unit.is_correct(0x00, true), "zero words unaffected");
    }

    #[test]
    fn thermal_margin_is_sub_kelvin() {
        // The double filter passes ≥50% per-pulse power only while the
        // squared Lorentzian stays above threshold — a sub-kelvin margin,
        // which is exactly why §II-A1 needs active heaters.
        let margin = thermal_margin_kelvin(8, 0.05, 5.0);
        assert!(margin > 0.0, "some margin exists");
        assert!(margin < 1.5, "margin {margin} K should be tight");
    }

    #[test]
    fn margin_is_precision_independent() {
        // The threshold decision is per-slot, so word width doesn't move it.
        let m4 = thermal_margin_kelvin(4, 0.05, 5.0);
        let m16 = thermal_margin_kelvin(16, 0.05, 5.0);
        assert!((m4 - m16).abs() < 1e-9);
    }
}
