//! Parallel sweep executor for design-space grids.
//!
//! Every figure and table of the evaluation is a map over a list of
//! design points (design × lanes × bits/lane × network). The points are
//! independent and the models pure, so [`SweepEngine::map`] chunks the
//! point list over `std::thread::scope` workers, each evaluating
//! through a shared memoizing [`EvalContext`]. Results come back in
//! input order regardless of worker count, and — because the model is
//! deterministic — a parallel sweep is bitwise-identical to a serial
//! one.
//!
//! Worker count resolution, strongest first: an explicit
//! [`SweepEngine::new`] argument, the process-wide default installed by
//! [`set_default_jobs`] (the `reproduce --jobs` flag), the `PIXEL_JOBS`
//! environment variable, and finally [`std::thread::available_parallelism`].
//!
//! Observability: each worker runs under a `sweep/worker` span,
//! `sweep.points` counts evaluated points, and the shared context
//! counts its `eval.cache_hit` / `eval.cache_miss` traffic.

use crate::model::EvalContext;
use crate::overrides::ModelOverrides;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 = not set.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Installs (or, with `None`, clears) the process-wide default worker
/// count used by [`SweepEngine::default`] — the `--jobs` flag of the
/// `reproduce` binary lands here.
pub fn set_default_jobs(jobs: Option<usize>) {
    DEFAULT_JOBS.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// Parses a `PIXEL_JOBS` value: a positive worker count, or a one-line
/// diagnostic explaining why the value is unusable.
fn parse_jobs_var(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "PIXEL_JOBS={value:?} is zero; need a positive worker count — ignoring it"
        )),
        Ok(jobs) => Ok(jobs),
        Err(_) => Err(format!(
            "PIXEL_JOBS={value:?} is not a positive integer — ignoring it"
        )),
    }
}

/// Resolves the default worker count: [`set_default_jobs`], then the
/// `PIXEL_JOBS` environment variable, then available parallelism.
///
/// A `PIXEL_JOBS` that is set but unusable (not a positive integer) is
/// ignored with a one-line warning on stderr, printed once per process.
#[must_use]
pub fn default_jobs() -> usize {
    let installed = DEFAULT_JOBS.load(Ordering::Relaxed);
    if installed > 0 {
        return installed;
    }
    if let Ok(value) = std::env::var("PIXEL_JOBS") {
        match parse_jobs_var(&value) {
            Ok(jobs) => return jobs,
            Err(warning) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {warning}"));
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A sweep executor: a worker count plus a shared memoizing context.
#[derive(Debug, Default)]
pub struct SweepEngine {
    jobs: usize,
    ctx: EvalContext,
}

impl SweepEngine {
    /// An engine with an explicit worker count (`0` resolves to the
    /// process default) over the calibrated model.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self::with_overrides(jobs, ModelOverrides::calibrated())
    }

    /// An engine with the process-default worker count.
    #[must_use]
    pub fn with_default_jobs() -> Self {
        Self::new(0)
    }

    /// An engine over an explicitly overridden model.
    #[must_use]
    pub fn with_overrides(jobs: usize, overrides: ModelOverrides) -> Self {
        Self {
            jobs,
            ctx: EvalContext::with_overrides(overrides),
        }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            default_jobs()
        }
    }

    /// The shared memoizing context.
    #[must_use]
    pub fn ctx(&self) -> &EvalContext {
        &self.ctx
    }

    /// Maps `f` over `points`, in parallel when more than one worker is
    /// resolved, returning results in input order.
    pub fn map<P, R, F>(&self, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&EvalContext, &P) -> R + Sync,
    {
        let _span = pixel_obs::span("sweep");
        pixel_obs::add("sweep.points", points.len() as u64);
        let jobs = self.jobs().min(points.len()).max(1);
        pixel_obs::gauge("sweep.jobs", {
            #[allow(clippy::cast_precision_loss)]
            let j = jobs as f64;
            j
        });
        if jobs == 1 {
            let _worker = pixel_obs::span("sweep/worker");
            return points.iter().map(|p| f(&self.ctx, p)).collect();
        }

        // Chunk the points contiguously: worker w takes points
        // [w·chunk, (w+1)·chunk) and returns its results as one block,
        // so concatenation restores input order deterministically.
        let chunk = points.len().div_ceil(jobs);
        let ctx = &self.ctx;
        let f = &f;
        let mut results: Vec<R> = Vec::with_capacity(points.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = points
                .chunks(chunk)
                .map(|block| {
                    scope.spawn(move || {
                        let _worker = pixel_obs::span("sweep/worker");
                        block.iter().map(|p| f(ctx, p)).collect::<Vec<R>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                );
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AcceleratorConfig, Design};

    fn grid() -> Vec<(Design, usize, u32)> {
        let mut points = Vec::new();
        for design in Design::ALL {
            for lanes in [2usize, 4, 8] {
                for bits in [4u32, 8, 16, 32] {
                    points.push((design, lanes, bits));
                }
            }
        }
        points
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let points: Vec<usize> = (0..101).collect();
        let engine = SweepEngine::new(4);
        let out = engine.map(&points, |_, &p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bitwise_identical() {
        let points = grid();
        let eval = |ctx: &EvalContext, &(design, lanes, bits): &(Design, usize, u32)| {
            let cfg = AcceleratorConfig::new(design, lanes, bits);
            let ops = ctx.operation_energies(&cfg);
            (
                ops.mul.value(),
                ops.add.value(),
                ctx.cycles_per_firing(&cfg),
            )
        };
        let serial = SweepEngine::new(1).map(&points, eval);
        for jobs in [2usize, 4, 7] {
            let parallel = SweepEngine::new(jobs).map(&points, eval);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_shares_one_context_across_workers() {
        let points = grid();
        let engine = SweepEngine::new(4);
        let _ = engine.map(&points, |ctx, &(design, lanes, bits)| {
            ctx.operation_energies(&AcceleratorConfig::new(design, lanes, bits))
        });
        // 3 designs × 3 lanes × 4 bits = 36 distinct configurations.
        assert_eq!(engine.ctx().derived_entries(), 36);
    }

    #[test]
    fn jobs_resolution_and_default_override() {
        assert!(default_jobs() >= 1);
        set_default_jobs(Some(3));
        assert_eq!(default_jobs(), 3);
        assert_eq!(SweepEngine::with_default_jobs().jobs(), 3);
        assert_eq!(SweepEngine::new(5).jobs(), 5);
        set_default_jobs(None);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn jobs_var_parsing_accepts_counts_and_flags_garbage() {
        assert_eq!(parse_jobs_var("4"), Ok(4));
        assert_eq!(parse_jobs_var(" 16 "), Ok(16));
        for bad in ["0", "-2", "four", "", "3.5"] {
            let err = parse_jobs_var(bad).unwrap_err();
            assert!(err.contains("PIXEL_JOBS"), "{bad:?}: {err}");
            assert!(err.contains("ignoring"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn empty_and_single_point_sweeps() {
        let engine = SweepEngine::new(8);
        let empty: Vec<u32> = engine.map(&[], |_, &p: &u32| p);
        assert!(empty.is_empty());
        assert_eq!(engine.map(&[7u32], |_, &p| p + 1), vec![8]);
    }
}
