//! Functional (bit-true) OMAC units.
//!
//! Each of the paper's three designs is implemented as an executable
//! multiply-accumulate unit built from the device simulations of the
//! substrate crates:
//!
//! * [`ee::EeMac`] — the Stripes bit-serial electrical baseline
//!   (`pixel_electronics::stripes`),
//! * [`oe::OeMac`] — optical AND through double-MRR filters, serial o/e
//!   conversion, electrical shift-accumulate,
//! * [`oo::OoMac`] — optical AND plus MZI-chain optical accumulation and
//!   comparator-ladder amplitude conversion.
//!
//! All three implement [`pixel_dnn::inference::MacEngine`], so whole CNNs
//! can be executed through them and compared element-for-element against
//! plain integer inference — the functional verification the paper's
//! analytic evaluation takes on trust.

pub mod activity;
pub mod ee;
pub mod oe;
pub mod oo;

pub use activity::ActivityCounter;
pub use ee::EeMac;
pub use oe::OeMac;
pub use oo::OoMac;

use crate::config::AcceleratorConfig;
use pixel_dnn::inference::MacEngine;

/// A functional MAC engine that tallies its device activity.
///
/// All three bit-true OMACs implement this; the
/// [`crate::model::DesignModel`] backends hand them out so the audit
/// and validation layers can run *any* design's engine and read its
/// counted activity without naming the concrete type.
pub trait ActivityMac: MacEngine {
    /// The engine's device-activity tallies.
    fn activity(&self) -> &ActivityCounter;
}

impl ActivityMac for EeMac {
    fn activity(&self) -> &ActivityCounter {
        EeMac::activity(self)
    }
}

impl ActivityMac for OeMac {
    fn activity(&self) -> &ActivityCounter {
        OeMac::activity(self)
    }
}

impl ActivityMac for OoMac {
    fn activity(&self) -> &ActivityCounter {
        OoMac::activity(self)
    }
}

/// Builds the functional MAC engine matching a configuration, through
/// the configuration's [`crate::model::DesignModel`] backend.
///
/// # Panics
///
/// Panics if the configuration's precision exceeds what the functional
/// units support (operands up to 16 bits, so products fit the optical
/// amplitude range).
#[must_use]
pub fn engine_for(config: &AcceleratorConfig) -> Box<dyn MacEngine> {
    config.design.model().functional_engine(config)
}

/// Splits an arbitrary-length operand pair into `lanes`-wide chunks,
/// zero-padding the tail — the scheduling every OMAC applies when a
/// window is larger than its lane count.
pub(crate) fn lane_chunks<'a>(
    neurons: &'a [u64],
    synapses: &'a [u64],
    lanes: usize,
) -> impl Iterator<Item = (Vec<u64>, Vec<u64>)> + 'a {
    assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
    neurons
        .chunks(lanes)
        .zip(synapses.chunks(lanes))
        .map(move |(n, s)| {
            let mut nv = n.to_vec();
            let mut sv = s.to_vec();
            nv.resize(lanes, 0);
            sv.resize(lanes, 0);
            (nv, sv)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::inference::{DirectMac, MacEngine};
    use pixel_units::rng::SplitMix64;

    #[test]
    fn lane_chunks_pads_tail() {
        let n = [1u64, 2, 3, 4, 5];
        let s = [6u64, 7, 8, 9, 10];
        let chunks: Vec<_> = lane_chunks(&n, &s, 4).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, vec![1, 2, 3, 4]);
        assert_eq!(chunks[1].0, vec![5, 0, 0, 0]);
        assert_eq!(chunks[1].1, vec![10, 0, 0, 0]);
    }

    #[test]
    fn engine_factory_dispatches_by_design() {
        for d in Design::ALL {
            let cfg = AcceleratorConfig::new(d, 4, 8);
            let engine = engine_for(&cfg);
            assert_eq!(engine.inner_product(&[3, 5], &[7, 11]), 21 + 55);
        }
    }

    /// The cross-design equivalence theorem: every functional OMAC
    /// computes exactly the integer inner product, on random windows of
    /// every shape.
    #[test]
    fn all_designs_agree_with_direct_reference() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..50 {
            let lanes = rng.range_usize(1, 8);
            let bits = rng.range_u32(1, 12);
            let len = rng.range_usize(1, 40);
            let limit = (1u64 << bits) - 1;
            let neurons: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let expected = DirectMac.inner_product(&neurons, &synapses);

            for d in Design::ALL {
                let cfg = AcceleratorConfig::new(d, lanes, bits);
                let engine = engine_for(&cfg);
                assert_eq!(
                    engine.inner_product(&neurons, &synapses),
                    expected,
                    "{d} lanes={lanes} bits={bits} len={len}"
                );
            }
        }
    }
}
