//! Functional (bit-true) OMAC units.
//!
//! Each of the paper's three designs is implemented as an executable
//! multiply-accumulate unit built from the device simulations of the
//! substrate crates:
//!
//! * [`ee::EeMac`] — the Stripes bit-serial electrical baseline
//!   (`pixel_electronics::stripes`),
//! * [`oe::OeMac`] — optical AND through double-MRR filters, serial o/e
//!   conversion, electrical shift-accumulate,
//! * [`oo::OoMac`] — optical AND plus MZI-chain optical accumulation and
//!   comparator-ladder amplitude conversion.
//!
//! All three implement [`pixel_dnn::inference::MacEngine`], so whole CNNs
//! can be executed through them and compared element-for-element against
//! plain integer inference — the functional verification the paper's
//! analytic evaluation takes on trust.

pub mod activity;
pub mod ee;
pub mod oe;
pub mod oo;

pub use activity::ActivityCounter;
pub use ee::EeMac;
pub use oe::OeMac;
pub use oo::OoMac;

use crate::config::AcceleratorConfig;
use pixel_dnn::inference::MacEngine;

/// A functional MAC engine that tallies its device activity.
///
/// All three bit-true OMACs implement this; the
/// [`crate::model::DesignModel`] backends hand them out so the audit
/// and validation layers can run *any* design's engine and read its
/// counted activity without naming the concrete type.
pub trait ActivityMac: MacEngine {
    /// The engine's device-activity tallies.
    fn activity(&self) -> &ActivityCounter;
}

impl ActivityMac for EeMac {
    fn activity(&self) -> &ActivityCounter {
        EeMac::activity(self)
    }
}

impl ActivityMac for OeMac {
    fn activity(&self) -> &ActivityCounter {
        OeMac::activity(self)
    }
}

impl ActivityMac for OoMac {
    fn activity(&self) -> &ActivityCounter {
        OoMac::activity(self)
    }
}

/// Builds the functional MAC engine matching a configuration, through
/// the configuration's [`crate::model::DesignModel`] backend.
///
/// # Panics
///
/// Panics if the configuration's precision exceeds what the functional
/// units support (operands up to 16 bits, so products fit the optical
/// amplitude range).
#[must_use]
pub fn engine_for(config: &AcceleratorConfig) -> Box<dyn MacEngine> {
    config.design.model().functional_engine(config)
}

/// Copies the `lanes`-wide chunk starting at `start` from both operand
/// slices into the scratch buffers, zero-padding the tail — the
/// scheduling every OMAC applies when a window is larger than its lane
/// count, in a form that reuses per-engine scratch instead of
/// materializing two fresh vectors per chunk.
pub(crate) fn fill_lane_chunk(
    neurons: &[u64],
    synapses: &[u64],
    start: usize,
    lanes: usize,
    nbuf: &mut Vec<u64>,
    sbuf: &mut Vec<u64>,
) {
    debug_assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
    let end = (start + lanes).min(neurons.len());
    nbuf.clear();
    nbuf.extend_from_slice(&neurons[start..end]);
    nbuf.resize(lanes, 0);
    sbuf.clear();
    sbuf.extend_from_slice(&synapses[start..end]);
    sbuf.resize(lanes, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::inference::{DirectMac, MacEngine};
    use pixel_units::rng::SplitMix64;

    #[test]
    fn fill_lane_chunk_pads_tail() {
        let n = [1u64, 2, 3, 4, 5];
        let s = [6u64, 7, 8, 9, 10];
        let (mut nbuf, mut sbuf) = (vec![99u64; 2], Vec::new());
        fill_lane_chunk(&n, &s, 0, 4, &mut nbuf, &mut sbuf);
        assert_eq!(nbuf, vec![1, 2, 3, 4]);
        assert_eq!(sbuf, vec![6, 7, 8, 9]);
        fill_lane_chunk(&n, &s, 4, 4, &mut nbuf, &mut sbuf);
        assert_eq!(nbuf, vec![5, 0, 0, 0]);
        assert_eq!(sbuf, vec![10, 0, 0, 0]);
    }

    #[test]
    fn engine_factory_dispatches_by_design() {
        for d in Design::ALL {
            let cfg = AcceleratorConfig::new(d, 4, 8);
            let engine = engine_for(&cfg);
            assert_eq!(engine.inner_product(&[3, 5], &[7, 11]), 21 + 55);
        }
    }

    /// The cross-design equivalence theorem: every functional OMAC
    /// computes exactly the integer inner product, on random windows of
    /// every shape.
    #[test]
    fn all_designs_agree_with_direct_reference() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..50 {
            let lanes = rng.range_usize(1, 8);
            let bits = rng.range_u32(1, 12);
            let len = rng.range_usize(1, 40);
            let limit = (1u64 << bits) - 1;
            let neurons: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let expected = DirectMac.inner_product(&neurons, &synapses);

            for d in Design::ALL {
                let cfg = AcceleratorConfig::new(d, lanes, bits);
                let engine = engine_for(&cfg);
                assert_eq!(
                    engine.inner_product(&neurons, &synapses),
                    expected,
                    "{d} lanes={lanes} bits={bits} len={len}"
                );
            }
        }
    }
}
