//! Functional (bit-true) OMAC units.
//!
//! Each of the paper's three designs is implemented as an executable
//! multiply-accumulate unit built from the device simulations of the
//! substrate crates:
//!
//! * [`ee::EeMac`] — the Stripes bit-serial electrical baseline
//!   (`pixel_electronics::stripes`),
//! * [`oe::OeMac`] — optical AND through double-MRR filters, serial o/e
//!   conversion, electrical shift-accumulate,
//! * [`oo::OoMac`] — optical AND plus MZI-chain optical accumulation and
//!   comparator-ladder amplitude conversion.
//!
//! All three implement [`pixel_dnn::inference::MacEngine`], so whole CNNs
//! can be executed through them and compared element-for-element against
//! plain integer inference — the functional verification the paper's
//! analytic evaluation takes on trust.

pub mod activity;
pub mod bitplane;
pub mod ee;
pub mod oe;
pub mod oo;

pub use activity::ActivityCounter;
pub use bitplane::{BitplaneBlock, PlaneAccumulator, WindowGroup, PLANE_WINDOWS};
pub use ee::EeMac;
pub use oe::OeMac;
pub use oo::OoMac;

use crate::config::{AcceleratorConfig, Design};
use pixel_dnn::inference::MacEngine;

/// A functional MAC engine that tallies its device activity.
///
/// All three bit-true OMACs implement this; the
/// [`crate::model::DesignModel`] backends hand them out so the audit
/// and validation layers can run *any* design's engine and read its
/// counted activity without naming the concrete type.
pub trait ActivityMac: MacEngine {
    /// The engine's device-activity tallies.
    fn activity(&self) -> &ActivityCounter;
}

impl ActivityMac for EeMac {
    fn activity(&self) -> &ActivityCounter {
        EeMac::activity(self)
    }
}

impl ActivityMac for OeMac {
    fn activity(&self) -> &ActivityCounter {
        OeMac::activity(self)
    }
}

impl ActivityMac for OoMac {
    fn activity(&self) -> &ActivityCounter {
        OoMac::activity(self)
    }
}

/// An [`ActivityMac`] that can also advance 64 windows per word-level
/// operation through the bit-plane batched dataflow.
///
/// The arithmetic is one shared kernel ([`bitplane::plane_inner_product`])
/// because all three designs compute the same exact integer inner
/// product; what each engine owns is the *accounting* — the batched call
/// must advance every [`ActivityCounter`] tally by exactly the amount
/// running [`MacEngine::inner_product`] once per packed window would
/// have, zero-padded lane tails included.
pub trait PlaneMac: ActivityMac {
    /// Computes all of `group`'s windows against one synapse word per
    /// window position, writing `group.len()` sums into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `synapses.len()` differs from the group's window size
    /// or the group's precision differs from the engine's.
    fn inner_product_planes(&self, group: &WindowGroup, synapses: &[u64], out: &mut Vec<u64>);
}

/// Builds the plane-capable functional engine for a configuration.
///
/// Dispatches on [`Design`] directly (sanctioned inside `omac/`): the
/// [`crate::model::DesignModel`] backends hand out `dyn MacEngine`, and
/// object-safety prevents widening that return type without breaking
/// every backend, so the batched fabric resolves its concrete engines
/// here.
///
/// # Panics
///
/// Panics if the configuration's precision exceeds what the functional
/// units support (operands up to 16 bits).
#[must_use]
pub fn plane_engine_for(config: &AcceleratorConfig) -> Box<dyn PlaneMac> {
    let (lanes, bits) = (config.lanes, config.bits_per_lane);
    match config.design {
        Design::Ee => Box::new(EeMac::new(lanes, bits)),
        Design::Oe => Box::new(OeMac::new(lanes, bits)),
        Design::Oo => Box::new(OoMac::new(lanes, bits)),
    }
}

/// Builds the functional MAC engine matching a configuration, through
/// the configuration's [`crate::model::DesignModel`] backend.
///
/// # Panics
///
/// Panics if the configuration's precision exceeds what the functional
/// units support (operands up to 16 bits, so products fit the optical
/// amplitude range).
#[must_use]
pub fn engine_for(config: &AcceleratorConfig) -> Box<dyn MacEngine> {
    config.design.model().functional_engine(config)
}

/// Copies the `lanes`-wide chunk starting at `start` from both operand
/// slices into the scratch buffers, zero-padding the tail — the
/// scheduling every OMAC applies when a window is larger than its lane
/// count, in a form that reuses per-engine scratch instead of
/// materializing two fresh vectors per chunk.
pub(crate) fn fill_lane_chunk(
    neurons: &[u64],
    synapses: &[u64],
    start: usize,
    lanes: usize,
    nbuf: &mut Vec<u64>,
    sbuf: &mut Vec<u64>,
) {
    debug_assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
    let end = (start + lanes).min(neurons.len());
    nbuf.clear();
    nbuf.extend_from_slice(&neurons[start..end]);
    nbuf.resize(lanes, 0);
    sbuf.clear();
    sbuf.extend_from_slice(&synapses[start..end]);
    sbuf.resize(lanes, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::inference::{DirectMac, MacEngine};
    use pixel_units::rng::SplitMix64;

    #[test]
    fn fill_lane_chunk_pads_tail() {
        let n = [1u64, 2, 3, 4, 5];
        let s = [6u64, 7, 8, 9, 10];
        let (mut nbuf, mut sbuf) = (vec![99u64; 2], Vec::new());
        fill_lane_chunk(&n, &s, 0, 4, &mut nbuf, &mut sbuf);
        assert_eq!(nbuf, vec![1, 2, 3, 4]);
        assert_eq!(sbuf, vec![6, 7, 8, 9]);
        fill_lane_chunk(&n, &s, 4, 4, &mut nbuf, &mut sbuf);
        assert_eq!(nbuf, vec![5, 0, 0, 0]);
        assert_eq!(sbuf, vec![10, 0, 0, 0]);
    }

    #[test]
    fn engine_factory_dispatches_by_design() {
        for d in Design::ALL {
            let cfg = AcceleratorConfig::new(d, 4, 8);
            let engine = engine_for(&cfg);
            assert_eq!(engine.inner_product(&[3, 5], &[7, 11]), 21 + 55);
        }
    }

    /// The plane-path theorem: for every design, the bit-plane batched
    /// inner product is bitwise identical to running the scalar engine
    /// once per window — and so is every device-activity tally,
    /// zero-padded lane tails included.
    #[test]
    fn plane_path_matches_scalar_outputs_and_activity() {
        let mut rng = SplitMix64::seed_from_u64(0x9A9E);
        let mut got = Vec::new();
        for round in 0..24 {
            let lanes = rng.range_usize(1, 6);
            let bits = rng.range_u32(1, 8);
            let window = rng.range_usize(1, 16);
            // Cover both a full 64-window group and ragged remainders.
            let len = if round % 4 == 0 {
                64
            } else {
                rng.range_usize(1, 63)
            };
            let limit = (1u64 << bits) - 1;
            let rows: Vec<u64> = (0..window * len).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..window).map(|_| rng.range_u64(0, limit)).collect();
            let group = WindowGroup::pack(&rows, window, len, bits);
            for d in Design::ALL {
                let cfg = AcceleratorConfig::new(d, lanes, bits);
                let scalar = plane_engine_for(&cfg);
                let batched = plane_engine_for(&cfg);
                let expected: Vec<u64> = (0..len)
                    .map(|w| scalar.inner_product(&rows[w * window..(w + 1) * window], &synapses))
                    .collect();
                batched.inner_product_planes(&group, &synapses, &mut got);
                let label = format!("{d} lanes={lanes} bits={bits} window={window} len={len}");
                assert_eq!(got, expected, "{label}");
                let (a, b) = (scalar.activity(), batched.activity());
                assert_eq!(a.mrr_slots(), b.mrr_slots(), "mrr {label}");
                assert_eq!(a.mzi_slots(), b.mzi_slots(), "mzi {label}");
                assert_eq!(a.cla_ops(), b.cla_ops(), "cla {label}");
                assert_eq!(
                    a.comparator_decisions(),
                    b.comparator_decisions(),
                    "comparator {label}"
                );
                assert_eq!(a.oe_conversions(), b.oe_conversions(), "o/e {label}");
                assert_eq!(a.gated_slots(), b.gated_slots(), "slots {label}");
                assert_eq!(a.lit_slots(), b.lit_slots(), "lit {label}");
                assert_eq!(a.bit_toggles(), b.bit_toggles(), "toggles {label}");
                assert_eq!(a.toggle_pairs(), b.toggle_pairs(), "pairs {label}");
            }
        }
    }

    /// The cross-design equivalence theorem: every functional OMAC
    /// computes exactly the integer inner product, on random windows of
    /// every shape.
    #[test]
    fn all_designs_agree_with_direct_reference() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..50 {
            let lanes = rng.range_usize(1, 8);
            let bits = rng.range_u32(1, 12);
            let len = rng.range_usize(1, 40);
            let limit = (1u64 << bits) - 1;
            let neurons: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let expected = DirectMac.inner_product(&neurons, &synapses);

            for d in Design::ALL {
                let cfg = AcceleratorConfig::new(d, lanes, bits);
                let engine = engine_for(&cfg);
                assert_eq!(
                    engine.inner_product(&neurons, &synapses),
                    expected,
                    "{d} lanes={lanes} bits={bits} len={len}"
                );
            }
        }
    }
}
