//! The hybrid optical-electrical (OE) functional MAC.
//!
//! Paper §III-A: neurons arrive as optical pulse trains on WDM
//! wavelengths; each synapse *bit* drives the tuned double-MRR filters of
//! a synapse lane, ANDing the whole neuron word against that bit. The
//! gated train crosses the o/e converter (design 1: photodiode + shift
//! register) and the electrical processing unit shift-accumulates the
//! partial products, exactly as Stripes does — `p` cycles per `p`-bit
//! synapse.

use crate::omac::activity::{bit_stream_activity, ActivityCounter, StreamActivity};
use crate::omac::bitplane::{
    gated_stream_totals, plane_inner_product, PlaneAccumulator, WindowGroup,
};
use crate::omac::{fill_lane_chunk, PlaneMac};
use pixel_dnn::inference::MacEngine;
use pixel_electronics::cla::Cla;
use pixel_electronics::converter::SerialConverter;
use pixel_electronics::shifter::BarrelShifter;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::signal::PulseTrain;
use std::cell::RefCell;

/// Reused per-window buffers: operand chunks, launched lane trains, the
/// gated drop-port train, and the quantized-level staging for the o/e
/// converter.
#[derive(Debug, Default)]
struct OeScratch {
    nbuf: Vec<u64>,
    sbuf: Vec<u64>,
    trains: Vec<PulseTrain>,
    gated: PulseTrain,
    levels: Vec<u32>,
}

/// Bit-true OE MAC unit.
#[derive(Debug)]
pub struct OeMac {
    lanes: usize,
    bits: u32,
    filter: DoubleMrrFilter,
    converter: SerialConverter,
    shifter: BarrelShifter,
    accumulator: Cla,
    activity: ActivityCounter,
    scratch: RefCell<OeScratch>,
}

impl OeMac {
    /// Creates an OE MAC with `lanes` wavelengths at `bits` bits/lane.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 16.
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "OE MAC supports 1..=16 bits");
        assert!(lanes > 0, "at least one lane");
        Self {
            lanes,
            bits,
            filter: DoubleMrrFilter::default(),
            converter: SerialConverter::new(bits),
            shifter: BarrelShifter::new(64),
            accumulator: Cla::new(64),
            activity: ActivityCounter::new(),
            scratch: RefCell::new(OeScratch::default()),
        }
    }

    /// Device-activity tallies accumulated by this unit's executions.
    #[must_use]
    pub fn activity(&self) -> &ActivityCounter {
        &self.activity
    }

    /// Number of wavelengths (= lanes).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bits per lane.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// One Stripes cycle for one lane: optically AND the neuron train
    /// against synapse bit `bit_index`, convert, and return the partial
    /// product already shifted into position.
    #[cfg(test)]
    fn partial(&self, neuron: &PulseTrain, synapse: u64, bit_index: u32) -> u64 {
        let mut scratch = self.scratch.borrow_mut();
        let OeScratch { gated, levels, .. } = &mut *scratch;
        self.partial_with(neuron, synapse, bit_index, gated, levels)
    }

    /// [`Self::partial`] against caller-held scratch, so the window loop
    /// can run it without re-borrowing (or re-allocating) per cycle.
    fn partial_with(
        &self,
        neuron: &PulseTrain,
        synapse: u64,
        bit_index: u32,
        gated: &mut PulseTrain,
        levels: &mut Vec<u32>,
    ) -> u64 {
        let gate = (synapse >> bit_index) & 1 == 1;
        self.filter.and_into(neuron, gate, gated);
        self.activity.add_mrr_slots(gated.len() as u64);
        self.activity
            .add_stream(&bit_stream_activity(gated.iter().map(|a| a > 0.5)));
        gated.quantized_levels_into(levels);
        let word = self
            .converter
            .decode(levels)
            // lint:allow(P002) a noiseless binary optical train decodes losslessly
            .expect("binary optical train decodes losslessly");
        self.activity.add_oe_conversion();
        self.shifter.shift_left(word, bit_index)
    }
}

impl MacEngine for OeMac {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        let before_mrr = self.activity.mrr_slots();
        let before_toggles = self.activity.bit_toggles();
        let before_conversions = self.activity.oe_conversions();
        assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
        let mut scratch = self.scratch.borrow_mut();
        let OeScratch {
            nbuf,
            sbuf,
            trains,
            gated,
            levels,
        } = &mut *scratch;
        let mut acc = 0u64;
        let mut start = 0;
        while start < neurons.len() {
            fill_lane_chunk(neurons, synapses, start, self.lanes, nbuf, sbuf);
            // Fire all lanes' neuron words as optical trains (one WDM λ each).
            if trains.len() != self.lanes {
                trains.resize_with(self.lanes, PulseTrain::new);
            }
            for (train, &n) in trains.iter_mut().zip(nbuf.iter()) {
                train.write_bits(n, self.bits as usize);
            }
            // p serial cycles over the synapse bits, as in STR.
            for bit in 0..self.bits {
                for (train, &synapse) in trains.iter().zip(sbuf.iter()) {
                    let p = self.partial_with(train, synapse, bit, gated, levels);
                    let (sum, carry) = self.accumulator.add(acc, p, false);
                    self.activity.add_cla_op();
                    debug_assert!(!carry, "window accumulator overflow");
                    acc = sum;
                }
            }
            start += self.lanes;
        }
        if pixel_obs::enabled() {
            pixel_obs::add("omac.oe.mac_ops", neurons.len() as u64);
            pixel_obs::add("omac.oe.mrr_slots", self.activity.mrr_slots() - before_mrr);
            pixel_obs::add(
                "omac.oe.bit_toggles",
                self.activity.bit_toggles() - before_toggles,
            );
            pixel_obs::add(
                "omac.oe.oe_conversions",
                self.activity.oe_conversions() - before_conversions,
            );
        }
        acc
    }

    fn name(&self) -> &str {
        "OE (MRR multiply, electrical accumulate)"
    }
}

impl PlaneMac for OeMac {
    fn inner_product_planes(&self, group: &WindowGroup, synapses: &[u64], out: &mut Vec<u64>) {
        assert_eq!(
            group.bits(),
            self.bits,
            "group precision must match the engine"
        );
        let mut acc = PlaneAccumulator::new();
        plane_inner_product(group, synapses, &mut acc, out);

        // Accounting parity with the scalar path. Per window it runs
        // `bits` serial cycles over every lane position of every chunk
        // (zero-padded tail included): each cycle gates one `bits`-slot
        // neuron train through the MRRs, converts, and CLA-accumulates.
        // A set synapse bit streams the neuron word; a clear one streams
        // darkness — so lit/toggle totals are the popcount-gated plane
        // sums of `gated_stream_totals`.
        let len = group.len() as u64;
        let bits = u64::from(self.bits);
        let chunks = synapses.len().div_ceil(self.lanes) as u64;
        let positions = chunks * self.lanes as u64;
        let partials = len * positions * bits;
        let (lit, toggles) = gated_stream_totals(group, synapses);
        self.activity.add_mrr_slots(partials * bits);
        self.activity.add_stream(&StreamActivity {
            slots: partials * bits,
            lit,
            toggles,
            pairs: partials * (bits - 1),
        });
        self.activity.add_oe_conversions(partials);
        self.activity.add_cla_ops(partials);
        if pixel_obs::enabled() {
            pixel_obs::add("omac.oe.mac_ops", synapses.len() as u64 * len);
            pixel_obs::add("omac.oe.mrr_slots", partials * bits);
            pixel_obs::add("omac.oe.bit_toggles", toggles);
            pixel_obs::add("omac.oe.oe_conversions", partials);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_dnn::inference::DirectMac;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn single_multiply() {
        let mac = OeMac::new(1, 4);
        assert_eq!(mac.inner_product(&[9], &[13]), 117);
        assert_eq!(mac.inner_product(&[0], &[13]), 0);
        assert_eq!(mac.inner_product(&[9], &[0]), 0);
    }

    #[test]
    fn paper_cycle1_example() {
        // §III-A: λ0 carries 0010₂ with the MRR off → 0000₂ reaches the EP.
        let mac = OeMac::new(4, 4);
        let train = PulseTrain::from_bits(0b0010, 4);
        assert_eq!(mac.partial(&train, 0b0000, 0), 0);
        // With the synapse LSB on, the word passes unshifted.
        assert_eq!(mac.partial(&train, 0b0001, 0), 0b0010);
        // Synapse bit 2 on → shifted left 2.
        assert_eq!(mac.partial(&train, 0b0100, 2), 0b1000);
    }

    #[test]
    fn window_matches_reference() {
        let mac = OeMac::new(4, 4);
        let n = [2u64, 4, 6, 9];
        let s = [6u64, 1, 2, 3];
        assert_eq!(mac.inner_product(&n, &s), DirectMac.inner_product(&n, &s));
    }

    #[test]
    fn matches_direct() {
        let mut rng = SplitMix64::seed_from_u64(0x0E_AC);
        for _ in 0..128 {
            let lanes = rng.range_usize(1, 6);
            let bits = rng.range_u32(1, 10);
            let len = rng.range_usize(1, 24);
            let limit = (1u64 << bits) - 1;
            let n: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let s: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let mac = OeMac::new(lanes, bits);
            assert_eq!(
                mac.inner_product(&n, &s),
                DirectMac.inner_product(&n, &s),
                "lanes={lanes} bits={bits} len={len}"
            );
        }
    }
}
