//! Device-activity accounting for the functional OMACs.
//!
//! The analytic energy model charges an optical multiply `2·K_MRR·b²`
//! because the dataflow streams a `b`-bit word for `b` synapse-bit cycles
//! through a double-ring filter. Rather than trusting that arithmetic,
//! the functional engines can *count*: [`ActivityCounter`] tallies every
//! device event the bit-true execution performs, and the tests (plus
//! `tests/` integration checks) assert the counted activity matches the
//! closed forms the energy model multiplies by — closing the loop between
//! "what the simulation did" and "what the model charges".

use std::cell::Cell;

/// Tallies of device events during functional MAC execution.
#[derive(Debug, Default)]
pub struct ActivityCounter {
    mrr_slots: Cell<u64>,
    mzi_slots: Cell<u64>,
    cla_ops: Cell<u64>,
    comparator_decisions: Cell<u64>,
    oe_conversions: Cell<u64>,
}

impl ActivityCounter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `slots` bit-slots streamed through a double-MRR filter.
    pub fn add_mrr_slots(&self, slots: u64) {
        self.mrr_slots.set(self.mrr_slots.get() + slots);
    }

    /// Records `slots` bit-slots routed through MZI accumulator stages.
    pub fn add_mzi_slots(&self, slots: u64) {
        self.mzi_slots.set(self.mzi_slots.get() + slots);
    }

    /// Records one carry-lookahead addition.
    pub fn add_cla_op(&self) {
        self.cla_ops.set(self.cla_ops.get() + 1);
    }

    /// Records `n` comparator-ladder slot decisions.
    pub fn add_comparator_decisions(&self, n: u64) {
        self.comparator_decisions
            .set(self.comparator_decisions.get() + n);
    }

    /// Records one optical-to-electrical word conversion.
    pub fn add_oe_conversion(&self) {
        self.oe_conversions.set(self.oe_conversions.get() + 1);
    }

    /// Bit-slots through MRR filters so far.
    #[must_use]
    pub fn mrr_slots(&self) -> u64 {
        self.mrr_slots.get()
    }

    /// Bit-slots through MZI stages so far.
    #[must_use]
    pub fn mzi_slots(&self) -> u64 {
        self.mzi_slots.get()
    }

    /// CLA additions so far.
    #[must_use]
    pub fn cla_ops(&self) -> u64 {
        self.cla_ops.get()
    }

    /// Comparator decisions so far.
    #[must_use]
    pub fn comparator_decisions(&self) -> u64 {
        self.comparator_decisions.get()
    }

    /// o/e word conversions so far.
    #[must_use]
    pub fn oe_conversions(&self) -> u64 {
        self.oe_conversions.get()
    }

    /// Resets all tallies.
    pub fn reset(&self) {
        self.mrr_slots.set(0);
        self.mzi_slots.set(0);
        self.cla_ops.set(0);
        self.comparator_decisions.set(0);
        self.oe_conversions.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = ActivityCounter::new();
        c.add_mrr_slots(8);
        c.add_mrr_slots(8);
        c.add_mzi_slots(3);
        c.add_cla_op();
        c.add_comparator_decisions(5);
        c.add_oe_conversion();
        assert_eq!(c.mrr_slots(), 16);
        assert_eq!(c.mzi_slots(), 3);
        assert_eq!(c.cla_ops(), 1);
        assert_eq!(c.comparator_decisions(), 5);
        assert_eq!(c.oe_conversions(), 1);
        c.reset();
        assert_eq!(c.mrr_slots(), 0);
        assert_eq!(c.cla_ops(), 0);
    }
}
