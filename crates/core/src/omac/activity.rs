//! Device-activity accounting for the functional OMACs.
//!
//! The analytic energy model charges an optical multiply `2·K_MRR·b²`
//! because the dataflow streams a `b`-bit word for `b` synapse-bit cycles
//! through a double-ring filter. Rather than trusting that arithmetic,
//! the functional engines can *count*: [`ActivityCounter`] tallies every
//! device event the bit-true execution performs, and the tests (plus
//! `tests/` integration checks) assert the counted activity matches the
//! closed forms the energy model multiplies by — closing the loop between
//! "what the simulation did" and "what the model charges".

use std::cell::Cell;

/// Lit-slot and toggle tallies of one binary slot stream.
///
/// A "stream" is whatever a design serializes per operand: the gated
/// pulse train of an optical partial product (OE/OO) or the bit-serial
/// synapse word Stripes walks through (EE). `lit` counts slots carrying
/// a one, `toggles` counts transitions between adjacent slots, and
/// `pairs` the adjacent-slot opportunities (`slots − 1`), so rates can
/// be formed without re-deriving the stream structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamActivity {
    /// Slots in the stream.
    pub slots: u64,
    /// Slots carrying a logical one (light on / bit set).
    pub lit: u64,
    /// Transitions between adjacent slots.
    pub toggles: u64,
    /// Adjacent-slot pairs (`slots − 1`, saturating).
    pub pairs: u64,
}

impl StreamActivity {
    /// Folds another stream's tallies into this one.
    pub fn merge(&mut self, other: &Self) {
        self.slots += other.slots;
        self.lit += other.lit;
        self.toggles += other.toggles;
        self.pairs += other.pairs;
    }

    /// This stream repeated `count` times — how the plane-parallel
    /// engines account for a stream every packed window replays
    /// identically.
    #[must_use]
    pub fn scaled(&self, count: u64) -> Self {
        Self {
            slots: self.slots * count,
            lit: self.lit * count,
            toggles: self.toggles * count,
            pairs: self.pairs * count,
        }
    }
}

/// Measures the LSB-first serialization of a `bits`-wide word in closed
/// form — identical to [`bit_stream_activity`] over the word's bits, but
/// popcount-based so the hot MAC loops pay O(1) per stream.
///
/// # Panics
///
/// Panics if `bits` exceeds 64.
#[must_use]
pub fn word_stream_activity(word: u64, bits: u32) -> StreamActivity {
    assert!(bits <= 64, "streams serialize at most 64 bits");
    if bits == 0 {
        return StreamActivity::default();
    }
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let w = word & mask;
    StreamActivity {
        slots: u64::from(bits),
        lit: u64::from(w.count_ones()),
        // A toggle between slots j and j+1 is a differing adjacent bit
        // pair: XOR against the shifted word, restricted to the bits−1
        // interior boundaries.
        toggles: u64::from(((w ^ (w >> 1)) & (mask >> 1)).count_ones()),
        pairs: u64::from(bits) - 1,
    }
}

/// Measures one stream of binary slots.
pub fn bit_stream_activity(stream: impl Iterator<Item = bool>) -> StreamActivity {
    let mut out = StreamActivity::default();
    let mut prev: Option<bool> = None;
    for bit in stream {
        out.slots += 1;
        out.lit += u64::from(bit);
        if let Some(p) = prev {
            out.pairs += 1;
            out.toggles += u64::from(p != bit);
        }
        prev = Some(bit);
    }
    out
}

/// Tallies of device events during functional MAC execution.
#[derive(Debug, Default)]
pub struct ActivityCounter {
    mrr_slots: Cell<u64>,
    mzi_slots: Cell<u64>,
    cla_ops: Cell<u64>,
    comparator_decisions: Cell<u64>,
    oe_conversions: Cell<u64>,
    gated_slots: Cell<u64>,
    lit_slots: Cell<u64>,
    bit_toggles: Cell<u64>,
    toggle_pairs: Cell<u64>,
}

impl ActivityCounter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `slots` bit-slots streamed through a double-MRR filter.
    pub fn add_mrr_slots(&self, slots: u64) {
        self.mrr_slots.set(self.mrr_slots.get() + slots);
    }

    /// Records `slots` bit-slots routed through MZI accumulator stages.
    pub fn add_mzi_slots(&self, slots: u64) {
        self.mzi_slots.set(self.mzi_slots.get() + slots);
    }

    /// Records one carry-lookahead addition.
    pub fn add_cla_op(&self) {
        self.cla_ops.set(self.cla_ops.get() + 1);
    }

    /// Records `n` carry-lookahead additions at once (the plane-parallel
    /// paths account for a whole window group per call).
    pub fn add_cla_ops(&self, n: u64) {
        self.cla_ops.set(self.cla_ops.get() + n);
    }

    /// Records `n` o/e word conversions at once.
    pub fn add_oe_conversions(&self, n: u64) {
        self.oe_conversions.set(self.oe_conversions.get() + n);
    }

    /// Records `n` comparator-ladder slot decisions.
    pub fn add_comparator_decisions(&self, n: u64) {
        self.comparator_decisions
            .set(self.comparator_decisions.get() + n);
    }

    /// Records one optical-to-electrical word conversion.
    pub fn add_oe_conversion(&self) {
        self.oe_conversions.set(self.oe_conversions.get() + 1);
    }

    /// Folds one measured slot stream into the lit/toggle tallies.
    pub fn add_stream(&self, s: &StreamActivity) {
        self.gated_slots.set(self.gated_slots.get() + s.slots);
        self.lit_slots.set(self.lit_slots.get() + s.lit);
        self.bit_toggles.set(self.bit_toggles.get() + s.toggles);
        self.toggle_pairs.set(self.toggle_pairs.get() + s.pairs);
    }

    /// Bit-slots through MRR filters so far.
    #[must_use]
    pub fn mrr_slots(&self) -> u64 {
        self.mrr_slots.get()
    }

    /// Bit-slots through MZI stages so far.
    #[must_use]
    pub fn mzi_slots(&self) -> u64 {
        self.mzi_slots.get()
    }

    /// CLA additions so far.
    #[must_use]
    pub fn cla_ops(&self) -> u64 {
        self.cla_ops.get()
    }

    /// Comparator decisions so far.
    #[must_use]
    pub fn comparator_decisions(&self) -> u64 {
        self.comparator_decisions.get()
    }

    /// o/e word conversions so far.
    #[must_use]
    pub fn oe_conversions(&self) -> u64 {
        self.oe_conversions.get()
    }

    /// Slots measured by [`Self::add_stream`] so far.
    #[must_use]
    pub fn gated_slots(&self) -> u64 {
        self.gated_slots.get()
    }

    /// Lit (one-carrying) slots so far.
    #[must_use]
    pub fn lit_slots(&self) -> u64 {
        self.lit_slots.get()
    }

    /// Adjacent-slot toggles so far.
    #[must_use]
    pub fn bit_toggles(&self) -> u64 {
        self.bit_toggles.get()
    }

    /// Adjacent-slot toggle opportunities so far.
    #[must_use]
    pub fn toggle_pairs(&self) -> u64 {
        self.toggle_pairs.get()
    }

    /// Fraction of measured slots that were lit (0 when none measured).
    #[must_use]
    pub fn lit_rate(&self) -> f64 {
        ratio(self.lit_slots.get(), self.gated_slots.get())
    }

    /// Fraction of adjacent-slot pairs that toggled (0 when none).
    #[must_use]
    pub fn toggle_rate(&self) -> f64 {
        ratio(self.bit_toggles.get(), self.toggle_pairs.get())
    }

    /// Resets all tallies.
    pub fn reset(&self) {
        self.mrr_slots.set(0);
        self.mzi_slots.set(0);
        self.cla_ops.set(0);
        self.comparator_decisions.set(0);
        self.oe_conversions.set(0);
        self.gated_slots.set(0);
        self.lit_slots.set(0);
        self.bit_toggles.set(0);
        self.toggle_pairs.set(0);
    }
}

#[allow(clippy::cast_precision_loss)]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = ActivityCounter::new();
        c.add_mrr_slots(8);
        c.add_mrr_slots(8);
        c.add_mzi_slots(3);
        c.add_cla_op();
        c.add_comparator_decisions(5);
        c.add_oe_conversion();
        assert_eq!(c.mrr_slots(), 16);
        assert_eq!(c.mzi_slots(), 3);
        assert_eq!(c.cla_ops(), 1);
        assert_eq!(c.comparator_decisions(), 5);
        assert_eq!(c.oe_conversions(), 1);
        c.reset();
        assert_eq!(c.mrr_slots(), 0);
        assert_eq!(c.cla_ops(), 0);
    }

    #[test]
    fn stream_activity_counts_lit_and_toggles() {
        // Stream 1,0,0,1,1: 3 lit slots, toggles at 1→0, 0→1: 2 of 4 pairs.
        let s = bit_stream_activity([true, false, false, true, true].into_iter());
        assert_eq!(s.slots, 5);
        assert_eq!(s.lit, 3);
        assert_eq!(s.toggles, 2);
        assert_eq!(s.pairs, 4);
    }

    #[test]
    fn stream_edge_cases() {
        assert_eq!(
            bit_stream_activity(std::iter::empty()),
            StreamActivity::default()
        );
        let single = bit_stream_activity([true].into_iter());
        assert_eq!((single.slots, single.lit, single.pairs), (1, 1, 0));
    }

    #[test]
    fn word_stream_matches_bitwise_measurement() {
        for word in [0u64, 1, 0b1010, 0b1111, 0xDEAD_BEEF, u64::MAX] {
            for bits in [1u32, 2, 4, 8, 31, 64] {
                let closed = word_stream_activity(word, bits);
                let walked = bit_stream_activity((0..bits).map(|j| (word >> j) & 1 == 1));
                assert_eq!(closed, walked, "word {word:#x} bits {bits}");
            }
        }
        assert_eq!(word_stream_activity(7, 0), StreamActivity::default());
    }

    #[test]
    fn counter_folds_streams_into_rates() {
        let c = ActivityCounter::new();
        c.add_stream(&bit_stream_activity([true, false, true, false].into_iter()));
        c.add_stream(&bit_stream_activity([false, false].into_iter()));
        assert_eq!(c.gated_slots(), 6);
        assert_eq!(c.lit_slots(), 2);
        assert_eq!(c.bit_toggles(), 3);
        assert_eq!(c.toggle_pairs(), 4);
        assert!((c.lit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((c.toggle_rate() - 0.75).abs() < 1e-12);
    }
}
