//! The all-optical (OO) functional MAC.
//!
//! Paper §III-B: each wavelength's neuron word is gated by every synapse
//! bit through the MRR filters, and the per-bit partial products feed a
//! delay-matched MZI chain. Because stage `j`'s output reaches stage
//! `j+1`'s input exactly one bit period later, the chain superposes the
//! partial products with positional weights 2^j — an optical
//! shift-accumulate producing a multi-level amplitude train whose
//! positional value is the full product `neuron × synapse`. A
//! comparator-ladder o/e converter (design 2) resolves the levels, and a
//! final electrical accumulate combines wavelengths and window chunks.

use crate::omac::activity::{bit_stream_activity, ActivityCounter, StreamActivity};
use crate::omac::bitplane::{
    gated_stream_totals, plane_inner_product, PlaneAccumulator, WindowGroup,
};
use crate::omac::{fill_lane_chunk, PlaneMac};
use pixel_dnn::inference::MacEngine;
use pixel_electronics::cla::Cla;
use pixel_electronics::converter::AmplitudeConverter;
use pixel_photonics::constants::OPTICAL_CLOCK_HZ;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::mzi::MziChain;
use pixel_photonics::signal::PulseTrain;
use std::cell::RefCell;

/// Reused per-multiply buffers: the launched neuron train, one gated
/// partial product per synapse bit, and the MZI-combined output.
#[derive(Debug, Default)]
struct MulScratch {
    train: PulseTrain,
    partials: Vec<PulseTrain>,
    combined: PulseTrain,
}

/// Bit-true OO MAC unit.
#[derive(Debug)]
pub struct OoMac {
    lanes: usize,
    bits: u32,
    filter: DoubleMrrFilter,
    chain: MziChain,
    converter: AmplitudeConverter,
    accumulator: Cla,
    activity: ActivityCounter,
    /// Reused per-chunk operand buffers (neurons, synapses).
    chunks: RefCell<(Vec<u64>, Vec<u64>)>,
    mul: RefCell<MulScratch>,
}

impl OoMac {
    /// Creates an OO MAC with `lanes` wavelengths at `bits` bits/lane.
    /// Each wavelength gets an MZI chain with one stage per synapse bit.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 16.
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "OO MAC supports 1..=16 bits");
        assert!(lanes > 0, "at least one lane");
        Self {
            lanes,
            bits,
            filter: DoubleMrrFilter::default(),
            chain: MziChain::delay_matched(bits as usize, OPTICAL_CLOCK_HZ),
            converter: AmplitudeConverter::new(bits),
            accumulator: Cla::new(64),
            activity: ActivityCounter::new(),
            chunks: RefCell::new((Vec::new(), Vec::new())),
            mul: RefCell::new(MulScratch::default()),
        }
    }

    /// Device-activity tallies accumulated by this unit's executions.
    #[must_use]
    pub fn activity(&self) -> &ActivityCounter {
        &self.activity
    }

    /// Number of wavelengths (= lanes).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bits per lane.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The MZI accumulator chain serving each wavelength.
    #[must_use]
    pub fn chain(&self) -> &MziChain {
        &self.chain
    }

    /// Computes one full product optically: gate the neuron train with
    /// each synapse bit (MRR AND), accumulate the partial products in the
    /// MZI chain, resolve the multi-level output through the comparator
    /// ladder.
    ///
    /// # Examples
    ///
    /// ```
    /// use pixel_core::omac::OoMac;
    ///
    /// let mac = OoMac::new(1, 8);
    /// assert_eq!(mac.optical_multiply(113, 201), 113 * 201);
    /// ```
    #[must_use]
    pub fn optical_multiply(&self, neuron: u64, synapse: u64) -> u64 {
        let mut mul = self.mul.borrow_mut();
        self.multiply_with(neuron, synapse, &mut mul)
    }

    /// [`Self::optical_multiply`] against caller-held scratch, so the
    /// window loop can run it without re-borrowing per MAC.
    fn multiply_with(&self, neuron: u64, synapse: u64, bufs: &mut MulScratch) -> u64 {
        let MulScratch {
            train,
            partials,
            combined,
        } = bufs;
        let bits = self.bits as usize;
        train.write_bits(neuron, bits);
        if partials.len() != bits {
            partials.resize_with(bits, PulseTrain::new);
        }
        for (j, partial) in partials.iter_mut().enumerate() {
            self.filter
                .and_into(train, (synapse >> j) & 1 == 1, partial);
        }
        self.activity
            .add_mrr_slots(u64::from(self.bits) * u64::from(self.bits));
        for partial in partials.iter() {
            self.activity
                .add_stream(&bit_stream_activity(partial.iter().map(|a| a > 0.5)));
        }
        self.chain.accumulate_into(partials, combined);
        self.activity.add_mzi_slots(combined.len() as u64);
        self.activity
            .add_comparator_decisions(combined.len() as u64);
        self.activity.add_oe_conversion();
        self.converter
            .decode(combined.amplitudes())
            // lint:allow(P002) amplitude levels bounded by bits-per-lane accumulation
            .expect("amplitude levels bounded by bits per lane")
    }
}

impl MacEngine for OoMac {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        let before_mrr = self.activity.mrr_slots();
        let before_mzi = self.activity.mzi_slots();
        let before_toggles = self.activity.bit_toggles();
        assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
        let mut chunks = self.chunks.borrow_mut();
        let (nbuf, sbuf) = &mut *chunks;
        let mut mul = self.mul.borrow_mut();
        let mut acc = 0u64;
        let mut start = 0;
        while start < neurons.len() {
            fill_lane_chunk(neurons, synapses, start, self.lanes, nbuf, sbuf);
            for (&n, &s) in nbuf.iter().zip(sbuf.iter()) {
                let product = self.multiply_with(n, s, &mut mul);
                let (sum, carry) = self.accumulator.add(acc, product, false);
                self.activity.add_cla_op();
                debug_assert!(!carry, "window accumulator overflow");
                acc = sum;
            }
            start += self.lanes;
        }
        if pixel_obs::enabled() {
            pixel_obs::add("omac.oo.mac_ops", neurons.len() as u64);
            pixel_obs::add("omac.oo.mrr_slots", self.activity.mrr_slots() - before_mrr);
            pixel_obs::add("omac.oo.mzi_slots", self.activity.mzi_slots() - before_mzi);
            pixel_obs::add(
                "omac.oo.bit_toggles",
                self.activity.bit_toggles() - before_toggles,
            );
        }
        acc
    }

    fn name(&self) -> &str {
        "OO (MRR multiply, MZI accumulate)"
    }
}

impl PlaneMac for OoMac {
    fn inner_product_planes(&self, group: &WindowGroup, synapses: &[u64], out: &mut Vec<u64>) {
        assert_eq!(
            group.bits(),
            self.bits,
            "group precision must match the engine"
        );
        let mut acc = PlaneAccumulator::new();
        plane_inner_product(group, synapses, &mut acc, out);

        // Accounting parity with the scalar path. Per window, every lane
        // position of every chunk (zero-padded tail included) performs
        // one optical multiply — `bits` gated partial trains of `bits`
        // slots through the MRRs, a delay-matched MZI chain combine of
        // `2·bits − 1` slots resolved by as many comparator decisions,
        // one o/e conversion — then one CLA accumulate.
        let len = group.len() as u64;
        let bits = u64::from(self.bits);
        let chunks = synapses.len().div_ceil(self.lanes) as u64;
        let positions = len * chunks * self.lanes as u64;
        let combined = 2 * bits - 1;
        let (lit, toggles) = gated_stream_totals(group, synapses);
        self.activity.add_mrr_slots(positions * bits * bits);
        self.activity.add_stream(&StreamActivity {
            slots: positions * bits * bits,
            lit,
            toggles,
            pairs: positions * bits * (bits - 1),
        });
        self.activity.add_mzi_slots(positions * combined);
        self.activity.add_comparator_decisions(positions * combined);
        self.activity.add_oe_conversions(positions);
        self.activity.add_cla_ops(positions);
        if pixel_obs::enabled() {
            pixel_obs::add("omac.oo.mac_ops", synapses.len() as u64 * len);
            pixel_obs::add("omac.oo.mrr_slots", positions * bits * bits);
            pixel_obs::add("omac.oo.mzi_slots", positions * combined);
            pixel_obs::add("omac.oo.bit_toggles", toggles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_dnn::inference::DirectMac;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn optical_multiply_small_cases() {
        let mac = OoMac::new(1, 4);
        assert_eq!(mac.optical_multiply(0, 0), 0);
        assert_eq!(mac.optical_multiply(15, 15), 225);
        assert_eq!(mac.optical_multiply(6, 6), 36);
        assert_eq!(mac.optical_multiply(9, 1), 9);
        assert_eq!(mac.optical_multiply(1, 9), 9);
    }

    #[test]
    fn paper_lambda0_example() {
        // §III-B: λ0 carries 0110₂ gated by synapse bits; the chain output
        // has "different amplitudes of light" whose positional value is
        // the product.
        let mac = OoMac::new(4, 4);
        // Synapse 1011₂ = 11: 6·11 = 66.
        assert_eq!(mac.optical_multiply(0b0110, 0b1011), 66);
    }

    #[test]
    fn amplitude_levels_stay_within_ladder() {
        // Worst case: all-ones neuron and synapse produce peak level = bits.
        let mac = OoMac::new(1, 8);
        let train = PulseTrain::from_bits(0xFF, 8);
        let partials: Vec<PulseTrain> = (0..8).map(|_| mac.filter.and(&train, true)).collect();
        let combined = mac.chain.accumulate(&partials);
        assert_eq!(combined.peak_level(), 8);
        assert_eq!(mac.bits(), 8);
    }

    #[test]
    fn window_matches_reference() {
        let mac = OoMac::new(4, 4);
        let n = [6u64, 4, 6, 9];
        let s = [11u64, 0, 5, 7];
        assert_eq!(mac.inner_product(&n, &s), DirectMac.inner_product(&n, &s));
    }

    #[test]
    fn optical_multiply_is_exact() {
        let mut rng = SplitMix64::seed_from_u64(0x0AC1);
        let mac = OoMac::new(1, 8);
        for _ in 0..256 {
            let a = rng.range_u64(0, 255);
            let b = rng.range_u64(0, 255);
            assert_eq!(mac.optical_multiply(a, b), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn matches_direct() {
        let mut rng = SplitMix64::seed_from_u64(0x0AC2);
        for _ in 0..128 {
            let lanes = rng.range_usize(1, 6);
            let bits = rng.range_u32(1, 10);
            let len = rng.range_usize(1, 20);
            let limit = (1u64 << bits) - 1;
            let n: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let s: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let mac = OoMac::new(lanes, bits);
            assert_eq!(
                mac.inner_product(&n, &s),
                DirectMac.inner_product(&n, &s),
                "lanes={lanes} bits={bits} len={len}"
            );
        }
    }
}
