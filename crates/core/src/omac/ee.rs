//! The all-electrical (EE) functional MAC: Stripes bit-serial hardware.

use crate::omac::activity::{word_stream_activity, ActivityCounter, StreamActivity};
use crate::omac::bitplane::{plane_inner_product, PlaneAccumulator, WindowGroup};
use crate::omac::{fill_lane_chunk, PlaneMac};
use pixel_dnn::inference::MacEngine;
use pixel_electronics::cla::Cla;
use pixel_electronics::stripes::StripesMac;
use std::cell::RefCell;

/// Bit-true EE MAC unit: `lanes` parallel Stripes lanes feeding a wide
/// output accumulator.
#[derive(Debug)]
pub struct EeMac {
    stripes: StripesMac,
    lanes: usize,
    output_accumulator: Cla,
    activity: ActivityCounter,
    /// Reused per-chunk operand buffers (neurons, synapses).
    scratch: RefCell<(Vec<u64>, Vec<u64>)>,
}

impl EeMac {
    /// Creates an EE MAC with `lanes` lanes at `bits` bits of precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 16 (operands must leave room
    /// for window-level accumulation in the 64-bit output path).
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "EE MAC supports 1..=16 bits");
        Self {
            stripes: StripesMac::new(lanes, bits),
            lanes,
            output_accumulator: Cla::new(64),
            activity: ActivityCounter::new(),
            scratch: RefCell::new((Vec::new(), Vec::new())),
        }
    }

    /// Device-activity tallies accumulated by this unit's executions.
    #[must_use]
    pub fn activity(&self) -> &ActivityCounter {
        &self.activity
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Operand precision.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.stripes.bits()
    }

    /// The underlying Stripes datapath.
    #[must_use]
    pub fn stripes(&self) -> &StripesMac {
        &self.stripes
    }
}

impl MacEngine for EeMac {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        let bits = self.stripes.bits();
        let before_slots = self.activity.gated_slots();
        let before_toggles = self.activity.bit_toggles();
        let before_cla = self.activity.cla_ops();
        assert_eq!(neurons.len(), synapses.len(), "operand length mismatch");
        let mut scratch = self.scratch.borrow_mut();
        let (nbuf, sbuf) = &mut *scratch;
        let mut acc = 0u64;
        let mut start = 0;
        while start < neurons.len() {
            fill_lane_chunk(neurons, synapses, start, self.lanes, nbuf, sbuf);
            // Stripes walks each synapse word bit-serially: the gating
            // stream whose activity the energy model charges for.
            for &synapse in sbuf.iter() {
                self.activity
                    .add_stream(&word_stream_activity(synapse, bits));
            }
            let chunk = self
                .stripes
                .mac(nbuf, sbuf)
                // lint:allow(P002) operand widths validated by the caller precision check
                .expect("operands validated by caller precision");
            let (sum, carry) = self.output_accumulator.add(acc, chunk.value, false);
            self.activity.add_cla_op();
            debug_assert!(!carry, "window accumulator overflow");
            acc = sum;
            start += self.lanes;
        }
        if pixel_obs::enabled() {
            pixel_obs::add("omac.ee.mac_ops", neurons.len() as u64);
            pixel_obs::add(
                "omac.ee.serial_slots",
                self.activity.gated_slots() - before_slots,
            );
            pixel_obs::add(
                "omac.ee.bit_toggles",
                self.activity.bit_toggles() - before_toggles,
            );
            pixel_obs::add("omac.ee.cla_ops", self.activity.cla_ops() - before_cla);
        }
        acc
    }

    fn name(&self) -> &str {
        "EE (Stripes bit-serial)"
    }
}

impl PlaneMac for EeMac {
    fn inner_product_planes(&self, group: &WindowGroup, synapses: &[u64], out: &mut Vec<u64>) {
        let bits = self.stripes.bits();
        assert_eq!(group.bits(), bits, "group precision must match the engine");
        let mut acc = PlaneAccumulator::new();
        plane_inner_product(group, synapses, &mut acc, out);

        // Accounting parity with the scalar path: every packed window
        // walks the same synapse words bit-serially (the kernel is shared
        // across windows), plus the zero-padded tail of the last lane
        // chunk, so the per-window stream aggregate simply scales by the
        // group size; one CLA op per chunk per window.
        let len = group.len() as u64;
        let chunks = synapses.len().div_ceil(self.lanes) as u64;
        let pads = chunks * self.lanes as u64 - synapses.len() as u64;
        let mut per_window = StreamActivity::default();
        for &synapse in synapses {
            per_window.merge(&word_stream_activity(synapse, bits));
        }
        per_window.merge(&word_stream_activity(0, bits).scaled(pads));
        let streams = per_window.scaled(len);
        self.activity.add_stream(&streams);
        self.activity.add_cla_ops(chunks * len);
        if pixel_obs::enabled() {
            pixel_obs::add("omac.ee.mac_ops", synapses.len() as u64 * len);
            pixel_obs::add("omac.ee.serial_slots", streams.slots);
            pixel_obs::add("omac.ee.bit_toggles", streams.toggles);
            pixel_obs::add("omac.ee.cla_ops", chunks * len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_dnn::inference::DirectMac;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn paper_worked_example_window() {
        // §II-B full window: after 4 synapse-lane passes the sum is 368.
        let mac = EeMac::new(4, 4);
        let neurons = [2u64, 0, 3, 8, 4, 1, 5, 2, 6, 3, 1, 8, 9, 4, 2, 6];
        let synapses = [6u64, 1, 2, 3, 9, 2, 3, 1, 13, 1, 4, 3, 11, 2, 5, 1];
        let expected = DirectMac.inner_product(&neurons, &synapses);
        assert_eq!(mac.inner_product(&neurons, &synapses), expected);
    }

    #[test]
    fn partial_chunk_is_zero_padded() {
        let mac = EeMac::new(4, 8);
        assert_eq!(mac.inner_product(&[10], &[20]), 200);
    }

    #[test]
    fn name_mentions_design() {
        assert!(EeMac::new(2, 4).name().contains("EE"));
    }

    #[test]
    fn activity_counts_the_serial_synapse_stream() {
        let mac = EeMac::new(4, 4);
        // One chunk of four lanes: 4 synapses × 4 serial slots each.
        // 0b1010 serializes LSB-first as 0,1,0,1 → 2 lit slots, 3 toggles.
        let _ = mac.inner_product(&[1, 1, 1, 1], &[0b1010, 0, 0, 0]);
        let a = mac.activity();
        assert_eq!(a.gated_slots(), 16);
        assert_eq!(a.lit_slots(), 2);
        assert_eq!(a.bit_toggles(), 3);
        assert_eq!(a.toggle_pairs(), 12);
        assert_eq!(a.cla_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn rejects_wide_operands() {
        let _ = EeMac::new(4, 17);
    }

    #[test]
    fn matches_direct() {
        let mut rng = SplitMix64::seed_from_u64(0xEE_AC);
        for _ in 0..128 {
            let lanes = rng.range_usize(1, 6);
            let bits = rng.range_u32(1, 10);
            let len = rng.range_usize(1, 30);
            let limit = (1u64 << bits) - 1;
            let n: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let s: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let mac = EeMac::new(lanes, bits);
            assert_eq!(
                mac.inner_product(&n, &s),
                DirectMac.inner_product(&n, &s),
                "lanes={lanes} bits={bits} len={len}"
            );
        }
    }
}
