//! The all-electrical (EE) functional MAC: Stripes bit-serial hardware.

use crate::omac::lane_chunks;
use pixel_dnn::inference::MacEngine;
use pixel_electronics::cla::Cla;
use pixel_electronics::stripes::StripesMac;

/// Bit-true EE MAC unit: `lanes` parallel Stripes lanes feeding a wide
/// output accumulator.
#[derive(Debug, Clone)]
pub struct EeMac {
    stripes: StripesMac,
    lanes: usize,
    output_accumulator: Cla,
}

impl EeMac {
    /// Creates an EE MAC with `lanes` lanes at `bits` bits of precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 16 (operands must leave room
    /// for window-level accumulation in the 64-bit output path).
    #[must_use]
    pub fn new(lanes: usize, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "EE MAC supports 1..=16 bits");
        Self {
            stripes: StripesMac::new(lanes, bits),
            lanes,
            output_accumulator: Cla::new(64),
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Operand precision.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.stripes.bits()
    }

    /// The underlying Stripes datapath.
    #[must_use]
    pub fn stripes(&self) -> &StripesMac {
        &self.stripes
    }
}

impl MacEngine for EeMac {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        let mut acc = 0u64;
        for (n, s) in lane_chunks(neurons, synapses, self.lanes) {
            let chunk = self
                .stripes
                .mac(&n, &s)
                .expect("operands validated by caller precision");
            let (sum, carry) = self.output_accumulator.add(acc, chunk.value, false);
            debug_assert!(!carry, "window accumulator overflow");
            acc = sum;
        }
        acc
    }

    fn name(&self) -> &str {
        "EE (Stripes bit-serial)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_dnn::inference::DirectMac;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example_window() {
        // §II-B full window: after 4 synapse-lane passes the sum is 368.
        let mac = EeMac::new(4, 4);
        let neurons = [2u64, 0, 3, 8, 4, 1, 5, 2, 6, 3, 1, 8, 9, 4, 2, 6];
        let synapses = [6u64, 1, 2, 3, 9, 2, 3, 1, 13, 1, 4, 3, 11, 2, 5, 1];
        let expected = DirectMac.inner_product(&neurons, &synapses);
        assert_eq!(mac.inner_product(&neurons, &synapses), expected);
    }

    #[test]
    fn partial_chunk_is_zero_padded() {
        let mac = EeMac::new(4, 8);
        assert_eq!(mac.inner_product(&[10], &[20]), 200);
    }

    #[test]
    fn name_mentions_design() {
        assert!(EeMac::new(2, 4).name().contains("EE"));
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn rejects_wide_operands() {
        let _ = EeMac::new(4, 17);
    }

    proptest! {
        #[test]
        fn matches_direct(
            lanes in 1usize..=6,
            bits in 1u32..=10,
            seed in any::<u64>(),
            len in 1usize..=30,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let limit = (1u64 << bits) - 1;
            let n: Vec<u64> = (0..len).map(|_| rng.gen_range(0..=limit)).collect();
            let s: Vec<u64> = (0..len).map(|_| rng.gen_range(0..=limit)).collect();
            let mac = EeMac::new(lanes, bits);
            prop_assert_eq!(mac.inner_product(&n, &s), DirectMac.inner_product(&n, &s));
        }
    }
}
