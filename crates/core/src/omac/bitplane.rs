//! Bit-plane packing: 64 MACs per word-level operation.
//!
//! PIXEL's dataflow is Stripes bit-serial: every design walks operand
//! *bits*, one slot at a time. That makes it embarrassingly bit-plane
//! parallel — transpose 64 independent windows so that bit `a` of word
//! position `i` across all windows lands in one `u64` plane, and a
//! single word-level AND/XOR advances the same slot of 64 MACs at once
//! (the SIMD-within-a-register counterpart of the Kogge–Stone
//! carry-lookahead rewrite). [`BitplaneBlock`] is the transposed word
//! position, [`WindowGroup`] a whole window's worth of blocks, and
//! [`PlaneAccumulator`] the bit-sliced ripple/full-adder accumulator the
//! plane-parallel engines share. Arithmetic is exact, so the batched
//! path is bitwise identical to the scalar one by construction; only
//! the *activity accounting* differs per design, and that lives with
//! each engine.

/// Windows a fully packed plane carries (the `u64` lane width).
pub const PLANE_WINDOWS: usize = 64;

fn value_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// One word position transposed across up to 64 windows: plane `a` holds
/// bit `a` of the position's word in every window (window `w` ↦ plane
/// bit `w`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitplaneBlock {
    planes: Vec<u64>,
    len: usize,
}

impl BitplaneBlock {
    /// Packs `values` (one word per window, at most 64) into `bits`
    /// planes. Word bits above `bits` are dropped, exactly as the scalar
    /// transport's `write_bits` truncates.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or longer than [`PLANE_WINDOWS`], or
    /// if `bits` is outside `1..=16` (the functional engines' range).
    #[must_use]
    pub fn pack(values: &[u64], bits: u32) -> Self {
        let mut block = Self::default();
        block.repack(values, bits);
        block
    }

    /// [`Self::pack`] into this block, reusing its plane allocation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::pack`].
    pub fn repack(&mut self, values: &[u64], bits: u32) {
        assert!(
            (1..=PLANE_WINDOWS).contains(&values.len()),
            "1..=64 windows per plane block"
        );
        assert!((1..=16).contains(&bits), "plane blocks carry 1..=16 bits");
        self.planes.clear();
        self.planes.resize(bits as usize, 0);
        self.len = values.len();
        let mask = value_mask(bits);
        for (w, &value) in values.iter().enumerate() {
            let mut rest = value & mask;
            while rest != 0 {
                let a = rest.trailing_zeros() as usize;
                self.planes[a] |= 1 << w;
                rest &= rest - 1;
            }
        }
    }

    /// Unpacks the block back into one word per window.
    pub fn unpack_into(&self, out: &mut Vec<u64>) {
        out.clear();
        for w in 0..self.len {
            let mut value = 0u64;
            for (a, &plane) in self.planes.iter().enumerate() {
                value |= ((plane >> w) & 1) << a;
            }
            out.push(value);
        }
    }

    /// The planes, LSB first.
    #[must_use]
    pub fn planes(&self) -> &[u64] {
        &self.planes
    }

    /// Plane `a` (bit `a` of every window's word).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not below the packed bit width.
    #[must_use]
    pub fn plane(&self, a: usize) -> u64 {
        self.planes[a]
    }

    /// Replaces plane `a` — the transport layer writes back what the
    /// photodetector recovered, so the computed value is the value that
    /// crossed the optical medium.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not below the packed bit width.
    pub fn set_plane(&mut self, a: usize, plane: u64) {
        self.planes[a] = plane;
    }

    /// Windows packed into this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no windows are packed (never after [`Self::pack`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lit slots summed over every window's serialization of this word:
    /// `Σ_a popcount(plane_a)` — the plane-parallel form of summing
    /// per-window popcounts.
    #[must_use]
    pub fn lit_slots(&self) -> u64 {
        self.planes.iter().map(|p| u64::from(p.count_ones())).sum()
    }

    /// Adjacent-slot toggles summed over every window's serialization:
    /// `Σ_a popcount(plane_a ⊕ plane_{a+1})`.
    #[must_use]
    pub fn toggle_slots(&self) -> u64 {
        self.planes
            .windows(2)
            .map(|pair| u64::from((pair[0] ^ pair[1]).count_ones()))
            .sum()
    }
}

/// A group of up to 64 windows transposed into plane blocks: block `i`
/// carries word position `i` of every window.
#[derive(Debug, Default)]
pub struct WindowGroup {
    blocks: Vec<BitplaneBlock>,
    len: usize,
    bits: u32,
}

impl WindowGroup {
    /// Packs `len` windows of `window` words each from `rows` (window-
    /// major: window `w` occupies `rows[w*window..(w+1)*window]`),
    /// reusing this group's allocations.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != window * len`, if `window` is zero, or
    /// under [`BitplaneBlock::repack`]'s `len`/`bits` conditions.
    pub fn repack(&mut self, rows: &[u64], window: usize, len: usize, bits: u32) {
        assert!(window > 0, "windows carry at least one word");
        assert_eq!(rows.len(), window * len, "rows must hold len windows");
        assert!(
            (1..=PLANE_WINDOWS).contains(&len),
            "1..=64 windows per group"
        );
        assert!((1..=16).contains(&bits), "plane groups carry 1..=16 bits");
        self.blocks.resize_with(window, BitplaneBlock::default);
        self.len = len;
        self.bits = bits;
        let mask = value_mask(bits);
        for (i, block) in self.blocks.iter_mut().enumerate() {
            block.planes.clear();
            block.planes.resize(bits as usize, 0);
            block.len = len;
            for w in 0..len {
                // lint:allow(P104) rows.len() == window·len is asserted above; w < len, i < window
                let mut rest = rows[w * window + i] & mask;
                while rest != 0 {
                    let a = rest.trailing_zeros() as usize;
                    block.planes[a] |= 1 << w;
                    rest &= rest - 1;
                }
            }
        }
    }

    /// Packs a fresh group (see [`Self::repack`]).
    ///
    /// # Panics
    ///
    /// Panics under [`Self::repack`]'s conditions.
    #[must_use]
    pub fn pack(rows: &[u64], window: usize, len: usize, bits: u32) -> Self {
        let mut group = Self::default();
        group.repack(rows, window, len, bits);
        group
    }

    /// The plane blocks, one per word position.
    #[must_use]
    pub fn blocks(&self) -> &[BitplaneBlock] {
        &self.blocks
    }

    /// Mutable plane blocks (the transport layer ships and rewrites
    /// planes in place).
    #[must_use]
    pub fn blocks_mut(&mut self) -> &mut [BitplaneBlock] {
        &mut self.blocks
    }

    /// Windows packed into the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no windows are packed (never after [`Self::pack`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Words per window.
    #[must_use]
    pub fn window(&self) -> usize {
        self.blocks.len()
    }

    /// Packed operand precision.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Unpacks the group back to window-major rows (inverse of
    /// [`Self::pack`]).
    pub fn unpack_into(&self, rows: &mut Vec<u64>) {
        let window = self.window();
        rows.clear();
        rows.resize(window * self.len, 0);
        for (i, block) in self.blocks.iter().enumerate() {
            for (a, &plane) in block.planes.iter().enumerate() {
                let mut rest = plane;
                while rest != 0 {
                    let w = rest.trailing_zeros() as usize;
                    // lint:allow(P104) rows was resized to window·len above; plane bits only exist for w < len (repack masks lanes >= len)
                    rows[w * window + i] |= 1 << a;
                    rest &= rest - 1;
                }
            }
        }
    }
}

/// A bit-sliced accumulator: plane `k` holds bit `k` of 64 independent
/// running sums. [`Self::add_shifted`] is a full adder over planes —
/// three word ops per addend plane advance one addition in all 64 lanes.
#[derive(Debug)]
pub struct PlaneAccumulator {
    planes: [u64; 64],
    /// Planes that may be nonzero (high-water mark, bounds the unpack).
    high: usize,
}

impl Default for PlaneAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl PlaneAccumulator {
    /// A zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            planes: [0; 64],
            high: 0,
        }
    }

    /// Zeroes the accumulator (cheaply: only planes touched since the
    /// last clear).
    pub fn clear(&mut self) {
        for plane in &mut self.planes[..self.high] {
            *plane = 0;
        }
        self.high = 0;
    }

    /// Adds `addend` (a plane-transposed word per lane) shifted left by
    /// `shift` bit positions into every lane's running sum.
    ///
    /// # Panics
    ///
    /// Panics if any lane's sum overflows 64 bits.
    pub fn add_shifted(&mut self, addend: &[u64], shift: usize) {
        let mut carry = 0u64;
        let mut k = shift;
        for &x in addend {
            // Bit-sliced full adder: one plane of 64 lane-sums per step.
            let a = self.planes[k];
            let partial = a ^ x;
            self.planes[k] = partial ^ carry;
            carry = (a & x) | (partial & carry);
            k += 1;
        }
        while carry != 0 {
            assert!(k < 64, "plane accumulator overflow");
            let a = self.planes[k];
            self.planes[k] = a ^ carry;
            carry &= a;
            k += 1;
        }
        self.high = self.high.max(k);
    }

    /// Unpacks the first `len` lane sums.
    pub fn unpack_into(&self, len: usize, out: &mut Vec<u64>) {
        out.clear();
        for w in 0..len {
            let mut value = 0u64;
            for (k, &plane) in self.planes[..self.high].iter().enumerate() {
                value |= ((plane >> w) & 1) << k;
            }
            out.push(value);
        }
    }
}

/// The shared plane-parallel inner-product kernel: for every set synapse
/// bit `b` of word position `i`, add block `i`'s planes shifted by `b`
/// into the lane accumulators — each `add_shifted` is the batched form
/// of 64 scalar shift-accumulate cycles. Synapse bits above the group's
/// precision are ignored, exactly as the scalar engines' `0..bits`
/// cycle loops never visit them. The `len` lane sums land in `out`.
///
/// # Panics
///
/// Panics if `synapses.len()` differs from the group's window size or a
/// lane sum overflows 64 bits.
pub fn plane_inner_product(
    group: &WindowGroup,
    synapses: &[u64],
    acc: &mut PlaneAccumulator,
    out: &mut Vec<u64>,
) {
    assert_eq!(
        synapses.len(),
        group.window(),
        "one synapse word per window position"
    );
    let mask = value_mask(group.bits());
    acc.clear();
    for (block, &synapse) in group.blocks().iter().zip(synapses) {
        let mut rest = synapse & mask;
        while rest != 0 {
            let b = rest.trailing_zeros() as usize;
            acc.add_shifted(&block.planes, b);
            rest &= rest - 1;
        }
    }
    acc.unpack_into(group.len(), out);
}

/// Lit-slot and toggle totals of every synapse-bit-gated neuron stream
/// in the group: for word position `i`, each set synapse bit replays the
/// position's neuron serialization once per window, so the position
/// contributes `popcount(sᵢ) · Σ_w lit(n_{w,i})` lit slots (and likewise
/// toggles) — the closed form the OE/OO plane paths charge instead of
/// walking `len × bits` gated trains.
pub(crate) fn gated_stream_totals(group: &WindowGroup, synapses: &[u64]) -> (u64, u64) {
    let mask = value_mask(group.bits());
    let (mut lit, mut toggles) = (0u64, 0u64);
    for (block, &synapse) in group.blocks().iter().zip(synapses) {
        let gates = u64::from((synapse & mask).count_ones());
        lit += gates * block.lit_slots();
        toggles += gates * block.toggle_slots();
    }
    (lit, toggles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn block_pack_unpack_round_trips() {
        let mut rng = SplitMix64::seed_from_u64(0xB17);
        let mut out = Vec::new();
        for _ in 0..200 {
            let bits = rng.range_u32(1, 16);
            let len = rng.range_usize(1, PLANE_WINDOWS);
            let limit = (1u64 << bits) - 1;
            let values: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
            let block = BitplaneBlock::pack(&values, bits);
            block.unpack_into(&mut out);
            assert_eq!(out, values, "bits={bits} len={len}");
        }
    }

    #[test]
    fn group_pack_unpack_round_trips() {
        let mut rng = SplitMix64::seed_from_u64(0x6B0);
        let mut group = WindowGroup::default();
        let mut out = Vec::new();
        for _ in 0..50 {
            let bits = rng.range_u32(1, 16);
            let window = rng.range_usize(1, 20);
            let len = rng.range_usize(1, PLANE_WINDOWS);
            let limit = (1u64 << bits) - 1;
            let rows: Vec<u64> = (0..window * len).map(|_| rng.range_u64(0, limit)).collect();
            group.repack(&rows, window, len, bits);
            assert_eq!(group.len(), len);
            assert_eq!(group.window(), window);
            group.unpack_into(&mut out);
            assert_eq!(out, rows, "bits={bits} window={window} len={len}");
        }
    }

    #[test]
    fn pack_truncates_to_the_packed_precision() {
        // 0b1_0110 at 4 bits packs as 0b0110, as write_bits truncates.
        let block = BitplaneBlock::pack(&[0b1_0110], 4);
        let mut out = Vec::new();
        block.unpack_into(&mut out);
        assert_eq!(out, vec![0b0110]);
    }

    #[test]
    fn block_popcount_tallies_match_per_window_sums() {
        let values = [0b1010u64, 0b0001, 0b1111, 0];
        let block = BitplaneBlock::pack(&values, 4);
        let lit: u64 = values.iter().map(|v| u64::from(v.count_ones())).sum();
        let toggles: u64 = values
            .iter()
            .map(|v| u64::from(((v ^ (v >> 1)) & 0b111).count_ones()))
            .sum();
        assert_eq!(block.lit_slots(), lit);
        assert_eq!(block.toggle_slots(), toggles);
        assert_eq!(block.len(), 4);
        assert!(!block.is_empty());
    }

    #[test]
    fn accumulator_matches_scalar_shift_accumulate() {
        let mut rng = SplitMix64::seed_from_u64(0xACC);
        let mut acc = PlaneAccumulator::new();
        let mut out = Vec::new();
        for _ in 0..50 {
            let bits = rng.range_u32(1, 12);
            let len = rng.range_usize(1, PLANE_WINDOWS);
            let limit = (1u64 << bits) - 1;
            let mut expected = vec![0u64; len];
            acc.clear();
            for _ in 0..rng.range_usize(1, 8) {
                let values: Vec<u64> = (0..len).map(|_| rng.range_u64(0, limit)).collect();
                let shift = rng.range_usize(0, 8);
                let block = BitplaneBlock::pack(&values, bits);
                acc.add_shifted(block.planes(), shift);
                for (sum, &v) in expected.iter_mut().zip(&values) {
                    *sum += v << shift;
                }
            }
            acc.unpack_into(len, &mut out);
            assert_eq!(out, expected, "bits={bits} len={len}");
        }
    }

    #[test]
    fn plane_inner_product_matches_per_window_dot_products() {
        let mut rng = SplitMix64::seed_from_u64(0xD07);
        let mut acc = PlaneAccumulator::new();
        let mut out = Vec::new();
        for _ in 0..50 {
            let bits = rng.range_u32(1, 12);
            let window = rng.range_usize(1, 24);
            let len = rng.range_usize(1, PLANE_WINDOWS);
            let limit = (1u64 << bits) - 1;
            let rows: Vec<u64> = (0..window * len).map(|_| rng.range_u64(0, limit)).collect();
            let synapses: Vec<u64> = (0..window).map(|_| rng.range_u64(0, limit)).collect();
            let group = WindowGroup::pack(&rows, window, len, bits);
            plane_inner_product(&group, &synapses, &mut acc, &mut out);
            for w in 0..len {
                let expected: u64 = rows[w * window..(w + 1) * window]
                    .iter()
                    .zip(&synapses)
                    .map(|(&n, &s)| n * s)
                    .sum();
                assert_eq!(out[w], expected, "bits={bits} window={window} w={w}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn accumulator_overflow_is_detected() {
        let mut acc = PlaneAccumulator::new();
        let ones = [u64::MAX; 16];
        for _ in 0..10_000 {
            acc.add_shifted(&ones, 48);
        }
    }
}
