//! Roofline analysis of the three designs.
//!
//! A classical architecture lens the paper doesn't draw but its numbers
//! imply: each design has a peak MAC throughput (compute roof, set by the
//! firing-round service time) and a data-delivery bandwidth (set by the
//! optical or electrical ingress), and a layer's achievable throughput is
//! the lesser of the compute roof and `bandwidth × arithmetic intensity`.
//! For STR-style accelerators the arithmetic intensity is fixed by the
//! dataflow (every delivered word is used once per firing), so the
//! roofline collapses to a clean min() — but it makes the designs'
//! bottlenecks comparable at a glance.

use crate::config::AcceleratorConfig;
use crate::latency::cycles_per_firing;

/// The two roofs and the resulting bound for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak MAC throughput [MAC/s]: fabric-wide firing rate × MACs/firing.
    pub compute_roof_macs_per_s: f64,
    /// Ingress bandwidth [bit/s]: lanes × tiles × line rate.
    pub ingress_bits_per_s: f64,
    /// MACs per delivered neuron bit (arithmetic intensity of the
    /// weight-stationary dataflow).
    pub intensity_macs_per_bit: f64,
    /// The achievable bound [MAC/s]: `min(compute, bandwidth × intensity)`.
    pub bound_macs_per_s: f64,
}

impl Roofline {
    /// True when the configuration is compute-bound (service time limits),
    /// false when ingress bandwidth limits.
    #[must_use]
    pub fn compute_bound(&self) -> bool {
        self.compute_roof_macs_per_s <= self.ingress_bits_per_s * self.intensity_macs_per_bit
    }
}

/// Computes the roofline of a configuration.
#[must_use]
pub fn roofline(config: &AcceleratorConfig) -> Roofline {
    #[allow(clippy::cast_precision_loss)]
    let macs_per_firing = config.macs_per_firing() as f64;
    let firing_rate = config.clocks.electrical_hz / cycles_per_firing(config);
    let compute_roof = macs_per_firing * firing_rate;

    // Ingress: every lane of every tile carries bits at the design's line
    // rate (optical clock for OE/OO, electrical for EE).
    let line_rate = config.design.model().ingress_line_rate_hz(&config.clocks);
    #[allow(clippy::cast_precision_loss)]
    let lanes_total = (config.tiles * config.lanes) as f64;
    let ingress = lanes_total * line_rate;

    // Weight-stationary STR: one MAC consumes one b-bit neuron word.
    let intensity = 1.0 / config.b();

    let bound = compute_roof.min(ingress * intensity);
    Roofline {
        compute_roof_macs_per_s: compute_roof,
        ingress_bits_per_s: ingress,
        intensity_macs_per_bit: intensity,
        bound_macs_per_s: bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    #[test]
    fn optical_designs_raise_the_compute_roof_at_moderate_bits() {
        // At 8 bits/lane the OO design's 4-cycle firings beat EE's 6.
        let ee = roofline(&AcceleratorConfig::new(Design::Ee, 8, 8));
        let oo = roofline(&AcceleratorConfig::new(Design::Oo, 8, 8));
        assert!(oo.compute_roof_macs_per_s > ee.compute_roof_macs_per_s);
    }

    #[test]
    fn optical_ingress_is_ten_times_electrical() {
        let ee = roofline(&AcceleratorConfig::new(Design::Ee, 8, 8));
        let oe = roofline(&AcceleratorConfig::new(Design::Oe, 8, 8));
        assert!((oe.ingress_bits_per_s / ee.ingress_bits_per_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn optical_designs_are_compute_bound_ee_starves_at_high_bits() {
        // The 10 GHz optical ingress keeps OE/OO compute-bound across the
        // whole sweep; EE's electrical ingress becomes the binding roof
        // past ~8 bits/lane — the introduction's "data movement needs to
        // be optimized" bottleneck, made quantitative.
        for bits in [1u32, 4, 8, 16, 32] {
            for design in [Design::Oe, Design::Oo] {
                let r = roofline(&AcceleratorConfig::new(design, 8, bits));
                assert!(r.compute_bound(), "{design} at {bits} bits");
                assert!(r.bound_macs_per_s > 0.0 && r.bound_macs_per_s.is_finite());
            }
        }
        assert!(roofline(&AcceleratorConfig::new(Design::Ee, 8, 4)).compute_bound());
        for bits in [8u32, 16, 32] {
            let r = roofline(&AcceleratorConfig::new(Design::Ee, 8, bits));
            assert!(!r.compute_bound(), "EE starved at {bits} bits");
        }
    }

    #[test]
    fn bound_is_min_of_the_roofs() {
        let r = roofline(&AcceleratorConfig::new(Design::Oo, 4, 16));
        let bw_bound = r.ingress_bits_per_s * r.intensity_macs_per_bit;
        assert!((r.bound_macs_per_s - r.compute_roof_macs_per_s.min(bw_bound)).abs() < 1e-6);
    }

    #[test]
    fn intensity_falls_with_precision() {
        let narrow = roofline(&AcceleratorConfig::new(Design::Oo, 4, 4));
        let wide = roofline(&AcceleratorConfig::new(Design::Oo, 4, 32));
        assert!((narrow.intensity_macs_per_bit / wide.intensity_macs_per_bit - 8.0).abs() < 1e-9);
    }
}
