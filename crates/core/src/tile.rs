//! One PIXEL tile: weight register file + functional OMAC + fire path.
//!
//! Fig. 3: each OMAC tile holds an RF for filter weight storage and the
//! MAC unit; synapses are pre-loaded and neurons arrive as timed optical
//! firings. The tile here is the *functional* composition — it stores
//! weights in the electrical register file and computes windows through
//! the design's bit-true MAC engine.

use crate::config::AcceleratorConfig;
use crate::omac::{plane_engine_for, PlaneMac, WindowGroup};
use pixel_electronics::register::RegisterFile;

/// A functional PIXEL tile.
pub struct Tile {
    config: AcceleratorConfig,
    weights: RegisterFile,
    /// Register-file contents read back after the last load, so the hot
    /// fire path hands the engine a slice instead of re-reading (and
    /// re-allocating) the RF word-by-word per window.
    mirror: Vec<u64>,
    engine: Box<dyn PlaneMac>,
}

impl std::fmt::Debug for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tile")
            .field("config", &self.config)
            .field("weights", &self.weights.len())
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl Tile {
    /// Creates a tile with storage for `filter_size` synapse words.
    #[must_use]
    pub fn new(config: AcceleratorConfig, filter_size: usize) -> Self {
        let width = config.bits_per_lane.min(32);
        Self {
            config,
            weights: RegisterFile::new(filter_size, width),
            mirror: vec![0; filter_size],
            engine: plane_engine_for(&config),
        }
    }

    /// The tile's configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Pre-loads filter weights into the register file (paper: "the
    /// synapses are pre-loaded into the OMAC").
    ///
    /// # Panics
    ///
    /// Panics if more weights than the RF holds are supplied.
    pub fn load_weights(&mut self, weights: &[u64]) {
        self.weights.load(weights);
        // Mirror what the RF actually stores (its registers mask to the
        // configured width), not what the caller supplied.
        for (i, slot) in self.mirror.iter_mut().enumerate() {
            *slot = self.weights.read(i);
        }
    }

    /// Number of weights stored.
    #[must_use]
    pub fn filter_size(&self) -> usize {
        self.weights.len()
    }

    /// Computes one window: the inner product of the fired neurons
    /// against the pre-loaded weights, through the design's MAC engine.
    ///
    /// # Panics
    ///
    /// Panics if `neurons.len()` exceeds the stored filter size.
    #[must_use]
    pub fn fire(&self, neurons: &[u64]) -> u64 {
        assert!(
            neurons.len() <= self.weights.len(),
            "firing {} neurons into a {}-weight filter",
            neurons.len(),
            self.weights.len()
        );
        self.engine
            .inner_product(neurons, &self.mirror[..neurons.len()])
    }

    /// Computes one window against *streamed* weights instead of the
    /// resident filter — the time-multiplexing path when a fabric maps
    /// more filters than physical tiles onto the same datapath.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    #[must_use]
    pub fn fire_streamed(&self, neurons: &[u64], weights: &[u64]) -> u64 {
        assert_eq!(
            neurons.len(),
            weights.len(),
            "streamed weights must match the fired window"
        );
        self.engine.inner_product(neurons, weights)
    }

    /// Computes a whole bit-plane window group against the pre-loaded
    /// weights: `group.len()` windows advance together, 64 MACs per
    /// word-level engine operation. Results land in `out`, one sum per
    /// packed window, bitwise identical to firing each window through
    /// [`Self::fire`].
    ///
    /// # Panics
    ///
    /// Panics if the group's window size exceeds the stored filter size
    /// or its precision differs from the tile's.
    pub fn fire_planes(&self, group: &WindowGroup, out: &mut Vec<u64>) {
        assert!(
            group.window() <= self.weights.len(),
            "firing {} neuron positions into a {}-weight filter",
            group.window(),
            self.weights.len()
        );
        self.engine
            .inner_product_planes(group, &self.mirror[..group.window()], out);
    }

    /// [`Self::fire_planes`] against streamed weights — the
    /// time-multiplexing path, batched.
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the group's window size
    /// or the group's precision differs from the tile's.
    pub fn fire_planes_streamed(&self, group: &WindowGroup, weights: &[u64], out: &mut Vec<u64>) {
        assert_eq!(
            group.window(),
            weights.len(),
            "streamed weights must match the fired window"
        );
        self.engine.inner_product_planes(group, weights, out);
    }

    /// The MAC engine's name (design identification).
    #[must_use]
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    #[test]
    fn tile_computes_window_through_each_design() {
        for design in Design::ALL {
            let cfg = AcceleratorConfig::new(design, 4, 8);
            let mut tile = Tile::new(cfg, 8);
            tile.load_weights(&[1, 2, 3, 4, 5, 6, 7, 8]);
            let out = tile.fire(&[10, 20, 30, 40, 50, 60, 70, 80]);
            let expected: u64 = (1..=8u64).map(|i| i * i * 10).sum();
            assert_eq!(out, expected, "{design}");
        }
    }

    #[test]
    fn partial_window_uses_prefix_weights() {
        let mut tile = Tile::new(AcceleratorConfig::new(Design::Oe, 4, 8), 4);
        tile.load_weights(&[9, 9, 9, 9]);
        assert_eq!(tile.fire(&[1, 1]), 18);
    }

    #[test]
    fn streamed_weights_bypass_the_register_file() {
        let mut tile = Tile::new(AcceleratorConfig::new(Design::Oo, 4, 8), 4);
        tile.load_weights(&[9, 9, 9, 9]);
        assert_eq!(tile.fire_streamed(&[1, 2, 3, 4], &[5, 6, 7, 8]), 70);
        // The resident filter is untouched.
        assert_eq!(tile.fire(&[1, 1, 1, 1]), 36);
    }

    #[test]
    fn mirror_reflects_register_width_masking() {
        // 8-bit lanes → 8-bit registers: a 9-bit weight is masked on load,
        // and fire must see the masked value the RF stores.
        let mut tile = Tile::new(AcceleratorConfig::new(Design::Ee, 4, 8), 2);
        tile.load_weights(&[0x1FF, 1]);
        assert_eq!(tile.fire(&[1, 0]), 0xFF);
    }

    #[test]
    #[should_panic(expected = "firing")]
    fn overfiring_panics() {
        let tile = Tile::new(AcceleratorConfig::new(Design::Ee, 4, 8), 2);
        let _ = tile.fire(&[1, 2, 3]);
    }

    #[test]
    fn debug_shows_engine() {
        let tile = Tile::new(AcceleratorConfig::new(Design::Oo, 4, 8), 2);
        let dbg = format!("{tile:?}");
        assert!(dbg.contains("OO"));
        assert_eq!(tile.filter_size(), 2);
        assert!(tile.engine_name().contains("MZI"));
    }
}
