//! Layer-to-fabric mapping: how a CNN layer's windows are scheduled onto
//! OMAC tiles.
//!
//! Following §III-A, each OMAC implements one filter at a time and
//! processes its window inner products `lanes` elements per firing. This
//! module exposes the structural schedule (window counts, chunking,
//! rounds, utilization) that the latency model's throughput form
//! abstracts over.

use crate::config::AcceleratorConfig;
use pixel_dnn::layer::{Layer, LayerKind};

/// The schedule of one layer on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerMapping {
    /// Output windows (inner products) the layer computes: `E²·M` for
    /// convolutions, `N_out` for FC layers.
    pub windows: u64,
    /// MAC operations per window (`R²·C` or `N_in`).
    pub macs_per_window: u64,
    /// Lane-wide chunks needed per window.
    pub chunks_per_window: u64,
    /// Firing rounds over the whole fabric (each round runs one chunk on
    /// every tile).
    pub rounds: u64,
    /// Fraction of lane slots doing useful work in the final chunk of a
    /// window, in percent (100 = perfectly divisible).
    pub tail_utilization_pct: u8,
    /// Lane count the schedule was built for.
    pub lanes: u64,
}

impl LayerMapping {
    /// Builds the schedule of `layer` on `config`'s fabric.
    ///
    /// # Panics
    ///
    /// Panics if called on a pooling layer (no MACs to schedule).
    #[must_use]
    pub fn for_layer(config: &AcceleratorConfig, layer: &Layer) -> Self {
        let (windows, macs_per_window) = match layer.kind {
            LayerKind::Conv {
                filters, kernel, ..
            } => {
                let e = layer.output_feature_size() as u64;
                (
                    e * e * filters as u64,
                    (kernel * kernel * layer.input.c) as u64,
                )
            }
            LayerKind::Fc { outputs } => (outputs as u64, layer.input.elements() as u64),
            // lint:allow(P003) pooling layers are never scheduled on OMACs by the mapper
            LayerKind::Pool { .. } => panic!("pooling layers are not scheduled on OMACs"),
        };
        let lanes = config.lanes as u64;
        let chunks_per_window = macs_per_window.div_ceil(lanes);
        let total_chunks = windows * chunks_per_window;
        let rounds = total_chunks.div_ceil(config.tiles as u64);
        let tail = macs_per_window % lanes;
        let tail_utilization_pct = if tail == 0 {
            100
        } else {
            #[allow(clippy::cast_possible_truncation)]
            {
                (tail * 100 / lanes) as u8
            }
        };
        Self {
            windows,
            macs_per_window,
            chunks_per_window,
            rounds,
            tail_utilization_pct,
            lanes,
        }
    }

    /// Total scalar MACs in the layer.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.windows * self.macs_per_window
    }

    /// Average lane utilization across the whole layer, in percent:
    /// useful MACs over allocated lane slots.
    #[must_use]
    pub fn average_utilization_pct(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let useful = self.total_macs() as f64;
        #[allow(clippy::cast_precision_loss)]
        let slots = (self.windows * self.chunks_per_window * self.lanes) as f64;
        100.0 * useful / slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::layer::Shape;

    fn cfg(lanes: usize, tiles: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(Design::Oe, lanes, 8).with_tiles(tiles)
    }

    #[test]
    fn conv_mapping_counts() {
        // 3×3×8 kernels on a 10×10×8 input, 4 filters → E = 8.
        let layer = Layer::conv("c", Shape::square(10, 8), 4, 3, 1);
        let m = LayerMapping::for_layer(&cfg(4, 16), &layer);
        assert_eq!(m.windows, 8 * 8 * 4);
        assert_eq!(m.macs_per_window, 72);
        assert_eq!(m.chunks_per_window, 18);
        assert_eq!(m.total_macs(), 256 * 72);
        assert_eq!(m.rounds, (256u64 * 18).div_ceil(16));
        assert_eq!(m.tail_utilization_pct, 100);
    }

    #[test]
    fn fc_mapping_counts() {
        let layer = Layer::fc("f", 120, 84);
        let m = LayerMapping::for_layer(&cfg(8, 16), &layer);
        assert_eq!(m.windows, 84);
        assert_eq!(m.macs_per_window, 120);
        assert_eq!(m.chunks_per_window, 15);
    }

    #[test]
    fn tail_utilization_reflects_remainder() {
        // 10 macs per window on 4 lanes → last chunk uses 2/4 lanes.
        let layer = Layer::fc("f", 10, 3);
        let m = LayerMapping::for_layer(&cfg(4, 16), &layer);
        assert_eq!(m.chunks_per_window, 3);
        assert_eq!(m.tail_utilization_pct, 50);
        // 10 useful over 12 allocated slots.
        assert!((m.average_utilization_pct() - 1000.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pooling")]
    fn pool_layers_rejected() {
        use pixel_dnn::layer::PoolKind;
        let layer = Layer::pool("p", Shape::square(4, 1), 2, 2, PoolKind::Max);
        let _ = LayerMapping::for_layer(&cfg(4, 16), &layer);
    }

    #[test]
    fn more_lanes_fewer_chunks() {
        let layer = Layer::fc("f", 128, 1);
        let narrow = LayerMapping::for_layer(&cfg(4, 16), &layer);
        let wide = LayerMapping::for_layer(&cfg(16, 16), &layer);
        assert!(wide.chunks_per_window < narrow.chunks_per_window);
        assert_eq!(narrow.total_macs(), wide.total_macs());
    }
}
