//! Dataflow ablation: weight-stationary vs output-stationary mapping.
//!
//! PIXEL is weight-stationary: synapses are "pre-loaded into the OMAC"
//! (§III-C) and every neuron firing streams past them, so each weight
//! crosses the fabric once per layer while neurons are re-fired per
//! window. The alternative — output-stationary, where each tile owns an
//! output and weights stream instead — is what this module quantifies,
//! using the weight-streaming cost model: for convolutions, every weight
//! would have to be re-delivered per output position (`E²` times), which
//! is exactly why the paper pins weights.

use crate::config::AcceleratorConfig;
use crate::weight_streaming::energy_per_word;
use pixel_dnn::layer::{Layer, LayerKind};
use pixel_units::Energy;

/// Which operand stays pinned in the tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weights pinned; neurons stream (PIXEL's choice).
    WeightStationary,
    /// Outputs pinned; weights stream per output position.
    OutputStationary,
}

/// Data-movement traffic of one layer under a dataflow, in delivered
/// words.
#[must_use]
pub fn traffic_words(dataflow: Dataflow, layer: &Layer) -> u64 {
    let weights = layer.weight_count() as u64;
    match (dataflow, layer.kind) {
        // Weights cross once; neurons cross once per use (counted in the
        // comm model already) — weight traffic is the differentiator.
        (Dataflow::WeightStationary, _) => weights,
        (Dataflow::OutputStationary, LayerKind::Conv { .. }) => {
            // Each output position re-streams its kernel.
            let e = layer.output_feature_size() as u64;
            weights * e * e
        }
        // FC layers use each weight exactly once either way.
        (Dataflow::OutputStationary, _) => weights,
    }
}

/// Weight-movement energy of one layer under a dataflow.
#[must_use]
pub fn weight_movement_energy(
    config: &AcceleratorConfig,
    dataflow: Dataflow,
    layer: &Layer,
) -> Energy {
    #[allow(clippy::cast_precision_loss)]
    let words = traffic_words(dataflow, layer) as f64;
    energy_per_word(config) * words
}

/// The energy ratio output-stationary / weight-stationary for a network:
/// how much the paper's §III-C pre-loading decision saves on weight
/// traffic.
#[must_use]
pub fn dataflow_penalty(config: &AcceleratorConfig, network: &pixel_dnn::network::Network) -> f64 {
    let total = |dataflow| -> f64 {
        network
            .compute_layers()
            .map(|l| weight_movement_energy(config, dataflow, l).value())
            .sum()
    };
    total(Dataflow::OutputStationary) / total(Dataflow::WeightStationary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::layer::Shape;
    use pixel_dnn::zoo;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(Design::Oo, 4, 16)
    }

    #[test]
    fn conv_traffic_scales_with_output_positions() {
        let layer = Layer::conv("c", Shape::square(10, 4), 8, 3, 1);
        let ws = traffic_words(Dataflow::WeightStationary, &layer);
        let os = traffic_words(Dataflow::OutputStationary, &layer);
        assert_eq!(ws, 8 * 9 * 4);
        assert_eq!(os, ws * 8 * 8); // E = 8
    }

    #[test]
    fn fc_traffic_is_dataflow_invariant() {
        let layer = Layer::fc("f", 128, 10);
        assert_eq!(
            traffic_words(Dataflow::WeightStationary, &layer),
            traffic_words(Dataflow::OutputStationary, &layer)
        );
    }

    #[test]
    fn weight_stationary_wins_on_conv_networks() {
        // LeNet: its big conv3 has E = 1 (no reuse) yet the early convs
        // still make output-stationary several times more expensive.
        let penalty = dataflow_penalty(&cfg(), &zoo::lenet());
        assert!(penalty > 5.0, "penalty {penalty}");
        // VGG16's large feature maps make it far worse (FC1's one-shot
        // weights dilute the ratio, but convs dominate).
        let vgg = dataflow_penalty(&cfg(), &zoo::vgg16());
        assert!(vgg > 50.0, "penalty {vgg}");
    }

    #[test]
    fn movement_energy_is_linear_in_traffic() {
        let layer = Layer::conv("c", Shape::square(10, 4), 8, 3, 1);
        let ws = weight_movement_energy(&cfg(), Dataflow::WeightStationary, &layer);
        let os = weight_movement_energy(&cfg(), Dataflow::OutputStationary, &layer);
        assert!((os.value() / ws.value() - 64.0).abs() < 1e-9);
    }
}
