//! Failure injection: the OO design under receiver amplitude noise.
//!
//! The all-optical accumulator's output is a multi-level amplitude
//! signal, so it is the design most exposed to analog noise — the
//! comparator ladder must distinguish up to `bits` pulse levels. This
//! module runs the bit-true OO multiply with Gaussian amplitude noise
//! injected before the comparator and measures how often the decoded
//! product is wrong, validating (and bounding) the analytic
//! per-level error model in `pixel_photonics::noise`.

use crate::omac::OoMac;
use pixel_electronics::converter::AmplitudeConverter;
use pixel_photonics::mrr::DoubleMrrFilter;
use pixel_photonics::noise::AmplitudeNoise;
use pixel_photonics::signal::PulseTrain;
use pixel_units::rng::SplitMix64;

/// Outcome of a noisy multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisyOutcome {
    /// Decoded to the correct product.
    Correct,
    /// Decoded, but to a wrong value.
    SilentError,
    /// The comparator ladder flagged an over-range level (detected error).
    Detected,
}

/// A noisy variant of the OO optical multiply.
#[derive(Debug, Clone)]
pub struct NoisyOoMultiplier {
    bits: u32,
    filter: DoubleMrrFilter,
    chain: pixel_photonics::mzi::MziChain,
    converter: AmplitudeConverter,
    noise: AmplitudeNoise,
}

impl NoisyOoMultiplier {
    /// Creates a noisy multiplier at `bits` precision with per-slot
    /// amplitude noise `sigma` (pulse units).
    #[must_use]
    pub fn new(bits: u32, sigma: f64) -> Self {
        let clean = OoMac::new(1, bits);
        Self {
            bits,
            filter: DoubleMrrFilter::default(),
            chain: clean.chain().clone(),
            converter: AmplitudeConverter::new(bits),
            noise: AmplitudeNoise::new(sigma),
        }
    }

    /// Performs one noisy multiply, returning the decoded value
    /// (`None` when the comparator ladder flags over-range).
    pub fn noisy_product(&self, neuron: u64, synapse: u64, rng: &mut SplitMix64) -> Option<u64> {
        let train = PulseTrain::from_bits(neuron, self.bits as usize);
        let partials: Vec<PulseTrain> = (0..self.bits)
            .map(|j| self.filter.and(&train, (synapse >> j) & 1 == 1))
            .collect();
        let combined = self.chain.accumulate(&partials);
        let noisy = self.noise.perturb(&combined, || rng.next_f64());
        let amplitudes: Vec<f64> = noisy.iter().collect();
        self.converter.decode(&amplitudes).ok()
    }

    /// Performs one noisy multiply and classifies the outcome.
    pub fn multiply(&self, neuron: u64, synapse: u64, rng: &mut SplitMix64) -> NoisyOutcome {
        match self.noisy_product(neuron, synapse, rng) {
            None => NoisyOutcome::Detected,
            Some(v) if v == neuron * synapse => NoisyOutcome::Correct,
            Some(_) => NoisyOutcome::SilentError,
        }
    }
}

/// Aggregate statistics of a noise sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSweepPoint {
    /// Injected noise sigma (pulse units).
    pub sigma: f64,
    /// Fraction of multiplies decoded correctly.
    pub correct_rate: f64,
    /// Fraction decoded to a wrong value (undetected).
    pub silent_error_rate: f64,
    /// Fraction rejected by the ladder (detected).
    pub detected_rate: f64,
    /// Analytic per-slot level-error probability for this sigma.
    pub analytic_slot_error: f64,
}

/// Monte-Carlo sweep of OO multiply correctness vs noise sigma.
///
/// # Panics
///
/// Panics if `trials` is zero.
#[must_use]
pub fn noise_sweep(bits: u32, sigmas: &[f64], trials: u32, seed: u64) -> Vec<NoiseSweepPoint> {
    assert!(trials > 0, "need at least one trial");
    let limit = (1u64 << bits) - 1;
    sigmas
        .iter()
        .map(|&sigma| {
            let multiplier = NoisyOoMultiplier::new(bits, sigma);
            let mut rng = SplitMix64::seed_from_u64(seed);
            let mut correct = 0u32;
            let mut silent = 0u32;
            let mut detected = 0u32;
            for _ in 0..trials {
                let neuron = rng.range_u64(0, limit);
                let synapse = rng.range_u64(0, limit);
                match multiplier.multiply(neuron, synapse, &mut rng) {
                    NoisyOutcome::Correct => correct += 1,
                    NoisyOutcome::SilentError => silent += 1,
                    NoisyOutcome::Detected => detected += 1,
                }
            }
            let rate = |n: u32| f64::from(n) / f64::from(trials);
            NoiseSweepPoint {
                sigma,
                correct_rate: rate(correct),
                silent_error_rate: rate(silent),
                detected_rate: rate(detected),
                analytic_slot_error: AmplitudeNoise::new(sigma).level_error_probability(),
            }
        })
        .collect()
}

/// A [`MacEngine`](pixel_dnn::inference::MacEngine) wrapper running every multiply through the noisy OO
/// path — lets whole classification pipelines be evaluated under receiver
/// noise (accuracy vs sigma), not just isolated multiplies.
///
/// Interior mutability holds the RNG so the engine satisfies the
/// `&self`-based [`MacEngine`](pixel_dnn::inference::MacEngine) interface; decode failures (detected
/// errors) conservatively contribute zero to the window sum.
pub struct NoisyOoEngine {
    multiplier: NoisyOoMultiplier,
    rng: std::cell::RefCell<SplitMix64>,
}

impl NoisyOoEngine {
    /// Creates an engine at `bits` precision with noise `sigma`.
    #[must_use]
    pub fn new(bits: u32, sigma: f64, seed: u64) -> Self {
        Self {
            multiplier: NoisyOoMultiplier::new(bits, sigma),
            rng: std::cell::RefCell::new(SplitMix64::seed_from_u64(seed)),
        }
    }
}

impl pixel_dnn::inference::MacEngine for NoisyOoEngine {
    fn inner_product(&self, neurons: &[u64], synapses: &[u64]) -> u64 {
        let mut rng = self.rng.borrow_mut();
        neurons
            .iter()
            .zip(synapses)
            .map(|(&n, &s)| {
                // Detected over-range levels contribute zero (dropped term).
                self.multiplier
                    .noisy_product(n, s, &mut rng)
                    .unwrap_or_default()
            })
            .sum()
    }

    fn name(&self) -> &str {
        "OO with receiver noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_always_correct() {
        let points = noise_sweep(8, &[0.0], 200, 1);
        assert!((points[0].correct_rate - 1.0).abs() < 1e-12);
        assert_eq!(points[0].silent_error_rate, 0.0);
    }

    #[test]
    fn small_noise_is_absorbed_by_the_comparators() {
        // σ = 0.1 pulse units: per-slot error ~6e-7, word error over 8+
        // slots still ≪ 1%.
        let points = noise_sweep(8, &[0.1], 500, 2);
        assert!(points[0].correct_rate > 0.99, "{:?}", points[0]);
    }

    #[test]
    fn error_rate_grows_monotonically_with_sigma() {
        let points = noise_sweep(6, &[0.05, 0.2, 0.4], 400, 3);
        assert!(points[0].correct_rate >= points[1].correct_rate);
        assert!(points[1].correct_rate > points[2].correct_rate);
        assert!(points[2].correct_rate < 0.9, "heavy noise breaks decoding");
    }

    #[test]
    fn analytic_model_bounds_small_sigma_word_errors() {
        // Word error ≤ slots × per-slot error (union bound); verify the
        // Monte-Carlo rate respects it within statistical slack.
        let bits = 6u32;
        let sigma = 0.2;
        let points = noise_sweep(bits, &[sigma], 2_000, 4);
        let p = &points[0];
        let slots = 2.0 * f64::from(bits); // product occupies up to 2b slots
        let union_bound = slots * p.analytic_slot_error;
        let word_error = 1.0 - p.correct_rate;
        assert!(
            word_error < union_bound * 1.5 + 0.02,
            "word error {word_error} vs union bound {union_bound}"
        );
    }

    #[test]
    fn detected_errors_appear_at_high_sigma() {
        // Over-range levels (beyond the ladder) are detected, not silent.
        let points = noise_sweep(4, &[0.8], 400, 5);
        assert!(points[0].detected_rate > 0.0, "{:?}", points[0]);
    }

    #[test]
    fn noiseless_engine_is_exact() {
        use pixel_dnn::inference::{DirectMac, MacEngine};
        let engine = NoisyOoEngine::new(8, 0.0, 1);
        let n = [12u64, 200, 0, 77];
        let s = [3u64, 5, 9, 255];
        assert_eq!(
            engine.inner_product(&n, &s),
            DirectMac.inner_product(&n, &s)
        );
        assert!(engine.name().contains("noise"));
    }

    #[test]
    fn noisy_engine_degrades_gracefully() {
        use pixel_dnn::inference::{DirectMac, MacEngine};
        let clean = DirectMac.inner_product(&[10; 16], &[10; 16]);
        let engine = NoisyOoEngine::new(8, 0.2, 7);
        let noisy = engine.inner_product(&[10; 16], &[10; 16]);
        // Bounded relative error at moderate sigma.
        let rel = (noisy as f64 - clean as f64).abs() / clean as f64;
        assert!(rel < 0.3, "relative error {rel}");
    }
}
