//! Photonic weight pre-loading.
//!
//! §III-C(i): "While filter weights need to be pre-loaded to drive the
//! MRRs, photonics could also be utilized to send the weight information
//! on a specific channel to OMACs." The paper leaves this unevaluated;
//! this module models it: weights stream from an on-chip SRAM through an
//! E/O modulator onto a dedicated WDM channel per tile, are recovered at
//! the tile and latched into its register file. Reported per layer so the
//! setup phase can be compared against the compute phase it enables.

use crate::config::AcceleratorConfig;
use pixel_dnn::layer::Layer;
use pixel_dnn::network::Network;
use pixel_electronics::register::GATES_PER_FLIPFLOP;
use pixel_electronics::sram::SramMacro;
use pixel_electronics::technology::Technology;
use pixel_photonics::constants;
use pixel_units::{Energy, Time};

/// Cost of pre-loading one layer's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightLoadReport {
    /// Layer name.
    pub layer: String,
    /// Weight words streamed.
    pub words: usize,
    /// Total pre-load energy (SRAM read + modulation + detection + latch).
    pub energy: Energy,
    /// Pre-load latency at one word per tile-channel per electrical cycle.
    pub latency: Time,
}

/// Per-word streaming energy under `config`: SRAM read, MRR modulation of
/// `b` bits, receiver detection, register-file latch.
#[must_use]
pub fn energy_per_word(config: &AcceleratorConfig) -> Energy {
    let tech = Technology::bulk22lvt();
    let bits = f64::from(config.bits_per_lane);
    let sram = SramMacro::new(1024, config.bits_per_lane.min(64));
    let read = sram.access_energy(&tech);
    let modulate = constants::mrr_energy_per_bit() * (2.0 * bits);
    let detect = pixel_photonics::photodetector::Photodetector::default()
        .detection_energy(config.bits_per_lane as usize);
    let latch = tech.energy_per_gate_switch * (bits * GATES_PER_FLIPFLOP as f64);
    read + modulate + detect + latch
}

/// Pre-load cost of one layer: every weight word crosses the channel once.
#[must_use]
pub fn layer_weight_load(config: &AcceleratorConfig, layer: &Layer) -> WeightLoadReport {
    let words = layer.weight_count();
    #[allow(clippy::cast_precision_loss)]
    let energy = energy_per_word(config) * words as f64;
    // One word per tile channel per electrical cycle.
    let cycles = words.div_ceil(config.tiles) as f64;
    WeightLoadReport {
        layer: layer.name.clone(),
        words,
        energy,
        latency: Time::new(cycles * config.clocks.electrical_period()),
    }
}

/// Pre-load cost of a whole network (compute layers only).
#[must_use]
pub fn network_weight_load(config: &AcceleratorConfig, network: &Network) -> Vec<WeightLoadReport> {
    network
        .compute_layers()
        .map(|l| layer_weight_load(config, l))
        .collect()
}

/// Totals across a network: `(total_energy, total_latency, total_words)`.
#[must_use]
pub fn totals(reports: &[WeightLoadReport]) -> (Energy, Time, usize) {
    (
        reports.iter().map(|r| r.energy).sum(),
        reports.iter().map(|r| r.latency).sum(),
        reports.iter().map(|r| r.words).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(Design::Oo, 4, 16)
    }

    #[test]
    fn word_energy_is_dominated_by_modulation() {
        let e = energy_per_word(&cfg());
        // 2 rings × 100 fJ × 16 bits = 3.2 pJ; the rest is sub-pJ.
        assert!(e.as_picojoules() > 3.0 && e.as_picojoules() < 10.0, "{e}");
    }

    #[test]
    fn layer_load_counts_weights() {
        let net = zoo::lenet();
        let conv1 = net.layers().iter().find(|l| l.name == "Conv1").unwrap();
        let r = layer_weight_load(&cfg(), conv1);
        assert_eq!(r.words, 6 * 25);
        assert!(r.energy.value() > 0.0 && r.latency.value() > 0.0);
    }

    #[test]
    fn network_totals_sum_layers() {
        let reports = network_weight_load(&cfg(), &zoo::lenet());
        assert_eq!(reports.len(), 5);
        let (e, t, w) = totals(&reports);
        assert_eq!(w, zoo::lenet().total_weights());
        assert!(e.value() > 0.0 && t.value() > 0.0);
    }

    #[test]
    fn preload_is_small_next_to_compute_for_conv_nets() {
        // Convolutional reuse: weights are loaded once but used E² times,
        // so pre-load energy must be a small fraction of compute energy.
        let config = cfg();
        let net = zoo::vgg16();
        let (pre_e, pre_t, _) = totals(&network_weight_load(&config, &net));
        let compute = Accelerator::new(config).evaluate(&net);
        assert!(
            pre_e.value() < 0.01 * compute.total_energy().value(),
            "pre-load {} vs compute {}",
            pre_e.as_millijoules(),
            compute.total_energy().as_millijoules()
        );
        assert!(pre_t.value() < 0.05 * compute.total_latency().value());
    }

    #[test]
    fn fc_heavy_layers_pay_more_preload_per_compute() {
        // FC weights are used once each — pre-load matters relatively more.
        let config = cfg();
        let net = zoo::vgg16();
        let conv = net.layers().iter().find(|l| l.name == "Conv2").unwrap();
        let fc = net.layers().iter().find(|l| l.name == "FC2").unwrap();
        let conv_ratio =
            layer_weight_load(&config, conv).words as f64 / (conv.output_shape().elements() as f64);
        let fc_ratio =
            layer_weight_load(&config, fc).words as f64 / (fc.output_shape().elements() as f64);
        assert!(fc_ratio > conv_ratio);
    }
}
