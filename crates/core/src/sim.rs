//! Discrete schedule simulation of the fabric.
//!
//! The analytic latency model (`crate::latency`) assumes the fabric is
//! perfectly service-bound: every tile always has a chunk to chew on.
//! This module computes the exact schedule of a layer instead —
//! round-robin chunk issue with a bounded front-end issue width, uniform
//! per-chunk service, and an optional weight-reload stall whenever a tile
//! switches to a new window's filter column — and reports where the
//! analytic model's assumption holds and where issue bandwidth or reload
//! stalls dominate.
//!
//! Service and issue are deterministic and uniform, so the schedule has a
//! closed form per tile; the "simulation" is exact without stepping
//! cycle by cycle (which would be infeasible for VGG16-scale layers).

use crate::config::AcceleratorConfig;
use crate::latency::cycles_per_firing;
use crate::mapping::LayerMapping;
use pixel_dnn::layer::Layer;
use pixel_units::Time;

/// Front-end parameters of the schedule simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Chunks the electrical front end can issue per cycle across the
    /// whole fabric.
    pub issue_width: usize,
    /// Stall cycles when a tile switches windows (weight column reload
    /// from the register file).
    pub window_switch_stall: u64,
}

impl SimConfig {
    /// An ideal front end: issue never binds, no reload stalls — the
    /// analytic model's assumptions.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            issue_width: usize::MAX,
            window_switch_stall: 0,
        }
    }

    /// A realistic front end: 4 chunks issued per cycle, 1-cycle window
    /// switch.
    #[must_use]
    pub fn realistic() -> Self {
        Self {
            issue_width: 4,
            window_switch_stall: 1,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

/// Result of simulating one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total chunks executed.
    pub chunks: u64,
    /// Completion time in electrical cycles.
    pub cycles: u64,
    /// Aggregate busy tile-cycles (service only).
    pub busy_tile_cycles: u64,
    /// Fabric utilization: busy tile-cycles over `tiles × cycles`.
    pub utilization: f64,
    /// True when the front end, not tile service, set the pace.
    pub issue_bound: bool,
}

impl SimResult {
    /// Completion time as wall-clock under `config`'s electrical clock.
    #[must_use]
    pub fn latency(&self, config: &AcceleratorConfig) -> Time {
        #[allow(clippy::cast_precision_loss)]
        Time::new(self.cycles as f64 * config.clocks.electrical_period())
    }
}

/// Simulates one layer's schedule exactly.
///
/// # Panics
///
/// Panics if called on a pooling layer.
#[must_use]
pub fn simulate_layer(config: &AcceleratorConfig, sim: &SimConfig, layer: &Layer) -> SimResult {
    let mapping = LayerMapping::for_layer(config, layer);
    // Total chunks, scaled by the native-word packing the latency model
    // uses (each chunk re-fires native/b times).
    let packing = (f64::from(config.native_bits) / config.b()).max(1.0);
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let chunks = ((mapping.windows * mapping.chunks_per_window) as f64 * packing).ceil() as u64;

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let service = cycles_per_firing(config) as u64;
    let tiles = config.tiles as u64;

    // Per-chunk cost on a tile, including the amortized window-switch
    // stall (one switch every `chunks_per_window` chunks).
    let switches_per_tile = chunks
        .div_ceil(mapping.chunks_per_window.max(1))
        .div_ceil(tiles);

    // Round-robin distribution: the most loaded tile runs ⌈chunks/tiles⌉.
    let max_chunks_on_a_tile = chunks.div_ceil(tiles);
    let service_bound =
        max_chunks_on_a_tile * service + switches_per_tile * sim.window_switch_stall;

    // Issue bound: the front end feeds `issue_width` chunks per cycle.
    let issue_bound_cycles = if sim.issue_width == usize::MAX {
        0
    } else {
        chunks.div_ceil(sim.issue_width as u64)
    };

    let cycles = service_bound.max(issue_bound_cycles).max(1);
    let busy_tile_cycles = chunks * service;
    #[allow(clippy::cast_precision_loss)]
    let utilization = busy_tile_cycles as f64 / (tiles * cycles) as f64;

    if pixel_obs::enabled() {
        pixel_obs::add("sim.layers", 1);
        pixel_obs::add("sim.chunks_issued", chunks);
        pixel_obs::add(
            "sim.reload_stall_cycles",
            switches_per_tile * sim.window_switch_stall,
        );
        pixel_obs::add(
            "sim.issue_bound_layers",
            u64::from(issue_bound_cycles > service_bound),
        );
        pixel_obs::gauge("sim.last_utilization", utilization.min(1.0));
    }

    SimResult {
        chunks,
        cycles,
        busy_tile_cycles,
        utilization: utilization.min(1.0),
        issue_bound: issue_bound_cycles > service_bound,
    }
}

/// Simulates every compute layer of a network and sums completion times.
#[must_use]
pub fn simulate_network(
    config: &AcceleratorConfig,
    sim: &SimConfig,
    network: &pixel_dnn::network::Network,
) -> (Vec<SimResult>, Time) {
    let _span = pixel_obs::span("simulate_network");
    let results: Vec<SimResult> = network
        .compute_layers()
        .map(|l| simulate_layer(config, sim, l))
        .collect();
    let total = results
        .iter()
        .map(|r| r.latency(config))
        .fold(Time::ZERO, |a, b| a + b);
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn cfg(design: Design) -> AcceleratorConfig {
        AcceleratorConfig::new(design, 4, 8)
    }

    #[test]
    fn ideal_sim_matches_analytic_latency_model() {
        // Under ideal front-end assumptions the exact schedule reproduces
        // the analytic firings × cycles form (up to ceil effects ≤ a few
        // percent on real layers).
        for design in Design::ALL {
            let config = cfg(design);
            let net = zoo::lenet();
            let (_, sim_total) = simulate_network(&config, &SimConfig::ideal(), &net);
            let analytic = Accelerator::new(config).evaluate(&net).total_latency();
            // The analytic model adds activation streaming cycles; sim
            // counts MAC work only, so compare MAC-dominated totals.
            let ratio = sim_total / analytic;
            assert!(
                (0.7..=1.1).contains(&ratio),
                "{design}: sim {} vs analytic {} (ratio {ratio})",
                sim_total.as_millis(),
                analytic.as_millis()
            );
        }
    }

    #[test]
    fn ideal_utilization_is_near_full_for_large_layers() {
        let net = zoo::zfnet();
        let conv2 = net.layers().iter().find(|l| l.name == "Conv2").unwrap();
        let r = simulate_layer(&cfg(Design::Oo), &SimConfig::ideal(), conv2);
        assert!(r.utilization > 0.95, "utilization {}", r.utilization);
        assert!(!r.issue_bound);
    }

    #[test]
    fn narrow_issue_width_binds_fast_designs() {
        // OO at 8 bits services a chunk in 4 cycles; with 16 tiles the
        // fabric drains 4 chunks/cycle — an issue width of 1 must bind.
        let net = zoo::zfnet();
        let conv2 = net.layers().iter().find(|l| l.name == "Conv2").unwrap();
        let starved = SimConfig {
            issue_width: 1,
            window_switch_stall: 0,
        };
        let r = simulate_layer(&cfg(Design::Oo), &starved, conv2);
        assert!(r.issue_bound);
        let ideal = simulate_layer(&cfg(Design::Oo), &SimConfig::ideal(), conv2);
        assert!(r.cycles > ideal.cycles);
        assert!(r.utilization < ideal.utilization);
    }

    #[test]
    fn window_switch_stalls_add_cycles() {
        let net = zoo::lenet();
        let conv1 = net.layers().iter().find(|l| l.name == "Conv1").unwrap();
        let smooth = simulate_layer(&cfg(Design::Oe), &SimConfig::ideal(), conv1);
        let stally = SimConfig {
            issue_width: usize::MAX,
            window_switch_stall: 8,
        };
        let r = simulate_layer(&cfg(Design::Oe), &stally, conv1);
        assert!(r.cycles > smooth.cycles);
        assert_eq!(r.chunks, smooth.chunks);
    }

    #[test]
    fn realistic_front_end_on_default_fabric_is_mostly_service_bound() {
        // 4 chunks/cycle feeds 16 tiles with ≥4-cycle service: not bound.
        let net = zoo::lenet();
        let (results, _) = simulate_network(&cfg(Design::Oe), &SimConfig::realistic(), &net);
        assert!(results.iter().all(|r| !r.issue_bound));
    }

    #[test]
    fn tiny_layer_edge_case() {
        // LeNet FC2: 10 windows of 84 MACs on a 16-tile fabric.
        let net = zoo::lenet();
        let fc2 = net.layers().iter().find(|l| l.name == "FC2").unwrap();
        let r = simulate_layer(&cfg(Design::Ee), &SimConfig::ideal(), fc2);
        assert!(r.cycles >= 1);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }
}
