//! Calibrated model constants, with provenance.
//!
//! The paper gives device-level anchors (100 fJ/bit MRRs, 32.4 fJ/bit
//! MZIs, the Bulk22LVT CLA example) but not the full coefficient set
//! behind its absolute energy numbers. Fitting the per-operation model of
//! [`crate::energy`] to **Table II** (ResNet-34 / GoogLeNet / ZFNet at
//! 4 lanes, 16 bits/lane) pins every coefficient; the same constants then
//! reproduce all three CNN rows within a few percent, because every
//! Table II column scales exactly with the §IV-B op counts.
//!
//! Notable consistency check: the fitted optical multiply coefficient
//! comes out at 99.7 fJ per ring per bit-slot — the paper's own cited
//! device figure of ≈100 fJ/bit (§II-A1), which we adopt exactly.
//!
//! All values are per *operation* as counted by `pixel_dnn::analysis`
//! (one `mul` = one full-word scalar multiply, etc.).

use pixel_units::Energy;

/// Energy coefficient of an EE bit-serial multiply: `E = K·b²`
/// (b serial cycles × b gated bits per cycle). Fitted: 3634 mJ /
/// 3.664 G multiplies at b = 16 ⇒ 0.992 nJ per multiply.
pub const K_EE_MUL_PJ_PER_BIT2: f64 = 3.8748;

/// Drive energy per microring per bit-slot \[pJ\]: the paper's cited
/// ≈100 fJ/bit device (§II-A1). An optical multiply streams b bits for
/// b cycles through a double (2-ring) filter: `E = 2·K·b²`.
pub const K_MRR_PJ_PER_BIT: f64 = 0.1;

/// EE CLA accumulate energy per add operation per operand bit \[pJ\].
/// Fitted: 847 mJ / 3.668 G adds at b = 16.
pub const K_EE_ADD_PJ_PER_BIT: f64 = 14.434;

/// OE electrical accumulate overhead relative to EE (Table II: 910/847 —
/// the receiver-side deserialization widens the accumulate path).
pub const OE_ADD_FACTOR: f64 = 1.0744;

/// Fixed part of an OO add: the per-word cost of driving the MZI
/// accumulator chain and resolving its multi-level output \[pJ\]. Fitted:
/// 420 mJ / 3.668 G adds at b = 16, minus the per-bit MZI term.
pub const K_OO_ADD_FIXED_PJ: f64 = 114.0;

/// MZI modulation energy per bit-slot \[pJ\] (§IV-A2: 32.4 fJ/bit).
pub const K_MZI_PJ_PER_BIT: f64 = 0.0324;

/// Activation-function energy per evaluation per bit \[pJ\]. Fitted jointly
/// on ResNet-34 (1.09 mJ / 4.00 M) and ZFNet (34.2 mJ / 120 M) at b = 16.
pub const K_ACT_PJ_PER_BIT: f64 = 17.4;

/// Fixed per-word optical-to-electrical conversion cost \[pJ\]
/// (photodiode + TIA settle + framing).
pub const K_OE_CONV_FIXED_PJ: f64 = 40.0;

/// Per-bit o/e conversion cost \[pJ\]. Together with the fixed part this
/// fits Table II's 227 mJ / 3.664 G conversions at b = 16 (62 pJ/word).
pub const K_OE_CONV_PJ_PER_BIT: f64 = 1.3727;

/// Electrical link energy per bit per direction \[pJ\]. Fitted: 139 mJ of
/// EE communication = in + out over 3.664 G words of 16 bits.
pub const K_LINK_E_PJ_PER_BIT: f64 = 1.1857;

/// Photonic link energy per bit (inbound neuron firing) \[pJ\]. Fitted so
/// optical communication is 118/139 of electrical (Table II).
pub const K_LINK_O_PJ_PER_BIT: f64 = 0.8270;

/// Fixed per-word laser energy \[pJ\] (turn-on / bias share per firing).
pub const K_LASER_FIXED_PJ: f64 = 10.0;

/// Per-bit laser energy \[pJ\]. With the fixed part, fits Table II's
/// 59.8 mJ over 3.664 G words of 16 bits (16.3 pJ/word) for OE.
pub const K_LASER_PJ_PER_BIT: f64 = 0.3952;

/// OO laser power premium over OE (Table II: 91.0/59.8): the MZI chain
/// adds optical path loss the laser must overcome.
pub const LASER_OO_FACTOR: f64 = 1.5217;

/// Pipeline issue/drain cycles per firing round (electrical front end).
pub const PIPELINE_CYCLES: f64 = 3.0;

/// EE datapath throughput in cycles per operand bit: the baseline's
/// unrolled STR datapath retires ≈3 synapse bits per electrical cycle.
/// Fitted to Fig. 9's reported gaps (OO 31.9% faster than EE, 18.6%
/// faster than OE on ZFNet Conv2 at 8 lanes / 8 bits per lane).
pub const EE_CYCLES_PER_BIT: f64 = 0.35;

/// Re-synchronization cost \[electrical cycles\] for every optical pulse
/// chunk beyond the first: when more than `f_o/f_e` pulses must be
/// "clumped" into one electrical envelope (§V-B2), the receiver drains
/// and re-arms, costing a conversion-pipeline flush.
pub const RESYNC_CYCLES: f64 = 6.0;

/// Lane-width factor on electrical accumulates: accumulating `lanes`
/// products needs an adder of `2b + ⌈log₂ lanes⌉` bits; the model is
/// calibrated at the Table II configuration (4 lanes).
#[must_use]
pub fn lane_width_factor(lanes: usize, bits: u32) -> f64 {
    let lane_bits = if lanes <= 1 {
        0
    } else {
        usize::BITS - (lanes - 1).leading_zeros()
    };
    let b = f64::from(bits);
    (2.0 * b + f64::from(lane_bits)) / (2.0 * b + 2.0)
}

/// Convenience: picojoules as [`Energy`].
#[must_use]
pub fn pj(value: f64) -> Energy {
    Energy::from_picojoules(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_factor_is_one_at_calibration_point() {
        assert!((lane_width_factor(4, 16) - 1.0).abs() < 1e-12);
        assert!((lane_width_factor(4, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lane_factor_grows_with_lanes_and_shrinks_with_bits() {
        assert!(lane_width_factor(16, 16) > lane_width_factor(4, 16));
        assert!(lane_width_factor(16, 32) < lane_width_factor(16, 8));
        assert!(lane_width_factor(1, 16) < 1.0);
    }

    #[test]
    fn fitted_per_word_values_match_table_ii() {
        // o/e: 40 + 16·1.3727 ≈ 62 pJ/word (227 mJ / 3.664 G).
        let oe = K_OE_CONV_FIXED_PJ + 16.0 * K_OE_CONV_PJ_PER_BIT;
        assert!((oe - 61.96).abs() < 0.1, "{oe}");
        // laser: 10 + 16·0.3952 ≈ 16.3 pJ/word (59.8 mJ / 3.664 G).
        let laser = K_LASER_FIXED_PJ + 16.0 * K_LASER_PJ_PER_BIT;
        assert!((laser - 16.32).abs() < 0.05, "{laser}");
    }

    #[test]
    fn optical_multiply_matches_cited_device() {
        // 2 rings × 100 fJ × 16² slots = 51.2 pJ ⇒ 5.2% of the 0.992 nJ
        // EE multiply — the paper's 94.9% improvement claim.
        let opt = 2.0 * K_MRR_PJ_PER_BIT * 256.0;
        let ee = K_EE_MUL_PJ_PER_BIT2 * 256.0;
        let ratio = opt / ee;
        assert!((ratio - 0.0516).abs() < 0.002, "{ratio}");
    }
}
