//! Batched-inference throughput.
//!
//! Single-image latency (Fig. 8/9) leaves the fabric idle between layer
//! drains. With a batch, layer `k` of image `i+1` can start as soon as
//! layer `k`'s tiles free up, so steady-state throughput is set by the
//! *sum of layer service times* rather than per-image fill/drain. This
//! module computes inferences/second at a given batch size and the
//! batch's energy (energy is batch-invariant: the same work is done).

use crate::accelerator::{Accelerator, NetworkReport};
use crate::config::AcceleratorConfig;
use pixel_dnn::network::Network;
use pixel_units::{Energy, Time};

/// Throughput report for batched inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Batch size.
    pub batch: usize,
    /// Time to finish the whole batch.
    pub batch_latency: Time,
    /// Steady-state inferences per second.
    pub inferences_per_second: f64,
    /// Energy per inference (batch-invariant).
    pub energy_per_inference: Energy,
}

/// Service time and dynamic energy of one batch — the quantity the
/// serving simulator charges per dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchService {
    /// Batch size.
    pub batch: usize,
    /// Wall-clock service time of the whole batch.
    pub latency: Time,
    /// Dynamic energy of the whole batch (batch × per-inference energy).
    pub energy: Energy,
}

/// Batch completion time from an evaluated network report: the first
/// image pays the full layer-by-layer fill latency, each subsequent
/// image adds only the bottleneck stage time.
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn batch_latency(report: &NetworkReport, batch: usize) -> Time {
    assert!(batch > 0, "batch must be non-empty");
    let fill = report.total_latency();
    let bottleneck = report
        .layers
        .iter()
        .map(|l| l.latency)
        .fold(Time::ZERO, Time::max);
    #[allow(clippy::cast_precision_loss)]
    let extra = (batch - 1) as f64;
    fill + bottleneck * extra
}

/// Pipeline fill: the first image pays the full layer-by-layer latency;
/// each subsequent image adds only the bottleneck stage time.
#[must_use]
pub fn batched(config: &AcceleratorConfig, network: &Network, batch: usize) -> ThroughputReport {
    let report: NetworkReport = Accelerator::new(*config).evaluate(network);
    let latency = batch_latency(&report, batch);
    #[allow(clippy::cast_precision_loss)]
    let throughput = batch as f64 / latency.value();
    ThroughputReport {
        batch,
        batch_latency: latency,
        inferences_per_second: throughput,
        energy_per_inference: report.total_energy(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(Design::Oo, 4, 16)
    }

    #[test]
    fn batch_of_one_is_single_image_latency() {
        let net = zoo::zfnet();
        let single = Accelerator::new(cfg()).evaluate(&net).total_latency();
        let t = batched(&cfg(), &net, 1);
        assert!((t.batch_latency.value() - single.value()).abs() < 1e-15);
    }

    #[test]
    fn throughput_improves_with_batch_then_saturates() {
        let net = zoo::zfnet();
        let t1 = batched(&cfg(), &net, 1).inferences_per_second;
        let t8 = batched(&cfg(), &net, 8).inferences_per_second;
        let t64 = batched(&cfg(), &net, 64).inferences_per_second;
        let t512 = batched(&cfg(), &net, 512).inferences_per_second;
        assert!(t8 > t1);
        assert!(t64 > t8);
        // Saturation: going 64 → 512 gains less than 25%.
        assert!(t512 / t64 < 1.25, "t512/t64 = {}", t512 / t64);
    }

    #[test]
    fn steady_state_rate_is_bottleneck_bound() {
        let net = zoo::zfnet();
        let report = Accelerator::new(cfg()).evaluate(&net);
        let bottleneck = report
            .layers
            .iter()
            .map(|l| l.latency.value())
            .fold(0.0f64, f64::max);
        let t = batched(&cfg(), &net, 10_000);
        let asymptote = 1.0 / bottleneck;
        assert!(
            (t.inferences_per_second - asymptote).abs() / asymptote < 0.05,
            "rate {} vs asymptote {asymptote}",
            t.inferences_per_second
        );
    }

    #[test]
    fn energy_per_inference_is_batch_invariant() {
        let net = zoo::lenet();
        let a = batched(&cfg(), &net, 1).energy_per_inference;
        let b = batched(&cfg(), &net, 100).energy_per_inference;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn zero_batch_rejected() {
        let _ = batched(&cfg(), &zoo::lenet(), 0);
    }

    #[test]
    fn batch_service_matches_the_direct_throughput_path() {
        let ctx = crate::model::EvalContext::new();
        let net = zoo::zfnet();
        for batch in [1usize, 8, 64] {
            let direct = batched(&cfg(), &net, batch);
            let service = ctx.batch_service(&cfg(), &net, batch);
            assert_eq!(service.batch, batch);
            assert_eq!(service.latency, direct.batch_latency);
            #[allow(clippy::cast_precision_loss)]
            let expect = direct.energy_per_inference * batch as f64;
            assert_eq!(service.energy, expect);
        }
    }
}
