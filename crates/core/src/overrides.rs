//! Model overrides for sensitivity / ablation studies.
//!
//! The evaluation models read their coefficients from
//! [`crate::calibration`]; an [`ModelOverrides`] value scales or replaces
//! the ones DESIGN.md flags as uncertain, so the ablation benches can ask
//! "how much does the conclusion depend on this constant?".

/// Multiplicative and absolute overrides on the calibrated model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOverrides {
    /// Scale on the MRR drive energy (1.0 = the 100 fJ/bit device; 5.0 =
    /// the paper's 500 fJ worked example).
    pub mrr_energy_scale: f64,
    /// Scale on the OO design's fixed per-word accumulation cost.
    pub oo_add_fixed_scale: f64,
    /// Scale on the o/e conversion cost (fixed and per-bit parts).
    pub oe_conversion_scale: f64,
    /// Receiver re-synchronization cost in electrical cycles per extra
    /// optical chunk (calibrated: 6).
    pub resync_cycles: f64,
    /// EE datapath throughput in cycles per operand bit (calibrated: 0.35).
    pub ee_cycles_per_bit: f64,
}

impl ModelOverrides {
    /// The calibrated model (all scales 1.0, calibrated cycle costs).
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            mrr_energy_scale: 1.0,
            oo_add_fixed_scale: 1.0,
            oe_conversion_scale: 1.0,
            resync_cycles: crate::calibration::RESYNC_CYCLES,
            ee_cycles_per_bit: crate::calibration::EE_CYCLES_PER_BIT,
        }
    }

    /// The paper's §IV-C worked-example MRR energy (500 fJ/bit).
    #[must_use]
    pub fn worked_example_mrr() -> Self {
        Self {
            mrr_energy_scale: 5.0,
            ..Self::calibrated()
        }
    }

    /// Returns a copy with a different re-synchronization cost.
    #[must_use]
    pub fn with_resync(mut self, cycles: f64) -> Self {
        self.resync_cycles = cycles;
        self
    }

    /// Returns a copy with a different MRR energy scale.
    #[must_use]
    pub fn with_mrr_scale(mut self, scale: f64) -> Self {
        self.mrr_energy_scale = scale;
        self
    }
}

impl Default for ModelOverrides {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_is_identity() {
        let o = ModelOverrides::calibrated();
        assert!((o.mrr_energy_scale - 1.0).abs() < 1e-12);
        assert!((o.resync_cycles - 6.0).abs() < 1e-12);
        assert_eq!(o, ModelOverrides::default());
    }

    #[test]
    fn builders() {
        let o = ModelOverrides::calibrated()
            .with_resync(2.0)
            .with_mrr_scale(5.0);
        assert!((o.resync_cycles - 2.0).abs() < 1e-12);
        assert!((o.mrr_energy_scale - 5.0).abs() < 1e-12);
        assert!((ModelOverrides::worked_example_mrr().mrr_energy_scale - 5.0).abs() < 1e-12);
    }
}
