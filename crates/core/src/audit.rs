//! Activity audit: counted device activity vs the analytic activity
//! factors the energy model assumes.
//!
//! The analytic energy model charges switching energy proportional to
//! *activity factors* — what fraction of streamed slots carry a one
//! (lit rate, driving static gating/detection energy) and how often
//! adjacent slots transition (toggle rate, driving dynamic CV² energy).
//! For uniformly random `b`-bit operands those factors have closed
//! forms per design:
//!
//! * **EE** — Stripes streams each synapse word bit-serially; adjacent
//!   slots are independent fair bits, so lit rate = 1/2 and toggle
//!   rate = 1/2.
//! * **OE / OO** — each partial-product train is the neuron word gated
//!   by one synapse bit. A slot is lit iff both its neuron bit and the
//!   gate are one: lit rate = 1/4. Adjacent slots *share* the gate, so
//!   a pair toggles iff the gate is one and the neuron bits differ:
//!   toggle rate = 1/4 (not the naive `2·p·(1−p) = 3/8` an independent
//!   model would predict — the audit exists to catch exactly this kind
//!   of correlation).
//!
//! [`activity_audit`] runs random inner products through the bit-true
//! functional MACs, reads the counted [`crate::omac::ActivityCounter`] tallies, and
//! reports counted vs analytic rates with relative errors. It is a
//! `reproduce` artifact (`reproduce audit`) and an integration-tested
//! invariant: the simulation's measured activity must match what the
//! model multiplies by.

use crate::config::{AcceleratorConfig, Design};
use pixel_units::rng::SplitMix64;

/// Counted-vs-analytic activity of one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityAuditRow {
    /// Design audited.
    pub design: Design,
    /// Slots measured by the functional execution.
    pub slots: u64,
    /// Counted fraction of lit slots.
    pub counted_lit_rate: f64,
    /// Closed-form lit rate for uniform operands.
    pub analytic_lit_rate: f64,
    /// Counted fraction of toggling adjacent-slot pairs.
    pub counted_toggle_rate: f64,
    /// Closed-form toggle rate for uniform operands.
    pub analytic_toggle_rate: f64,
}

impl ActivityAuditRow {
    /// Relative error of the counted lit rate vs the closed form.
    #[must_use]
    pub fn lit_rel_error(&self) -> f64 {
        rel_error(self.counted_lit_rate, self.analytic_lit_rate)
    }

    /// Relative error of the counted toggle rate vs the closed form.
    #[must_use]
    pub fn toggle_rel_error(&self) -> f64 {
        rel_error(self.counted_toggle_rate, self.analytic_toggle_rate)
    }
}

fn rel_error(counted: f64, analytic: f64) -> f64 {
    (counted - analytic).abs() / analytic
}

/// Closed-form (lit, toggle) activity factors for uniform operands,
/// dispatched through the design's [`crate::model::DesignModel`]
/// backend (where the per-design reasoning lives).
#[must_use]
pub fn analytic_activity(design: Design) -> (f64, f64) {
    design.model().analytic_activity()
}

/// Audits every design: runs `windows` random inner products of
/// `window_len` uniform `bits`-bit operands through the functional MAC
/// and compares counted lit/toggle rates against the closed forms.
///
/// # Panics
///
/// Panics if `windows` or `window_len` is zero, or if `window_len` is
/// not a multiple of `lanes` (partial chunks would zero-pad the lanes
/// and bias the counted rates with artificial dark slots).
#[must_use]
pub fn activity_audit(
    lanes: usize,
    bits: u32,
    windows: usize,
    window_len: usize,
    seed: u64,
) -> Vec<ActivityAuditRow> {
    assert!(windows > 0 && window_len > 0, "audit needs work to measure");
    assert!(
        lanes > 0 && window_len.is_multiple_of(lanes),
        "window_len must fill whole lane chunks"
    );
    let limit = (1u64 << bits) - 1;
    Design::ALL
        .iter()
        .map(|&design| {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let config = AcceleratorConfig::new(design, lanes, bits);
            let mac = design.model().functional_engine(&config);
            for _ in 0..windows {
                let n: Vec<u64> = (0..window_len).map(|_| rng.range_u64(0, limit)).collect();
                let s: Vec<u64> = (0..window_len).map(|_| rng.range_u64(0, limit)).collect();
                let _ = mac.inner_product(&n, &s);
            }
            let activity = mac.activity();
            let (lit, toggle) = analytic_activity(design);
            ActivityAuditRow {
                design,
                slots: activity.gated_slots(),
                counted_lit_rate: activity.lit_rate(),
                analytic_lit_rate: lit,
                counted_toggle_rate: activity.toggle_rate(),
                analytic_toggle_rate: toggle,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_rates_match_closed_forms_for_every_design() {
        // 200 windows × 16 operands at 8 bits gives ≥25k measured slots
        // per design; sampling error on the rates is well under 3%.
        for row in activity_audit(4, 8, 200, 16, 0xA0D1) {
            assert!(row.slots > 10_000, "{row:?}");
            assert!(
                row.lit_rel_error() < 0.03,
                "{} lit {} vs {}",
                row.design,
                row.counted_lit_rate,
                row.analytic_lit_rate
            );
            assert!(
                row.toggle_rel_error() < 0.03,
                "{} toggle {} vs {}",
                row.design,
                row.counted_toggle_rate,
                row.analytic_toggle_rate
            );
        }
    }

    #[test]
    fn audit_covers_all_three_designs_in_order() {
        let rows = activity_audit(4, 4, 10, 8, 1);
        let designs: Vec<Design> = rows.iter().map(|r| r.design).collect();
        assert_eq!(designs, Design::ALL.to_vec());
    }

    #[test]
    fn gated_designs_show_the_shared_gate_correlation() {
        // The defining signature: OE/OO toggle rate ≈ 1/4, visibly below
        // the independent-slot prediction 2·p·(1−p) = 3/8.
        let rows = activity_audit(4, 8, 100, 16, 2);
        for row in rows.iter().filter(|r| r.design != Design::Ee) {
            assert!(
                row.counted_toggle_rate < 0.3,
                "{}: {}",
                row.design,
                row.counted_toggle_rate
            );
        }
    }
}
