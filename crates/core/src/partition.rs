//! Fabric partitioning: concurrent multi-network inference.
//!
//! §III-C(iii): "With two-dimensional connectivity, each row or column
//! can be individually utilized/driven to solve a neural network
//! problem." This module evaluates that claim: the tile grid's rows are
//! divided among independent inference jobs, each job runs on its row
//! share, and the resulting makespan is compared against running the jobs
//! back-to-back on the whole fabric.

use crate::accelerator::Accelerator;
use crate::config::AcceleratorConfig;
use pixel_dnn::network::Network;
use pixel_units::Time;

/// One job's placement: which network runs on how many rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Network name.
    pub network: String,
    /// Rows (of the tile grid) assigned.
    pub rows: usize,
    /// Job latency on that share.
    pub latency: Time,
}

/// Result of a partitioned run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Per-job placements.
    pub placements: Vec<Placement>,
    /// Concurrent makespan (slowest job).
    pub makespan: Time,
    /// Sequential baseline (jobs back-to-back on the full fabric).
    pub sequential: Time,
}

impl PartitionReport {
    /// Throughput gain of partitioning: sequential time over makespan.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential / self.makespan
    }
}

/// Latency of `network` when given `rows` of a `grid_rows`-row fabric.
fn latency_on_rows(
    base: &AcceleratorConfig,
    grid_rows: usize,
    rows: usize,
    network: &Network,
) -> Time {
    let tiles_share = (base.tiles * rows / grid_rows).max(1);
    Accelerator::new(base.with_tiles(tiles_share))
        .evaluate(network)
        .total_latency()
}

/// Evaluates an explicit row assignment (one entry per job, rows must sum
/// to at most `grid_rows`).
///
/// # Panics
///
/// Panics if the assignment is empty, a job gets zero rows, or the rows
/// oversubscribe the grid.
#[must_use]
pub fn evaluate_partition(
    base: &AcceleratorConfig,
    grid_rows: usize,
    jobs: &[(&Network, usize)],
) -> PartitionReport {
    assert!(!jobs.is_empty(), "at least one job");
    let total_rows: usize = jobs.iter().map(|(_, r)| r).sum();
    assert!(
        total_rows <= grid_rows,
        "jobs oversubscribe the grid: {total_rows} rows assigned, {grid_rows} available"
    );
    assert!(jobs.iter().all(|&(_, r)| r > 0), "every job needs a row");

    let placements: Vec<Placement> = jobs
        .iter()
        .map(|&(net, rows)| Placement {
            network: net.name().to_owned(),
            rows,
            latency: latency_on_rows(base, grid_rows, rows, net),
        })
        .collect();
    let makespan = placements
        .iter()
        .map(|p| p.latency)
        .fold(Time::ZERO, Time::max);
    let sequential = jobs
        .iter()
        .map(|&(net, _)| Accelerator::new(*base).evaluate(net).total_latency())
        .sum();
    PartitionReport {
        placements,
        makespan,
        sequential,
    }
}

/// Greedy workload-proportional row assignment: each job gets rows in
/// proportion to its total multiply count (at least one).
///
/// # Panics
///
/// Panics if there are more jobs than rows.
#[must_use]
pub fn proportional_rows(grid_rows: usize, jobs: &[&Network]) -> Vec<usize> {
    assert!(jobs.len() <= grid_rows, "more jobs than rows");
    let work: Vec<u64> = jobs
        .iter()
        .map(|n| {
            pixel_dnn::analysis::network_totals(n, pixel_dnn::analysis::FcCountConvention::Paper)
                .mul
        })
        .collect();
    let total: u64 = work.iter().sum::<u64>().max(1);
    // Start everyone at one row, distribute the rest largest-remainder.
    let mut rows = vec![1usize; jobs.len()];
    let mut remaining = grid_rows - jobs.len();
    while remaining > 0 {
        // Give the next row to the job with the highest work-per-row.
        let (idx, _) = rows
            .iter()
            .enumerate()
            .max_by(|(i, &ra), (j, &rb)| {
                let a = work[*i] * rb as u64;
                let b = work[*j] * ra as u64;
                a.cmp(&b)
            })
            // lint:allow(P002) rows is non-empty: the grid has at least one row
            .expect("non-empty");
        rows[idx] += 1;
        remaining -= 1;
    }
    debug_assert_eq!(rows.iter().sum::<usize>(), grid_rows);
    let _ = total;
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::zoo;

    fn base() -> AcceleratorConfig {
        AcceleratorConfig::new(Design::Oo, 4, 16).with_tiles(16)
    }

    #[test]
    fn equal_jobs_split_evenly_match_sequential() {
        // Two identical jobs on half the fabric each ≈ running them
        // back-to-back on the whole fabric (linear tile scaling).
        let net = zoo::lenet();
        let report = evaluate_partition(&base(), 4, &[(&net, 2), (&net, 2)]);
        let ratio = report.speedup();
        assert!((ratio - 1.0).abs() < 0.15, "speedup {ratio}");
    }

    #[test]
    fn unbalanced_jobs_benefit_from_proportional_rows() {
        let big = zoo::zfnet();
        let small = zoo::lenet();
        let naive = evaluate_partition(&base(), 4, &[(&big, 2), (&small, 2)]);
        let rows = proportional_rows(4, &[&big, &small]);
        assert!(rows[0] > rows[1], "big job gets more rows: {rows:?}");
        let tuned = evaluate_partition(&base(), 4, &[(&big, rows[0]), (&small, rows[1])]);
        assert!(
            tuned.makespan < naive.makespan,
            "tuned {} vs naive {}",
            tuned.makespan.as_millis(),
            naive.makespan.as_millis()
        );
        // With linear tile scaling a partition cannot beat sequential
        // throughput; the floor is the big job's row share (3/4 here).
        // Its win is isolation plus the small job's turnaround, which no
        // longer waits for the big one.
        assert!(tuned.speedup() > 0.7, "speedup {}", tuned.speedup());
        let small_alone = tuned
            .placements
            .iter()
            .find(|p| p.network == "LeNet")
            .unwrap()
            .latency;
        assert!(
            small_alone < tuned.sequential,
            "the small job finishes well before the sequential batch"
        );
    }

    #[test]
    fn proportional_rows_cover_the_grid() {
        let nets = zoo::all_networks();
        let refs: Vec<&Network> = nets.iter().collect();
        let rows = proportional_rows(12, &refs);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().sum::<usize>(), 12);
        assert!(rows.iter().all(|&r| r >= 1));
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_rejected() {
        let net = zoo::lenet();
        // 3 + 2 rows on a 4-row grid.
        let _ = evaluate_partition(&base(), 4, &[(&net, 3), (&net, 2)]);
    }
}
