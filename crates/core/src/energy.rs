//! Per-layer energy model: the six Table II / Fig. 5 components.
//!
//! Each component is a per-operation energy (a function of design, lanes
//! and bits/lane — see [`crate::calibration`] for constants and fit
//! provenance) multiplied by the §IV-B op counts:
//!
//! | component | op count | EE | OE | OO |
//! |---|---|---|---|---|
//! | Mul  | `N_mul` | bit-serial AND+shift | MRR | MRR |
//! | Add  | `N_add` | CLA | CLA (+7%) | MZI chain + resolve |
//! | Act  | `N_act` | tanh unit | same | same |
//! | o/e  | `N_mul` | — | conversion/word | conversion/word |
//! | Comm | `N_mul` words | elec in+out | optical in, elec out | same |
//! | Laser| `N_mul` words | — | FP laser share | ×1.52 (chain loss) |

use crate::config::AcceleratorConfig;
use crate::overrides::ModelOverrides;
use pixel_dnn::analysis::ComputeCounts;
use pixel_units::Energy;
use std::iter::Sum;
use std::ops::Add;

/// Energy split by functional component (the columns of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Multiplication energy.
    pub mul: Energy,
    /// Addition / accumulation energy.
    pub add: Energy,
    /// Activation-function energy.
    pub act: Energy,
    /// Optical-to-electrical conversion energy.
    pub oe: Energy,
    /// Data-movement (link) energy.
    pub comm: Energy,
    /// Laser wall-plug energy.
    pub laser: Energy,
}

impl EnergyBreakdown {
    /// Total across all components.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.mul + self.add + self.act + self.oe + self.comm + self.laser
    }

    /// The components in Table II column order:
    /// `[mul, add, act, oe, comm, laser]`.
    #[must_use]
    pub fn components(&self) -> [Energy; 6] {
        [self.mul, self.add, self.act, self.oe, self.comm, self.laser]
    }

    /// Component labels matching [`Self::components`].
    pub const COMPONENT_LABELS: [&'static str; 6] = ["Mul", "Add", "Act", "o/e", "Comm", "Laser"];
}

impl Add for EnergyBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            act: self.act + rhs.act,
            oe: self.oe + rhs.oe,
            comm: self.comm + rhs.comm,
            laser: self.laser + rhs.laser,
        }
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

/// Per-operation energies for a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationEnergies {
    /// One full-word scalar multiply.
    pub mul: Energy,
    /// One accumulate.
    pub add: Energy,
    /// One activation evaluation.
    pub act: Energy,
    /// One o/e word conversion (zero for EE).
    pub oe: Energy,
    /// Moving one word in and its result out.
    pub comm: Energy,
    /// Laser share per word fired (zero for EE).
    pub laser: Energy,
}

impl OperationEnergies {
    /// Derives the per-operation energies for `config` with the
    /// calibrated model.
    #[must_use]
    pub fn for_config(config: &AcceleratorConfig) -> Self {
        Self::for_config_with(config, &ModelOverrides::calibrated())
    }

    /// Derives the per-operation energies for `config` under explicit
    /// [`ModelOverrides`] (sensitivity / ablation studies), dispatching
    /// through the design's [`crate::model::DesignModel`] backend.
    #[must_use]
    pub fn for_config_with(config: &AcceleratorConfig, overrides: &ModelOverrides) -> Self {
        config.design.model().operation_energies(config, overrides)
    }

    /// Energy of a single MAC window (all lanes: `lanes` multiplies and
    /// accumulates plus per-word optical overheads), used by the Fig. 4
    /// single-MAC study.
    #[must_use]
    pub fn window_energy(&self, lanes: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let l = lanes as f64;
        (self.mul + self.add + self.oe + self.comm + self.laser) * l
    }

    /// Energy **per transported bit** of a single MAC unit (Fig. 4's
    /// y-axis): window energy over `lanes × bits` payload bits.
    #[must_use]
    pub fn energy_per_bit(&self, lanes: usize, bits: u32) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let payload = (lanes as f64) * f64::from(bits);
        Energy::new(self.window_energy(lanes).value() / payload)
    }
}

/// Energy of one layer with op counts `counts` under `config`.
#[must_use]
pub fn layer_energy(config: &AcceleratorConfig, counts: &ComputeCounts) -> EnergyBreakdown {
    layer_energy_with(config, counts, &ModelOverrides::calibrated())
}

/// Energy of one layer under explicit [`ModelOverrides`].
#[must_use]
pub fn layer_energy_with(
    config: &AcceleratorConfig,
    counts: &ComputeCounts,
    overrides: &ModelOverrides,
) -> EnergyBreakdown {
    breakdown_from_ops(
        &OperationEnergies::for_config_with(config, overrides),
        counts,
    )
}

/// Scales per-operation energies by a layer's op counts — the shared
/// kernel of the direct path and the memoized
/// [`crate::model::EvalContext`] path.
#[must_use]
pub fn breakdown_from_ops(ops: &OperationEnergies, counts: &ComputeCounts) -> EnergyBreakdown {
    #[allow(clippy::cast_precision_loss)]
    let (mul_n, add_n, act_n) = (counts.mul as f64, counts.add as f64, counts.act as f64);
    EnergyBreakdown {
        mul: ops.mul * mul_n,
        add: ops.add * add_n,
        act: ops.act * act_n,
        oe: ops.oe * mul_n,
        comm: ops.comm * mul_n,
        laser: ops.laser * mul_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn cfg(design: Design) -> AcceleratorConfig {
        AcceleratorConfig::new(design, 4, 16)
    }

    #[test]
    fn optical_multiply_is_5_percent_of_electrical() {
        let ee = OperationEnergies::for_config(&cfg(Design::Ee));
        let oe = OperationEnergies::for_config(&cfg(Design::Oe));
        let ratio = oe.mul / ee.mul;
        assert!((ratio - 0.0516).abs() < 0.003, "ratio {ratio}");
    }

    #[test]
    fn oo_add_is_half_of_oe_add_at_16_bits() {
        // Table II: 420/910 = 0.462 (the 53.8% improvement claim).
        let oe = OperationEnergies::for_config(&cfg(Design::Oe));
        let oo = OperationEnergies::for_config(&cfg(Design::Oo));
        let ratio = oo.add / oe.add;
        assert!((ratio - 0.462).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn oo_add_beats_oe_only_at_high_bits() {
        // The OO add has a fixed per-word cost: at 4 bits/lane it is more
        // expensive than the electrical accumulate (drives the Fig. 7
        // crossover "optical wins when bits/lane > lanes").
        let oe4 = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oe, 4, 4));
        let oo4 = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oo, 4, 4));
        assert!(oo4.add > oe4.add);
    }

    #[test]
    fn communication_ratio_matches_table_ii() {
        let ee = OperationEnergies::for_config(&cfg(Design::Ee));
        let oe = OperationEnergies::for_config(&cfg(Design::Oe));
        let ratio = oe.comm / ee.comm;
        assert!((ratio - 118.0 / 139.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn laser_oo_premium() {
        let oe = OperationEnergies::for_config(&cfg(Design::Oe));
        let oo = OperationEnergies::for_config(&cfg(Design::Oo));
        assert!((oo.laser / oe.laser - 1.5217).abs() < 1e-6);
        let ee = OperationEnergies::for_config(&cfg(Design::Ee));
        assert_eq!(ee.laser, Energy::ZERO);
        assert_eq!(ee.oe, Energy::ZERO);
    }

    #[test]
    fn breakdown_total_and_sum() {
        let a = EnergyBreakdown {
            mul: Energy::from_picojoules(1.0),
            add: Energy::from_picojoules(2.0),
            act: Energy::from_picojoules(3.0),
            oe: Energy::from_picojoules(4.0),
            comm: Energy::from_picojoules(5.0),
            laser: Energy::from_picojoules(6.0),
        };
        assert!((a.total().as_picojoules() - 21.0).abs() < 1e-9);
        let double: EnergyBreakdown = [a, a].into_iter().sum();
        assert!((double.total().as_picojoules() - 42.0).abs() < 1e-9);
        assert_eq!(
            a.components().len(),
            EnergyBreakdown::COMPONENT_LABELS.len()
        );
    }

    #[test]
    fn layer_energy_scales_with_counts() {
        let counts = ComputeCounts {
            name: "test".into(),
            mvm: 10,
            mul: 1000,
            add: 1010,
            act: 10,
        };
        let e1 = layer_energy(&cfg(Design::Oe), &counts);
        let doubled = ComputeCounts {
            name: "test".into(),
            mvm: 20,
            mul: 2000,
            add: 2020,
            act: 20,
        };
        let e2 = layer_energy(&cfg(Design::Oe), &doubled);
        assert!((e2.total() / e1.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_energy_per_bit_shapes() {
        // EE grows steeply with bits/lane; OO falls (MZI accumulation
        // amortizes its fixed cost over more pulses).
        let per_bit = |d, b| {
            OperationEnergies::for_config(&AcceleratorConfig::new(d, 4, b))
                .energy_per_bit(4, b)
                .value()
        };
        assert!(per_bit(Design::Ee, 32) > 2.0 * per_bit(Design::Ee, 8));
        assert!(per_bit(Design::Oo, 32) < per_bit(Design::Oo, 4));
        // EE is cheapest per bit at small b, OO at large b.
        assert!(per_bit(Design::Ee, 2) < per_bit(Design::Oo, 2));
        assert!(per_bit(Design::Oo, 32) < per_bit(Design::Ee, 32));
    }
}
