//! The PIXEL x/y photonic interconnect (Fig. 3).
//!
//! Tiles sit on a 2-D grid. Along each row (x-dimension) and each column
//! (y-dimension) runs a multiple-write-single-read (MWSR) waveguide:
//! every tile on the line transmits on its own wavelength block (the
//! [`pixel_photonics::wdm::BandPlan`]) and the multiplexed signal is read
//! at the line's home endpoint. This module provides the structural
//! fabric (coordinates, wavelength ownership, waveguide spans) and a
//! functional broadcast that actually moves pulse trains through the
//! shared medium.

use pixel_photonics::signal::{PulseTrain, WavelengthId, WdmSignal};
use pixel_photonics::waveguide::Waveguide;
use pixel_photonics::wdm::{mux_tiles, BandPlan, BandPlanError};
use pixel_units::{Length, Time};

/// A tile coordinate on the fabric grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TileCoord {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
}

/// Which dimension a transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Along a row (x-dimension waveguide).
    X,
    /// Along a column (y-dimension waveguide).
    Y,
}

/// The 2-D MWSR fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct XyFabric {
    rows: usize,
    cols: usize,
    lanes: usize,
    tile_pitch: Length,
}

impl XyFabric {
    /// Creates a fabric of `rows × cols` tiles, each owning `lanes`
    /// wavelengths, with 1 mm tile pitch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize, lanes: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && lanes > 0,
            "fabric must be non-empty"
        );
        Self {
            rows,
            cols,
            lanes,
            tile_pitch: Length::from_millimetres(1.0),
        }
    }

    /// Rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Wavelengths per tile.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Total tile count.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// The band plan of one x-dimension (row) waveguide.
    #[must_use]
    pub fn row_band_plan(&self) -> BandPlan {
        BandPlan::new(self.cols, self.lanes)
    }

    /// The band plan of one y-dimension (column) waveguide.
    #[must_use]
    pub fn column_band_plan(&self) -> BandPlan {
        BandPlan::new(self.rows, self.lanes)
    }

    /// The wavelengths `coord` transmits on along `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`BandPlanError`] if the coordinate is off-fabric.
    pub fn tile_wavelengths(
        &self,
        coord: TileCoord,
        dim: Dimension,
    ) -> Result<Vec<WavelengthId>, BandPlanError> {
        match dim {
            Dimension::X => self.row_band_plan().tile_band(coord.col),
            Dimension::Y => self.column_band_plan().tile_band(coord.row),
        }
    }

    /// The waveguide spanning one line of `dim`.
    #[must_use]
    pub fn line_waveguide(&self, dim: Dimension) -> Waveguide {
        let hops = match dim {
            Dimension::X => self.cols,
            Dimension::Y => self.rows,
        };
        #[allow(clippy::cast_precision_loss)]
        Waveguide::new(Length::new(self.tile_pitch.value() * hops as f64))
    }

    /// Worst-case propagation latency across one line.
    #[must_use]
    pub fn line_latency(&self, dim: Dimension) -> Time {
        self.line_waveguide(dim).propagation_delay()
    }

    /// Functionally broadcasts one row's firings onto its x waveguide:
    /// `per_tile[c]` holds tile `(row, c)`'s per-lane trains. Returns the
    /// multiplexed WDM signal as seen at the row's read endpoint, with
    /// waveguide loss applied.
    ///
    /// # Errors
    ///
    /// Returns [`BandPlanError`] if more tiles than columns are supplied.
    pub fn broadcast_row(&self, per_tile: &[Vec<PulseTrain>]) -> Result<WdmSignal, BandPlanError> {
        let plan = self.row_band_plan();
        let muxed = mux_tiles(&plan, per_tile)?;
        let guide = self.line_waveguide(Dimension::X);
        Ok(muxed
            .iter()
            .map(|(id, train)| (id, guide.propagate(train)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_ownership_by_dimension() {
        let fabric = XyFabric::new(2, 4, 4);
        // x-dimension: column index selects the band.
        let x = fabric
            .tile_wavelengths(TileCoord { row: 1, col: 3 }, Dimension::X)
            .unwrap();
        assert_eq!(x.first(), Some(&WavelengthId(12)));
        // y-dimension: row index selects the band.
        let y = fabric
            .tile_wavelengths(TileCoord { row: 1, col: 3 }, Dimension::Y)
            .unwrap();
        assert_eq!(y.first(), Some(&WavelengthId(4)));
    }

    #[test]
    fn off_fabric_coordinate_errors() {
        let fabric = XyFabric::new(2, 2, 4);
        assert!(fabric
            .tile_wavelengths(TileCoord { row: 0, col: 5 }, Dimension::X)
            .is_err());
    }

    #[test]
    fn line_latency_scales_with_span() {
        let small = XyFabric::new(2, 2, 4);
        let big = XyFabric::new(8, 8, 4);
        assert!(big.line_latency(Dimension::X) > small.line_latency(Dimension::X));
        // 1 mm pitch × 2 hops at 10.45 ps/mm.
        assert!((small.line_latency(Dimension::Y).as_picos() - 20.9).abs() < 1e-9);
    }

    #[test]
    fn broadcast_row_preserves_data_under_loss() {
        let fabric = XyFabric::new(1, 2, 2);
        let per_tile = vec![
            vec![
                PulseTrain::from_bits(0b101, 3),
                PulseTrain::from_bits(0b011, 3),
            ],
            vec![
                PulseTrain::from_bits(0b110, 3),
                PulseTrain::from_bits(0b001, 3),
            ],
        ];
        let signal = fabric.broadcast_row(&per_tile).unwrap();
        assert_eq!(signal.channel_count(), 4);
        // Loss attenuates but thresholded decode recovers the bits.
        assert_eq!(signal.demux(WavelengthId(0)).to_bits(), Some(0b101));
        assert_eq!(signal.demux(WavelengthId(2)).to_bits(), Some(0b110));
        assert!(signal.demux(WavelengthId(0)).total_amplitude() < 2.0);
    }

    #[test]
    fn mwsr_no_wavelength_collisions_across_tiles() {
        let fabric = XyFabric::new(1, 4, 4);
        let mut seen = std::collections::BTreeSet::new();
        for col in 0..4 {
            for id in fabric
                .tile_wavelengths(TileCoord { row: 0, col }, Dimension::X)
                .unwrap()
            {
                assert!(seen.insert(id), "wavelength {id} assigned twice");
            }
        }
        assert_eq!(seen.len(), 16);
    }
}
