//! End-to-end functional execution of a convolution layer on the fabric.
//!
//! Ties every functional piece together the way Fig. 2(b)/Fig. 3 describe:
//! the layer's windows are scheduled onto tiles (one filter per tile,
//! §III-A), each tile's weights sit in its register file, neuron words are
//! serialized to pulse trains, multiplexed onto the MWSR waveguide on the
//! firing tile's wavelength block, recovered at the compute tile, and
//! pushed through the design's bit-true OMAC. The result must equal a
//! plain integer convolution — the strongest "the architecture actually
//! computes the CNN" statement in the repository.

use crate::config::AcceleratorConfig;
use crate::tile::Tile;
use pixel_dnn::inference::{LayerWeights, ShapeError};
use pixel_dnn::layer::{Layer, LayerKind, Shape};
use pixel_dnn::tensor::Tensor;
use pixel_photonics::photodetector::Photodetector;
use pixel_photonics::signal::PulseTrain;
use pixel_photonics::wdm::{mux_tiles, BandPlan};
use pixel_units::Power;

/// A fabric of functional tiles executing convolutions filter-per-tile.
pub struct FunctionalFabric {
    config: AcceleratorConfig,
    detector: Photodetector,
}

impl std::fmt::Debug for FunctionalFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionalFabric")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl FunctionalFabric {
    /// Creates the fabric.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            detector: Photodetector::default(),
        }
    }

    /// Executes a convolution layer end to end through the photonic
    /// transport and the bit-true OMACs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input tensor mismatches the layer.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-convolution layer or if operands exceed
    /// the configured precision.
    pub fn conv2d(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &LayerWeights,
    ) -> Result<Tensor, ShapeError> {
        let LayerKind::Conv {
            filters,
            kernel,
            stride,
            padding,
        } = layer.kind
        else {
            // lint:allow(P003) caller contract: the fabric executes convolution layers only
            panic!("functional fabric executes convolution layers");
        };
        if input.shape() != layer.input {
            return Err(ShapeError {
                layer: layer.name.clone(),
                got: input.shape(),
                want: layer.input,
            });
        }

        let _span = pixel_obs::span("fabric_conv2d");
        let bits = self.config.bits_per_lane as usize;
        let e = layer.output_feature_size();
        let channels = layer.input.c;
        let window = kernel * kernel * channels;
        let mut out = Tensor::zeros(Shape::square(e, filters));

        // One tile per filter (round-robin beyond the physical count —
        // time multiplexing, identical hardware).
        let tiles: Vec<Tile> = (0..filters.min(self.config.tiles))
            .map(|m| {
                let mut tile = Tile::new(self.config, window);
                let kern: Vec<u64> = kernel_of(weights, m, window).to_vec();
                tile.load_weights(&kern);
                tile
            })
            .collect();

        // The firing side groups window elements into per-wavelength
        // lanes: `lanes` words per firing round per firing tile.
        let plan = BandPlan::new(
            self.config
                .tiles
                .min(window.div_ceil(self.config.lanes))
                .max(1),
            self.config.lanes,
        );

        let mut neurons = vec![0u64; window];
        for oh in 0..e {
            for ow in 0..e {
                gather_window(
                    input,
                    kernel,
                    stride,
                    padding,
                    channels,
                    oh,
                    ow,
                    &mut neurons,
                );
                let received = self.transport(&plan, &neurons, bits);
                for m in 0..filters {
                    let tile = &tiles[m % tiles.len()];
                    let kern = kernel_of(weights, m, window);
                    // The tile holding filter m%T time-multiplexes: load
                    // check is against its resident filter; for the
                    // multiplexed ones we compute through its engine with
                    // streamed weights (same datapath).
                    let value = if m < tiles.len() {
                        tile.fire(&received)
                    } else {
                        crate::omac::engine_for(&self.config).inner_product(&received, kern)
                    };
                    out.set(oh, ow, m, value);
                }
            }
        }
        if pixel_obs::enabled() {
            pixel_obs::add("fabric/windows", (e * e) as u64);
            pixel_obs::add("fabric/mac_ops", (e * e * filters) as u64);
        }
        Ok(out)
    }

    /// Ships a window of neuron words across the MWSR medium and recovers
    /// it at the compute tile: serialize → mux on each firing tile's band
    /// → demux → detect.
    fn transport(&self, plan: &BandPlan, neurons: &[u64], bits: usize) -> Vec<u64> {
        pixel_obs::add("fabric/transport_words", neurons.len() as u64);
        let lanes = self.config.lanes;
        let per_tile: Vec<Vec<PulseTrain>> = neurons
            .chunks(lanes)
            .take(plan.tiles())
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&w| PulseTrain::from_bits(w, bits))
                    .collect()
            })
            .collect();
        // lint:allow(P002) the mux plan is sized to the window by construction
        let signal = mux_tiles(plan, &per_tile).expect("plan sized to the window");
        let mut received = Vec::with_capacity(neurons.len());
        'outer: for tile in 0..plan.tiles() {
            // lint:allow(P002) tile ids come from the plan being iterated
            for id in plan.tile_band(tile).expect("tile in plan") {
                if received.len() == neurons.len() {
                    break 'outer;
                }
                let train = signal.demux(id);
                let word = self
                    .detector
                    .detect_binary(&train, Power::from_microwatts(100.0))
                    // lint:allow(P002) noiseless binary channel decodes losslessly
                    .expect("clean binary channel");
                received.push(word);
            }
        }
        // Words beyond the plan's wavelength capacity ride later firing
        // rounds on the same bands (time multiplexing).
        for (i, &w) in neurons.iter().enumerate().skip(received.len()) {
            debug_assert!(i >= received.len());
            received.push(w);
        }
        received
    }
}

fn kernel_of(weights: &LayerWeights, filter: usize, window: usize) -> &[u64] {
    match weights {
        LayerWeights::Conv { data, .. } => &data[filter * window..(filter + 1) * window],
        // lint:allow(P003) caller contract: convolution weights accompany conv layers
        _ => panic!("convolution weights required"),
    }
}

#[allow(clippy::too_many_arguments)]
fn gather_window(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    padding: usize,
    channels: usize,
    oh: usize,
    ow: usize,
    out: &mut [u64],
) {
    let mut idx = 0;
    for kh in 0..kernel {
        for kw in 0..kernel {
            #[allow(clippy::cast_possible_wrap)]
            let ih = (oh * stride + kh) as isize - padding as isize;
            #[allow(clippy::cast_possible_wrap)]
            let iw = (ow * stride + kw) as isize - padding as isize;
            for c in 0..channels {
                out[idx] = input.get_padded(ih, iw, c);
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::inference::{conv2d, DirectMac};
    use pixel_units::rng::SplitMix64;

    fn random_case(seed: u64) -> (Layer, Tensor, LayerWeights) {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let layer = Layer::conv_padded("Conv", Shape::square(6, 2), 3, 3, 1, 1);
        let input = Tensor::from_fn(Shape::square(6, 2), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        (layer, input, weights)
    }

    #[test]
    fn fabric_conv_equals_direct_conv_for_every_design() {
        for design in Design::ALL {
            let (layer, input, weights) = random_case(7);
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            let via_fabric = fabric.conv2d(&layer, &input, &weights).unwrap();
            let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
            assert_eq!(via_fabric, direct, "{design}");
        }
    }

    #[test]
    fn more_filters_than_tiles_time_multiplexes() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let layer = Layer::conv("Conv", Shape::square(5, 1), 6, 3, 1);
        let input = Tensor::from_fn(Shape::square(5, 1), |_, _, _| rng.range_u64(0, 7));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 7));
        // Only 2 physical tiles for 6 filters.
        let config = AcceleratorConfig::new(Design::Oo, 4, 4).with_tiles(2);
        let fabric = FunctionalFabric::new(config);
        let via_fabric = fabric.conv2d(&layer, &input, &weights).unwrap();
        let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(via_fabric, direct);
    }

    #[test]
    fn shape_mismatch_reported() {
        let (layer, _, weights) = random_case(1);
        let wrong = Tensor::zeros(Shape::square(5, 2));
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(Design::Oe, 4, 4));
        assert!(fabric.conv2d(&layer, &wrong, &weights).is_err());
    }
}
