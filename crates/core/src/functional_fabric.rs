//! End-to-end functional execution of a convolution layer on the fabric.
//!
//! Ties every functional piece together the way Fig. 2(b)/Fig. 3 describe:
//! the layer's windows are scheduled onto tiles (one filter per tile,
//! §III-A), each tile's weights sit in its register file, neuron words are
//! serialized to pulse trains, multiplexed onto the MWSR waveguide on the
//! firing tile's wavelength block, recovered at the compute tile, and
//! pushed through the design's bit-true OMAC. The result must equal a
//! plain integer convolution — the strongest "the architecture actually
//! computes the CNN" statement in the repository.

use crate::config::AcceleratorConfig;
use crate::omac::{WindowGroup, PLANE_WINDOWS};
use crate::tile::Tile;
use pixel_dnn::inference::{LayerWeights, ShapeError};
use pixel_dnn::layer::{Layer, LayerKind, Shape};
use pixel_dnn::tensor::Tensor;
use pixel_photonics::photodetector::Photodetector;
use pixel_photonics::signal::{PulseTrain, WavelengthId, WdmSignal};
use pixel_photonics::wdm::BandPlan;
use pixel_units::Power;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a convolution's windows move through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvDataflow {
    /// Bit-plane batched: windows are packed [`PLANE_WINDOWS`] at a time
    /// and every word-level engine operation advances all of them; the
    /// ragged tail (fewer than [`PLANE_WINDOWS`] windows) falls back to
    /// the scalar path. Bitwise identical to [`Self::Scalar`] — the
    /// plane arithmetic is exact — just faster.
    #[default]
    Bitplane,
    /// One window at a time through the serial transport and the scalar
    /// engine paths (the reference dataflow, kept for pinning and
    /// benchmarks).
    Scalar,
}

/// A fabric of functional tiles executing convolutions filter-per-tile.
pub struct FunctionalFabric {
    config: AcceleratorConfig,
    detector: Photodetector,
    /// Words recovered by the receive-side photodetector across this
    /// fabric's lifetime — the transport-fidelity witness: after a
    /// convolution it must equal windows × window size, proving every
    /// neuron word crossed the optical medium.
    detected_words: AtomicU64,
}

/// Per-worker transport buffers, reused across every window of a
/// convolution instead of allocating trains and word vectors per call.
#[derive(Default)]
struct TransportScratch {
    train: PulseTrain,
    signal: WdmSignal,
    received: Vec<u64>,
}

impl std::fmt::Debug for FunctionalFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionalFabric")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl FunctionalFabric {
    /// Creates the fabric.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            detector: Photodetector::default(),
            detected_words: AtomicU64::new(0),
        }
    }

    /// Total neuron words recovered by the receive-side detector so far.
    ///
    /// Every word of every window must cross serialize → mux → demux →
    /// detect, so after `conv2d` this advances by exactly
    /// `output positions × window size`.
    #[must_use]
    pub fn detected_words(&self) -> u64 {
        self.detected_words.load(Ordering::Relaxed)
    }

    /// Executes a convolution layer end to end through the photonic
    /// transport and the bit-true OMACs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input tensor mismatches the layer.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-convolution layer or if operands exceed
    /// the configured precision.
    pub fn conv2d(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &LayerWeights,
    ) -> Result<Tensor, ShapeError> {
        self.conv2d_with_jobs(layer, input, weights, crate::sweep::default_jobs())
    }

    /// [`Self::conv2d`] with an explicit worker count, on the default
    /// [`ConvDataflow::Bitplane`] dataflow.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input tensor mismatches the layer.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-convolution layer or if operands exceed
    /// the configured precision.
    pub fn conv2d_with_jobs(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &LayerWeights,
        jobs: usize,
    ) -> Result<Tensor, ShapeError> {
        self.conv2d_with_dataflow(layer, input, weights, jobs, ConvDataflow::default())
    }

    /// [`Self::conv2d`] with an explicit worker count and dataflow. The
    /// window list is split into contiguous chunks over
    /// `std::thread::scope` workers (the [`crate::sweep::SweepEngine`]
    /// discipline), each with its own tiles and transport scratch;
    /// because both dataflows compute exact integer sums, the result is
    /// bitwise identical for every `jobs` and either dataflow.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input tensor mismatches the layer.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-convolution layer or if operands exceed
    /// the configured precision.
    pub fn conv2d_with_dataflow(
        &self,
        layer: &Layer,
        input: &Tensor,
        weights: &LayerWeights,
        jobs: usize,
        dataflow: ConvDataflow,
    ) -> Result<Tensor, ShapeError> {
        let flat = self.conv_flat(layer, std::slice::from_ref(input), weights, jobs, dataflow)?;
        let e = layer.output_feature_size();
        let LayerKind::Conv { filters, .. } = layer.kind else {
            // lint:allow(P003) caller contract: the fabric executes convolution layers only
            panic!("functional fabric executes convolution layers");
        };
        let mut out = Tensor::zeros(Shape::square(e, filters));
        out.data_mut().copy_from_slice(&flat);
        Ok(out)
    }

    /// Executes one convolution layer over a whole batch of independent
    /// images at once — the serving-scale entry point. Windows are
    /// enumerated image-major and packed into bit-plane groups *across*
    /// image boundaries, so even an image whose own window count is not
    /// a multiple of [`PLANE_WINDOWS`] batches at full width; each
    /// output equals [`Self::conv2d`] of the matching input exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any input tensor mismatches the layer.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-convolution layer or if operands exceed
    /// the configured precision.
    pub fn conv2d_batch(
        &self,
        layer: &Layer,
        inputs: &[Tensor],
        weights: &LayerWeights,
        jobs: usize,
    ) -> Result<Vec<Tensor>, ShapeError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let flat = self.conv_flat(layer, inputs, weights, jobs, ConvDataflow::Bitplane)?;
        let e = layer.output_feature_size();
        let LayerKind::Conv { filters, .. } = layer.kind else {
            // lint:allow(P003) caller contract: the fabric executes convolution layers only
            panic!("functional fabric executes convolution layers");
        };
        let per_image = e * e * filters;
        Ok(flat
            .chunks(per_image)
            .map(|chunk| {
                let mut t = Tensor::zeros(Shape::square(e, filters));
                t.data_mut().copy_from_slice(chunk);
                t
            })
            .collect())
    }

    /// The shared convolution core: every output element of every image,
    /// flat in `[image][oh][ow][filter]` order (each image's slice is
    /// exactly its output tensor's HWC data).
    fn conv_flat(
        &self,
        layer: &Layer,
        inputs: &[Tensor],
        weights: &LayerWeights,
        jobs: usize,
        dataflow: ConvDataflow,
    ) -> Result<Vec<u64>, ShapeError> {
        let LayerKind::Conv {
            filters,
            kernel,
            stride,
            padding,
        } = layer.kind
        else {
            // lint:allow(P003) caller contract: the fabric executes convolution layers only
            panic!("functional fabric executes convolution layers");
        };
        for input in inputs {
            if input.shape() != layer.input {
                return Err(ShapeError {
                    layer: layer.name.clone(),
                    got: input.shape(),
                    want: layer.input,
                });
            }
        }

        let _span = pixel_obs::span("fabric_conv2d");
        let setup_span = pixel_obs::span("plan");
        let bits = self.config.bits_per_lane as usize;
        let e = layer.output_feature_size();
        let channels = layer.input.c;
        let window = kernel * kernel * channels;
        let per_image = e * e;
        let total_windows = inputs.len() * per_image;

        // The firing side groups window elements into per-wavelength
        // lanes: `lanes` words per firing round per firing tile.
        let plan = BandPlan::new(
            self.config
                .tiles
                .min(window.div_ceil(self.config.lanes))
                .max(1),
            self.config.lanes,
        );

        // Kernel slices resolved once, outside the window loops.
        let kernels: Vec<&[u64]> = (0..filters)
            .map(|m| kernel_of(weights, m, window))
            .collect();
        drop(setup_span);

        let mut out = vec![0u64; total_windows * filters];

        // Fills `chunk` with the outputs of the contiguous window range
        // starting at `start` (window index = image·e² + oh·e + ow).
        // Tiles and transport scratch are per-worker: the OMAC engines
        // carry interior activity tallies and must not be shared across
        // threads.
        let run_windows = |start: usize, chunk: &mut [u64]| {
            // One tile per filter (round-robin beyond the physical count —
            // time multiplexing, identical hardware), built once per call
            // rather than per window.
            let tiles: Vec<Tile> = (0..filters.min(self.config.tiles))
                .map(|m| {
                    let mut tile = Tile::new(self.config, window);
                    tile.load_weights(kernels[m]);
                    tile
                })
                .collect();
            let count = chunk.len() / filters;
            let gather_into = |index: usize, neurons: &mut [u64]| {
                let (image, position) = (index / per_image, index % per_image);
                gather_window(
                    &inputs[image],
                    kernel,
                    stride,
                    padding,
                    channels,
                    position / e,
                    position % e,
                    neurons,
                );
            };
            let mut scratch = TransportScratch::default();
            let mut done = 0;
            if dataflow == ConvDataflow::Bitplane {
                // Full plane groups: PLANE_WINDOWS windows advance per
                // word-level engine op. Worker chunks are group-aligned,
                // so only the global tail ever lands in the scalar loop.
                let mut rows = vec![0u64; PLANE_WINDOWS * window];
                let mut group = WindowGroup::default();
                let mut values = Vec::with_capacity(PLANE_WINDOWS);
                while count - done >= PLANE_WINDOWS {
                    for g in 0..PLANE_WINDOWS {
                        gather_into(start + done + g, &mut rows[g * window..(g + 1) * window]);
                    }
                    #[allow(clippy::cast_possible_truncation)]
                    group.repack(&rows, window, PLANE_WINDOWS, bits as u32);
                    self.transport_planes(&plan, &mut group, &mut scratch);
                    for m in 0..filters {
                        let tile = &tiles[m % tiles.len()];
                        if m < tiles.len() {
                            tile.fire_planes(&group, &mut values);
                        } else {
                            tile.fire_planes_streamed(&group, kernels[m], &mut values);
                        }
                        for (g, &value) in values.iter().enumerate() {
                            // lint:allow(P104) chunk holds count·filters outputs; done+g < count and m < filters by the loop bounds
                            chunk[(done + g) * filters + m] = value;
                        }
                    }
                    done += PLANE_WINDOWS;
                }
            }
            // Scalar dataflow, or the ragged tail of the bitplane path.
            let mut neurons = vec![0u64; window];
            while done < count {
                gather_into(start + done, &mut neurons);
                self.transport_into(&plan, &neurons, bits, &mut scratch);
                for m in 0..filters {
                    let tile = &tiles[m % tiles.len()];
                    // The tile holding filter m%T time-multiplexes:
                    // resident weights for its own filter, the same
                    // datapath with streamed weights for the rest.
                    let value = if m < tiles.len() {
                        tile.fire(&scratch.received)
                    } else {
                        tile.fire_streamed(&scratch.received, kernels[m])
                    };
                    // lint:allow(P104) chunk holds count·filters outputs; done < count and m < filters by the loop bounds
                    chunk[done * filters + m] = value;
                }
                done += 1;
            }
        };

        // Phase-level child span: under the parent this aggregates as
        // `fabric_conv2d/rows`, so the profile tree separates window
        // compute from band planning. Worker threads carry fresh scope
        // stacks, so their spans name the full path explicitly (the
        // `sweep/worker` idiom).
        let rows_span = pixel_obs::span("rows");
        // Worker chunks stay aligned to whole plane groups so every
        // worker but the last sees full groups — which windows share a
        // group never changes with `jobs`, and neither does any output
        // bit (the arithmetic is exact either way).
        let granularity = match dataflow {
            ConvDataflow::Bitplane => PLANE_WINDOWS,
            ConvDataflow::Scalar => 1,
        };
        let units = total_windows.div_ceil(granularity);
        let jobs = jobs.clamp(1, units.max(1));
        let windows_per_worker = units.div_ceil(jobs) * granularity;
        if jobs == 1 {
            run_windows(0, &mut out);
        } else {
            // Contiguous window chunks, one worker each: concatenation of
            // the chunk outputs restores window order deterministically,
            // exactly as SweepEngine::map does for sweep points.
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (w, chunk) in out.chunks_mut(windows_per_worker * filters).enumerate() {
                    let run = &run_windows;
                    handles.push(scope.spawn(move || {
                        let _worker = pixel_obs::span("fabric_conv2d/rows/worker");
                        run(w * windows_per_worker, chunk);
                    }));
                }
                for handle in handles {
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                }
            });
        }
        drop(rows_span);

        if pixel_obs::enabled() {
            pixel_obs::add("fabric.windows", total_windows as u64);
            pixel_obs::add("fabric.mac_ops", (total_windows * filters) as u64);
        }
        Ok(out)
    }

    /// Ships a window of neuron words across the MWSR medium and recovers
    /// it at the compute tile: serialize → mux on each firing tile's band
    /// → demux → detect, looping extra firing rounds over the same bands
    /// until *every* word has crossed the medium. The recovered words
    /// land in `scratch.received`.
    fn transport_into(
        &self,
        plan: &BandPlan,
        neurons: &[u64],
        bits: usize,
        scratch: &mut TransportScratch,
    ) {
        pixel_obs::add("fabric.transport_words", neurons.len() as u64);
        let capacity = plan.total_wavelengths();
        let TransportScratch {
            train,
            signal,
            received,
        } = scratch;
        received.clear();
        let mut detected = 0u64;
        // Words beyond the plan's wavelength capacity ride later firing
        // rounds on the same bands (time multiplexing): word `i` of a
        // round fires on wavelength `i`, i.e. lane `i % lanes` of firing
        // tile `i / lanes`, every round.
        for round in neurons.chunks(capacity) {
            for (i, &w) in round.iter().enumerate() {
                train.write_bits(w, bits);
                #[allow(clippy::cast_possible_truncation)]
                signal.set_channel(WavelengthId(i as u16), train);
            }
            for i in 0..round.len() {
                #[allow(clippy::cast_possible_truncation)]
                let id = WavelengthId(i as u16);
                // lint:allow(P002) every id in the round was just written
                let arrived = signal.channel(id).expect("channel written this round");
                let word = self
                    .detector
                    .detect_binary(arrived, Power::from_microwatts(100.0))
                    // lint:allow(P002) noiseless binary channel decodes losslessly
                    .expect("clean binary channel");
                received.push(word);
                detected += 1;
            }
        }
        self.detected_words.fetch_add(detected, Ordering::Relaxed);
        if pixel_obs::enabled() {
            pixel_obs::add("fabric.detected_words", detected);
        }
    }

    /// Ships a whole bit-plane window group across the MWSR medium. Each
    /// word position transmits its `bits` planes as pulse trains of one
    /// slot per packed window, muxed on the position's wavelength (extra
    /// positions ride later firing rounds, exactly as in
    /// [`Self::transport_into`]); the detected planes are written back
    /// into the group. `bits` planes of `len` slots carry exactly the
    /// same payload as `len` scalar transports of the position's word,
    /// so `detected_words` advances by `window × len` — the fidelity
    /// invariant stays batch-size honest.
    fn transport_planes(
        &self,
        plan: &BandPlan,
        group: &mut WindowGroup,
        scratch: &mut TransportScratch,
    ) {
        let len = group.len();
        let bits = group.bits() as usize;
        let window = group.window();
        let words = (window * len) as u64;
        pixel_obs::add("fabric.transport_words", words);
        let capacity = plan.total_wavelengths();
        let TransportScratch { train, signal, .. } = scratch;
        let mut start = 0;
        while start < window {
            let round = (window - start).min(capacity);
            for a in 0..bits {
                for i in 0..round {
                    // lint:allow(P104) start + i < start + round <= window == blocks().len()
                    train.write_bits(group.blocks()[start + i].plane(a), len);
                    #[allow(clippy::cast_possible_truncation)]
                    signal.set_channel(WavelengthId(i as u16), train);
                }
                for i in 0..round {
                    #[allow(clippy::cast_possible_truncation)]
                    let id = WavelengthId(i as u16);
                    // lint:allow(P002) every id in the round was just written
                    let arrived = signal.channel(id).expect("channel written this round");
                    let plane = self
                        .detector
                        .detect_binary(arrived, Power::from_microwatts(100.0))
                        // lint:allow(P002) noiseless binary channel decodes losslessly
                        .expect("clean binary channel");
                    // lint:allow(P104) start + i < start + round <= window == blocks_mut().len()
                    group.blocks_mut()[start + i].set_plane(a, plane);
                }
            }
            start += round;
        }
        self.detected_words.fetch_add(words, Ordering::Relaxed);
        if pixel_obs::enabled() {
            pixel_obs::add("fabric.detected_words", words);
        }
    }
}

fn kernel_of(weights: &LayerWeights, filter: usize, window: usize) -> &[u64] {
    match weights {
        LayerWeights::Conv { data, .. } => &data[filter * window..(filter + 1) * window],
        // lint:allow(P003) caller contract: convolution weights accompany conv layers
        _ => panic!("convolution weights required"),
    }
}

#[allow(clippy::too_many_arguments)]
fn gather_window(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    padding: usize,
    channels: usize,
    oh: usize,
    ow: usize,
    out: &mut [u64],
) {
    let mut idx = 0;
    for kh in 0..kernel {
        for kw in 0..kernel {
            #[allow(clippy::cast_possible_wrap)]
            let ih = (oh * stride + kh) as isize - padding as isize;
            #[allow(clippy::cast_possible_wrap)]
            let iw = (ow * stride + kw) as isize - padding as isize;
            for c in 0..channels {
                out[idx] = input.get_padded(ih, iw, c);
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use pixel_dnn::inference::{conv2d, DirectMac};
    use pixel_units::rng::SplitMix64;

    fn random_case(seed: u64) -> (Layer, Tensor, LayerWeights) {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let layer = Layer::conv_padded("Conv", Shape::square(6, 2), 3, 3, 1, 1);
        let input = Tensor::from_fn(Shape::square(6, 2), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        (layer, input, weights)
    }

    #[test]
    fn fabric_conv_equals_direct_conv_for_every_design() {
        for design in Design::ALL {
            let (layer, input, weights) = random_case(7);
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            let via_fabric = fabric.conv2d(&layer, &input, &weights).unwrap();
            let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
            assert_eq!(via_fabric, direct, "{design}");
        }
    }

    #[test]
    fn more_filters_than_tiles_time_multiplexes() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let layer = Layer::conv("Conv", Shape::square(5, 1), 6, 3, 1);
        let input = Tensor::from_fn(Shape::square(5, 1), |_, _, _| rng.range_u64(0, 7));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 7));
        // Only 2 physical tiles for 6 filters.
        let config = AcceleratorConfig::new(Design::Oo, 4, 4).with_tiles(2);
        let fabric = FunctionalFabric::new(config);
        let via_fabric = fabric.conv2d(&layer, &input, &weights).unwrap();
        let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(via_fabric, direct);
    }

    #[test]
    fn transport_carries_every_word_when_window_exceeds_capacity() {
        // 2 tiles × 4 lanes = 8 wavelengths, but a 3×3×2 window is 18
        // words: transport must loop firing rounds, not bypass the medium.
        let mut rng = SplitMix64::seed_from_u64(11);
        let layer = Layer::conv("Conv", Shape::square(6, 2), 3, 3, 1);
        let input = Tensor::from_fn(Shape::square(6, 2), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        for design in Design::ALL {
            let config = AcceleratorConfig::new(design, 4, 4).with_tiles(2);
            let window = 3 * 3 * 2;
            assert!(
                window > config.tiles * config.lanes,
                "test must exercise multi-round transport"
            );
            let fabric = FunctionalFabric::new(config);
            let via_fabric = fabric.conv2d(&layer, &input, &weights).unwrap();
            let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
            assert_eq!(via_fabric, direct, "{design}");
            // Fidelity witness: every word of every window crossed
            // serialize → mux → demux → detect.
            let e = layer.output_feature_size();
            assert_eq!(
                fabric.detected_words(),
                (e * e * window) as u64,
                "{design}: words must not bypass the optical medium"
            );
        }
    }

    #[test]
    fn row_parallel_conv_is_bitwise_identical_to_serial() {
        let mut rng = SplitMix64::seed_from_u64(23);
        let layer = Layer::conv("Conv", Shape::square(7, 3), 5, 3, 1);
        let input = Tensor::from_fn(Shape::square(7, 3), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        for design in Design::ALL {
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            let serial = fabric
                .conv2d_with_jobs(&layer, &input, &weights, 1)
                .unwrap();
            let threaded = fabric
                .conv2d_with_jobs(&layer, &input, &weights, 4)
                .unwrap();
            // More workers than rows must also clamp cleanly.
            let oversubscribed = fabric
                .conv2d_with_jobs(&layer, &input, &weights, 64)
                .unwrap();
            assert_eq!(serial, threaded, "{design}");
            assert_eq!(serial, oversubscribed, "{design}");
        }
    }

    /// The tentpole theorem: the bit-plane batched dataflow is bitwise
    /// identical to the scalar reference on every design, including a
    /// window count that is *not* a multiple of [`PLANE_WINDOWS`] (10×10
    /// output = 100 windows → one full group + a 36-window scalar tail),
    /// and invariant under the worker count.
    #[test]
    fn bitplane_dataflow_is_bitwise_identical_to_scalar() {
        let mut rng = SplitMix64::seed_from_u64(0xB17);
        // 12×12 input, 3×3 kernel, stride 1 → e = 10, 100 windows.
        let layer = Layer::conv("Conv", Shape::square(12, 2), 5, 3, 1);
        let input = Tensor::from_fn(Shape::square(12, 2), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        let e = layer.output_feature_size();
        assert!(
            !(e * e).is_multiple_of(PLANE_WINDOWS) && e * e > PLANE_WINDOWS,
            "test must exercise the ragged scalar tail"
        );
        for design in Design::ALL {
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            let scalar = fabric
                .conv2d_with_dataflow(&layer, &input, &weights, 1, ConvDataflow::Scalar)
                .unwrap();
            for jobs in [1, 4] {
                let batched = fabric
                    .conv2d_with_dataflow(&layer, &input, &weights, jobs, ConvDataflow::Bitplane)
                    .unwrap();
                assert_eq!(scalar, batched, "{design} jobs={jobs}");
            }
            let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
            assert_eq!(scalar, direct, "{design}");
        }
    }

    #[test]
    fn batched_transport_keeps_the_detected_words_invariant() {
        let mut rng = SplitMix64::seed_from_u64(0xDE7);
        let layer = Layer::conv("Conv", Shape::square(12, 2), 3, 3, 1);
        let input = Tensor::from_fn(Shape::square(12, 2), |_, _, _| rng.range_u64(0, 15));
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        let e = layer.output_feature_size();
        let window = 3 * 3 * 2;
        for design in Design::ALL {
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            fabric.conv2d(&layer, &input, &weights).unwrap();
            // Plane transport must account exactly what scalar transport
            // would: every word of every window crossed the medium.
            assert_eq!(
                fabric.detected_words(),
                (e * e * window) as u64,
                "{design}: batched transport must stay word-honest"
            );
        }
    }

    /// Multi-image batching packs windows across image boundaries; each
    /// output must still equal the single-image convolution exactly.
    #[test]
    fn conv2d_batch_matches_per_image_results() {
        let mut rng = SplitMix64::seed_from_u64(0xBA7C);
        let layer = Layer::conv("Conv", Shape::square(7, 2), 4, 3, 1);
        let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::from_fn(Shape::square(7, 2), |_, _, _| rng.range_u64(0, 15)))
            .collect();
        // 25 windows/image: every bit-plane group spans image boundaries.
        for design in Design::ALL {
            let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
            let batch = fabric.conv2d_batch(&layer, &inputs, &weights, 2).unwrap();
            assert_eq!(batch.len(), inputs.len(), "{design}");
            for (input, got) in inputs.iter().zip(&batch) {
                let solo = fabric.conv2d(&layer, input, &weights).unwrap();
                assert_eq!(got, &solo, "{design}");
            }
        }
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(Design::Ee, 4, 4));
        assert!(fabric
            .conv2d_batch(&layer, &[], &weights, 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn shape_mismatch_reported() {
        let (layer, _, weights) = random_case(1);
        let wrong = Tensor::zeros(Shape::square(5, 2));
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(Design::Oe, 4, 4));
        assert!(fabric.conv2d(&layer, &wrong, &weights).is_err());
    }
}
