//! Line-coding ablation: what PAM-4 modulation would buy PIXEL.
//!
//! The paper's designs are on-off keyed. PAM-4 (two bits per optical
//! slot, `pixel_photonics::serdes`) halves the slots a word occupies —
//! directly relaxing the §V-B2 pulse-clumping limit that bends the
//! optical latency curves — at the price of ~1.5× modulator drive energy
//! and a 4-level receiver (which the OO design already owns). This
//! module re-evaluates the optical latency and link-energy terms under
//! PAM-4 so the trade can be read off next to the paper's OOK numbers.

use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Design};
use crate::latency::firings;
use pixel_dnn::analysis::ComputeCounts;
use pixel_photonics::serdes::Format;
use pixel_units::Time;

/// Service cycles of one optical firing round under a line code: the
/// clumping limit applies to *slots*, which PAM-4 halves.
///
/// # Panics
///
/// Panics for the EE design (no optical line code to choose).
#[must_use]
pub fn optical_cycles_per_firing(config: &AcceleratorConfig, format: Format) -> f64 {
    let per_chunk = config
        .design
        .model()
        .chunk_handoff_cycles()
        // lint:allow(P002) EE never reaches line coding; documented # Panics contract
        .expect("line coding applies to the optical designs");
    let slots = f64::from(format.slots_for(config.bits_per_lane));
    let q = config.clocks.pulses_per_electrical_cycle();
    let chunks = (slots / q).ceil();
    cal::PIPELINE_CYCLES + per_chunk * chunks + cal::RESYNC_CYCLES * (chunks - 1.0)
}

/// Layer latency under a line code (activation streaming unchanged).
#[must_use]
pub fn layer_latency_with_format(
    config: &AcceleratorConfig,
    counts: &ComputeCounts,
    format: Format,
) -> Time {
    let mac_cycles = firings(config, counts) * optical_cycles_per_firing(config, format);
    #[allow(clippy::cast_precision_loss)]
    let act_cycles = (counts.act as f64 / config.tiles as f64).ceil();
    Time::new((mac_cycles + act_cycles) * config.clocks.electrical_period())
}

/// One row of the PAM ablation: latency and modulation-energy ratios of
/// PAM-4 relative to OOK at one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PamPoint {
    /// Bits per lane.
    pub bits: u32,
    /// PAM-4 latency / OOK latency (< 1 is a win).
    pub latency_ratio: f64,
    /// PAM-4 modulation energy / OOK modulation energy (> 1 is a cost).
    pub modulation_energy_ratio: f64,
}

/// Sweeps the PAM-4 trade for a design across precisions, on a
/// representative conv-layer op-count profile.
#[must_use]
pub fn pam4_sweep(design: Design, bits_sweep: &[u32]) -> Vec<PamPoint> {
    let counts = ComputeCounts {
        name: "conv".into(),
        mvm: 10_000_000,
        mul: 90_000_000,
        add: 91_000_000,
        act: 1_000_000,
    };
    bits_sweep
        .iter()
        .map(|&bits| {
            let config = AcceleratorConfig::new(design, 8, bits);
            let ook = layer_latency_with_format(&config, &counts, Format::Ook);
            let pam = layer_latency_with_format(&config, &counts, Format::Pam4);
            PamPoint {
                bits,
                latency_ratio: pam / ook,
                // serdes: half the slots × 3× swing = 1.5× (precision-
                // independent for even bit widths).
                modulation_energy_ratio: 1.5,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ook_matches_the_calibrated_latency_model() {
        // Format::Ook reproduces latency::cycles_per_firing exactly.
        use crate::latency::cycles_per_firing;
        for design in [Design::Oe, Design::Oo] {
            for bits in [4u32, 8, 16, 32] {
                let config = AcceleratorConfig::new(design, 8, bits);
                assert!(
                    (optical_cycles_per_firing(&config, Format::Ook) - cycles_per_firing(&config))
                        .abs()
                        < 1e-12,
                    "{design} {bits}"
                );
            }
        }
    }

    #[test]
    fn pam4_defers_the_clumping_threshold() {
        // At 16 bits OOK needs two chunks (16 slots > 10); PAM-4 needs
        // one (8 slots) — the resync penalty vanishes.
        let config = AcceleratorConfig::new(Design::Oo, 8, 16);
        let ook = optical_cycles_per_firing(&config, Format::Ook);
        let pam = optical_cycles_per_firing(&config, Format::Pam4);
        assert!((ook - 11.0).abs() < 1e-12);
        assert!((pam - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_shows_wins_past_ten_bits() {
        let points = pam4_sweep(Design::Oo, &[4, 8, 16, 32]);
        let ratio = |bits: u32| {
            points
                .iter()
                .find(|p| p.bits == bits)
                .unwrap()
                .latency_ratio
        };
        // Below the threshold both formats fit one chunk: no win.
        assert!((ratio(4) - 1.0).abs() < 1e-9);
        // Past it, PAM-4 dodges resyncs.
        assert!(ratio(16) < 0.75, "16-bit ratio {}", ratio(16));
        assert!(ratio(32) < 0.75, "32-bit ratio {}", ratio(32));
    }

    #[test]
    #[should_panic(expected = "optical")]
    fn ee_has_no_line_code() {
        let config = AcceleratorConfig::new(Design::Ee, 8, 8);
        let _ = optical_cycles_per_firing(&config, Format::Pam4);
    }
}
