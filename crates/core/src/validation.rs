//! Cross-model consistency: the analytic energy model checked against
//! counted device activity from the bit-true engines.
//!
//! The energy model charges an optical multiply `2·K_MRR·b²` from a
//! closed form. [`reconcile_optical_multiply`] instead *runs* the
//! functional engine, reads its [`crate::omac::ActivityCounter`], prices
//! each counted event at the device constants, and reports both numbers —
//! turning "the model and the simulation agree" from an assumption into a
//! measured statement.

use crate::calibration as cal;
use crate::config::{AcceleratorConfig, Design};
use crate::energy::OperationEnergies;
use pixel_units::Energy;

/// Both sides of the multiply-energy reconciliation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplyReconciliation {
    /// Multiplies executed.
    pub multiplies: u64,
    /// MRR bit-slots the functional engine actually performed.
    pub counted_mrr_slots: u64,
    /// Energy from pricing the counted slots (2 rings × K_MRR each).
    pub activity_priced: Energy,
    /// Energy the analytic model charges for the same multiplies.
    pub model_charged: Energy,
}

impl MultiplyReconciliation {
    /// Ratio of activity-priced to model-charged energy (1.0 = exact
    /// agreement).
    #[must_use]
    pub fn agreement(&self) -> f64 {
        self.activity_priced / self.model_charged
    }
}

/// Runs `multiplies` random-free full-scale multiplies through the given
/// optical design's functional engine and reconciles the multiply energy.
///
/// # Panics
///
/// Panics for the EE design (no optical multiply to reconcile) or if
/// `multiplies` is zero.
#[must_use]
pub fn reconcile_optical_multiply(
    design: Design,
    lanes: usize,
    bits: u32,
    multiplies: usize,
) -> MultiplyReconciliation {
    assert!(multiplies > 0, "need at least one multiply");
    assert!(design.is_optical(), "EE has no optical multiply");
    // Full lanes so padding doesn't inflate the count.
    let count = multiplies.div_ceil(lanes) * lanes;
    let limit = (1u64 << bits) - 1;
    let neurons: Vec<u64> = vec![limit; count];
    let synapses: Vec<u64> = vec![limit; count];

    let config = AcceleratorConfig::new(design, lanes, bits);
    let mac = design.model().functional_engine(&config);
    let _ = mac.inner_product(&neurons, &synapses);
    let counted = mac.activity().mrr_slots();

    #[allow(clippy::cast_precision_loss)]
    let priced = cal::pj(2.0 * cal::K_MRR_PJ_PER_BIT) * counted as f64;
    let ops = OperationEnergies::for_config(&config);
    #[allow(clippy::cast_precision_loss)]
    let charged = ops.mul * count as f64;

    MultiplyReconciliation {
        multiplies: count as u64,
        counted_mrr_slots: counted,
        activity_priced: priced,
        model_charged: charged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oe_multiply_energy_reconciles_exactly() {
        for (lanes, bits) in [(4usize, 8u32), (2, 4), (8, 16)] {
            let r = reconcile_optical_multiply(Design::Oe, lanes, bits, 12);
            assert!(
                (r.agreement() - 1.0).abs() < 1e-12,
                "lanes={lanes} bits={bits}: agreement {}",
                r.agreement()
            );
            assert_eq!(
                r.counted_mrr_slots,
                r.multiplies * u64::from(bits) * u64::from(bits)
            );
        }
    }

    #[test]
    fn oo_multiply_energy_reconciles_exactly() {
        let r = reconcile_optical_multiply(Design::Oo, 4, 8, 8);
        assert!((r.agreement() - 1.0).abs() < 1e-12, "{}", r.agreement());
    }

    #[test]
    #[should_panic(expected = "optical")]
    fn ee_is_rejected() {
        let _ = reconcile_optical_multiply(Design::Ee, 4, 8, 4);
    }
}
