//! Workspace self-check: the repository must lint clean against an
//! EMPTY checked-in baseline. This is the executable form of the
//! invariants DESIGN.md §11 documents — `cargo test -p pixel-lint`
//! fails if anyone reintroduces a violation without a justified
//! `lint:allow` suppression.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_non_suppressed_findings() {
    let root = workspace_root();
    let findings = pixel_lint::cli::analyze_root(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "pixel-lint found violations:\n{}",
        pixel_lint::diag::render_human(&findings)
    );
}

#[test]
fn workspace_is_clean_under_the_structural_and_meta_rules() {
    // The strictest configuration the CI deny step runs: every rule
    // family (lexical, graph, transitive-panic, concurrency), the S001
    // spec-drift check against the committed DESIGN.md, and X002 for
    // stale suppressions — at two worker counts, which must agree.
    let root = workspace_root();
    let serial = pixel_lint::cli::analyze_root_report(&root, 1, true).expect("workspace walk");
    assert!(
        serial.findings.is_empty(),
        "pixel-lint (with --unused-suppressions) found violations:\n{}",
        pixel_lint::diag::render_human(&serial.findings)
    );
    let parallel = pixel_lint::cli::analyze_root_report(&root, 4, true).expect("workspace walk");
    assert_eq!(
        serial.findings, parallel.findings,
        "findings must be jobs-invariant"
    );
    assert_eq!(
        pixel_lint::graph::render_archgraph(&serial.graph),
        pixel_lint::graph::render_archgraph(&parallel.graph),
        "archgraph must be jobs-invariant"
    );
}

#[test]
fn checked_in_baseline_is_empty() {
    let path = workspace_root().join("lint-baseline.toml");
    let text = std::fs::read_to_string(&path).expect("lint-baseline.toml is checked in");
    let entries = pixel_lint::baseline::parse(&text).expect("baseline parses");
    assert!(
        entries.is_empty(),
        "the baseline must stay burned down to empty; found {} grandfathered entr(ies)",
        entries.len()
    );
}

#[test]
fn every_rule_id_is_documented_and_unique() {
    let mut seen = std::collections::BTreeSet::new();
    for rule in pixel_lint::RULES {
        assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
        assert!(!rule.summary.is_empty(), "{} lacks a summary", rule.id);
    }
    for family in [
        "D001", "D002", "D003", "D004", "A001", "A002", "G001", "G002", "G003", "G004", "U001",
        "O001", "P001", "P002", "P003", "P101", "P102", "P103", "P104", "C001", "C002", "C003",
        "C004", "S001", "X001", "X002",
    ] {
        assert!(seen.contains(family), "missing rule {family}");
    }
}
