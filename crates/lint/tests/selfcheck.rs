//! Workspace self-check: the repository must lint clean against an
//! EMPTY checked-in baseline. This is the executable form of the
//! invariants DESIGN.md §11 documents — `cargo test -p pixel-lint`
//! fails if anyone reintroduces a violation without a justified
//! `lint:allow` suppression.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_non_suppressed_findings() {
    let root = workspace_root();
    let findings = pixel_lint::cli::analyze_root(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "pixel-lint found violations:\n{}",
        pixel_lint::diag::render_human(&findings)
    );
}

#[test]
fn checked_in_baseline_is_empty() {
    let path = workspace_root().join("lint-baseline.toml");
    let text = std::fs::read_to_string(&path).expect("lint-baseline.toml is checked in");
    let entries = pixel_lint::baseline::parse(&text).expect("baseline parses");
    assert!(
        entries.is_empty(),
        "the baseline must stay burned down to empty; found {} grandfathered entr(ies)",
        entries.len()
    );
}

#[test]
fn every_rule_id_is_documented_and_unique() {
    let mut seen = std::collections::BTreeSet::new();
    for rule in pixel_lint::RULES {
        assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
        assert!(!rule.summary.is_empty(), "{} lacks a summary", rule.id);
    }
    for family in [
        "D001", "D002", "D003", "D004", "A001", "A002", "U001", "O001", "P001", "P002", "P003",
        "X001",
    ] {
        assert!(seen.contains(family), "missing rule {family}");
    }
}
