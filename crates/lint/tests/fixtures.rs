//! Fixture tests: one positive (fires) and one negative (clean) snippet
//! per rule ID, plus suppression semantics and JSON output shape.

use pixel_lint::analyze_source;

/// Rules fired by a snippet placed at `rel`, in sorted order.
fn rules(rel: &str, src: &str) -> Vec<&'static str> {
    analyze_source(rel, src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

const LIB: &str = "crates/core/src/fixture.rs";

// ----------------------------------------------------------------- D001

#[test]
fn d001_fires_on_wall_clock_reads_in_model_code() {
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(rules(LIB, src), ["D001"]);
    let sys = "use std::time::SystemTime;\n";
    assert_eq!(rules(LIB, sys), ["D001"]);
}

#[test]
fn d001_allows_obs_bench_timing_and_test_code() {
    let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(rules("crates/obs/src/clock.rs", src), Vec::<&str>::new());
    assert_eq!(rules("crates/bench/src/timing.rs", src), Vec::<&str>::new());
    assert_eq!(rules("crates/core/tests/wall.rs", src), Vec::<&str>::new());
    assert_eq!(rules("examples/demo.rs", src), Vec::<&str>::new());
}

#[test]
fn d001_exempts_only_the_vetted_serve_clock_adapter() {
    // The daemon's clock adapter is the single sanctioned wall-clock
    // boundary inside crates/serve; policy modules stay banned.
    let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(rules("crates/serve/src/clock.rs", src), Vec::<&str>::new());
    assert_eq!(rules("crates/serve/src/machine.rs", src), ["D001"]);
    assert_eq!(rules("crates/serve/src/daemon.rs", src), ["D001"]);
}

// ----------------------------------------------------------------- D002

#[test]
fn d002_fires_on_hash_collections_in_artifact_paths() {
    let src = "use std::collections::HashMap;\nuse std::collections::HashSet;\n";
    assert_eq!(rules("crates/serve/src/fixture.rs", src), ["D002", "D002"]);
    assert_eq!(rules("crates/fleet/src/fixture.rs", src), ["D002", "D002"]);
    assert_eq!(rules("crates/core/src/report.rs", src), ["D002", "D002"]);
}

#[test]
fn d002_allows_hashes_outside_artifact_paths_and_btreemap_anywhere() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(rules(LIB, src), Vec::<&str>::new());
    let btree = "use std::collections::BTreeMap;\n";
    assert_eq!(
        rules("crates/serve/src/fixture.rs", btree),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- D003

#[test]
fn d003_fires_on_float_literal_equality() {
    assert_eq!(rules(LIB, "fn f(x: f64) -> bool { x == 0.5 }\n"), ["D003"]);
    assert_eq!(rules(LIB, "fn f(x: f64) -> bool { 1.0 != x }\n"), ["D003"]);
}

#[test]
fn d003_allows_integer_equality_and_float_ordering() {
    assert_eq!(
        rules(LIB, "fn f(x: u64) -> bool { x == 5 }\n"),
        Vec::<&str>::new()
    );
    assert_eq!(
        rules(LIB, "fn f(x: f64) -> bool { x < 0.5 }\n"),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- D004

#[test]
fn d004_fires_on_env_reads_outside_sanctioned_entry_points() {
    let src = "pub fn f() -> Option<String> { std::env::var(\"X\").ok() }\n";
    assert_eq!(rules(LIB, src), ["D004"]);
}

#[test]
fn d004_allows_env_in_sweep_and_cli_entry_points() {
    let src = "pub fn f() -> Option<String> { std::env::var(\"X\").ok() }\n";
    assert_eq!(rules("crates/core/src/sweep.rs", src), Vec::<&str>::new());
    assert_eq!(
        rules("crates/bench/src/bin/reproduce.rs", src),
        Vec::<&str>::new()
    );
    assert_eq!(
        rules("crates/serve/src/bin/served.rs", src),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- A001

#[test]
fn a001_fires_on_design_match_outside_backends() {
    let src = "fn f(d: Design) -> u32 { match d { Design::Ee => 1, _ => 2 } }\n";
    // `d` is not literally named design; use the idiomatic name.
    let named = "fn f(design: Design) -> u32 { match design { _ => 2 } }\n";
    assert_eq!(rules(LIB, named), ["A001"]);
    let matches = "fn f(design: Design) -> bool { matches!(design, Design::Ee) }\n";
    assert_eq!(rules(LIB, matches), ["A001"]);
    let _ = src;
}

#[test]
fn a001_allows_design_matches_inside_the_backend_layer() {
    let named = "fn f(design: Design) -> u32 { match design { _ => 2 } }\n";
    assert_eq!(
        rules("crates/core/src/model/registry.rs", named),
        Vec::<&str>::new()
    );
    assert_eq!(
        rules("crates/core/src/omac/dispatch.rs", named),
        Vec::<&str>::new()
    );
    // A match on something else entirely is fine anywhere.
    let other = "fn f(x: u32) -> u32 { match x { _ => 2 } }\n";
    assert_eq!(rules(LIB, other), Vec::<&str>::new());
}

// ----------------------------------------------------------------- A002

#[test]
fn a002_fires_on_cross_backend_imports() {
    let src = "use super::oe::shared_helper;\n";
    assert_eq!(rules("crates/core/src/model/ee.rs", src), ["A002"]);
    let omac = "fn f() { crate::omac::oo::leak(); }\n";
    assert_eq!(rules("crates/core/src/omac/oe.rs", omac), ["A002"]);
}

#[test]
fn a002_allows_parent_module_and_self_imports() {
    let src = "use super::{DesignModel, StaticPower};\n";
    assert_eq!(
        rules("crates/core/src/model/ee.rs", src),
        Vec::<&str>::new()
    );
    // The shared mod.rs may name all backends.
    let modrs = "pub use ee::EeModel;\npub use oe::OeModel;\n";
    assert_eq!(
        rules("crates/core/src/model/mod.rs", modrs),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- U001

#[test]
fn u001_fires_on_bare_f64_quantity_signatures() {
    let ret = "pub fn tile_energy(&self) -> f64 { 1.0 }\n";
    assert_eq!(rules(LIB, ret), ["U001"]);
    let param = "pub fn set(total_area_um2: f64) {}\n";
    assert_eq!(rules(LIB, param), ["U001"]);
}

#[test]
fn u001_allows_typed_quantities_private_fns_and_other_crates() {
    let typed = "pub fn tile_energy(&self) -> Energy { Energy::ZERO }\n";
    assert_eq!(rules(LIB, typed), Vec::<&str>::new());
    let private = "fn tile_energy(&self) -> f64 { 1.0 }\n";
    assert_eq!(rules(LIB, private), Vec::<&str>::new());
    let elsewhere = "pub fn tile_energy(&self) -> f64 { 1.0 }\n";
    assert_eq!(
        rules("crates/serve/src/fixture.rs", elsewhere),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- O001

#[test]
fn o001_fires_on_non_dot_namespaced_metric_names() {
    let slash = "fn f() { pixel_obs::add(\"Bad/Name\", 1); }\n";
    assert_eq!(rules(LIB, slash), ["O001"]);
    let upper = "fn f() { pixel_obs::gauge(\"serve.Utilization\", 0.5); }\n";
    assert_eq!(rules(LIB, upper), ["O001"]);
    let empty_seg = "fn f() { pixel_obs::observe(\"serve..batch\", 4.0); }\n";
    assert_eq!(rules(LIB, empty_seg), ["O001"]);
    let dash = "fn f() { pixel_obs::add(\"latency-ms\", 1); }\n";
    assert_eq!(rules(LIB, dash), ["O001"]);
}

#[test]
fn o001_allows_dot_namespaced_names_dynamic_names_and_tests() {
    let good = "fn f() { pixel_obs::add(\"serve.arrivals\", 1); pixel_obs::observe(\"serve.batch_size\", 4.0); }\n";
    assert_eq!(rules(LIB, good), Vec::<&str>::new());
    // The fleet's counters are dot-namespaced under `fleet.` / the
    // artifact stream under `pixel.fleet.`.
    let fleet = "fn f() { pixel_obs::add(\"fleet.arrivals\", 1); pixel_obs::add(\"fleet.router_shed\", 1); pixel_obs::observe(\"pixel.fleet.point\", 1.0); }\n";
    assert_eq!(rules("crates/fleet/src/sim.rs", fleet), Vec::<&str>::new());
    // Computed names and Registry method calls are out of scope.
    let dynamic = "fn f(n: &str) { pixel_obs::add(n, 1); }\n";
    assert_eq!(rules(LIB, dynamic), Vec::<&str>::new());
    let method = "fn f(r: &Registry) { r.add(\"Bad/Name\", 1); }\n";
    assert_eq!(rules(LIB, method), Vec::<&str>::new());
    // Span paths are slash-separated by design.
    let span = "fn f() { let _s = pixel_obs::span(\"serve/sim\"); }\n";
    assert_eq!(rules(LIB, span), Vec::<&str>::new());
    // Tests may name metrics freely.
    let in_test = "fn f() { pixel_obs::add(\"Bad/Name\", 1); }\n";
    assert_eq!(rules("crates/obs/tests/t.rs", in_test), Vec::<&str>::new());
}

#[test]
fn o001_accepts_a_suppression() {
    let src = "fn f() {\n    // lint:allow(O001) legacy dashboard key\n    pixel_obs::add(\"legacy/key\", 1);\n}\n";
    assert_eq!(rules(LIB, src), Vec::<&str>::new());
}

// ----------------------------------------------------------------- P-rules

#[test]
fn p_rules_fire_on_panicking_calls_in_library_code() {
    assert_eq!(
        rules(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
        ["P001"]
    );
    assert_eq!(
        rules(LIB, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n"),
        ["P002"]
    );
    assert_eq!(rules(LIB, "fn f() { panic!(\"boom\"); }\n"), ["P003"]);
}

#[test]
fn p_rules_allow_test_code_and_non_library_paths() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules("crates/core/tests/t.rs", src), Vec::<&str>::new());
    let in_mod = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert_eq!(rules(LIB, in_mod), Vec::<&str>::new());
}

// ----------------------------------------------------------- suppression

#[test]
fn suppression_silences_its_line_and_the_next() {
    let above = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(P001) checked upstream\n    x.unwrap()\n}\n";
    assert_eq!(rules(LIB, above), Vec::<&str>::new());
    let trailing =
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(P001) checked upstream\n";
    assert_eq!(rules(LIB, trailing), Vec::<&str>::new());
}

#[test]
fn suppression_does_not_reach_two_lines_down() {
    let src =
        "// lint:allow(P001) too far away\nfn g() {}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules(LIB, src), ["P001"]);
}

#[test]
fn suppression_only_covers_the_named_rule() {
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(P002) wrong rule\n    x.unwrap()\n}\n";
    assert_eq!(rules(LIB, src), ["P001"]);
}

#[test]
fn x001_fires_on_malformed_suppressions_and_is_unsuppressible() {
    assert_eq!(rules(LIB, "// lint:allow(P999) no such rule\n"), ["X001"]);
    assert_eq!(rules(LIB, "// lint:allow(P001)\n"), ["X001"]);
    // X001 cannot be silenced by another suppression.
    let nested = "// lint:allow(X001) hush\n// lint:allow(P999) no such rule\n";
    assert!(rules(LIB, nested).contains(&"X001"));
}

#[test]
fn doc_comments_describing_the_syntax_are_not_suppressions() {
    let src = "/// Use `// lint:allow(P999) reason` to suppress.\nfn f() {}\n";
    assert_eq!(rules(LIB, src), Vec::<&str>::new());
}

// ------------------------------------------------------------- rendering

#[test]
fn json_output_has_the_documented_shape() {
    let findings = analyze_source(LIB, "fn f() { panic!(\"boom\"); }\n");
    let json = pixel_lint::diag::render_json(&findings);
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    assert!(json.contains("\"version\":1"), "{json}");
    assert!(json.contains("\"total\":1"), "{json}");
    assert!(json.contains("\"rule\":\"P003\""), "{json}");
    assert!(json.contains(&format!("\"file\":\"{LIB}\"")), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
}

#[test]
fn human_output_is_file_line_rule_message() {
    let findings = analyze_source(LIB, "fn f() { panic!(\"boom\"); }\n");
    let text = pixel_lint::diag::render_human(&findings);
    assert!(text.contains(&format!("{LIB}:1: P003:")), "{text}");
    assert!(text.contains("pixel-lint: 1 finding(s)"), "{text}");
}

// --------------------------------------------------------------- baseline

#[test]
fn baseline_round_trips_and_filters_exact_matches() {
    use pixel_lint::baseline::{apply, parse, serialize, BaselineEntry};
    let entries = vec![
        BaselineEntry {
            rule: "P001".into(),
            file: "crates/core/src/a.rs".into(),
            line: 7,
        },
        BaselineEntry {
            rule: "D003".into(),
            file: "crates/dnn/src/b.rs".into(),
            line: 99,
        },
    ];
    let text = serialize(&entries);
    assert_eq!(parse(&text).expect("round trip"), entries);

    let fired = analyze_source(
        "crates/core/src/a.rs",
        "fn a() {}\nfn b() {}\nfn c() {}\nfn d() {}\nfn e() {}\nfn g() {}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].line, 7);
    // Exact (rule, file, line) match is filtered; anything else is not.
    assert!(apply(fired.clone(), &entries).is_empty());
    let off_by_one = vec![BaselineEntry {
        rule: "P001".into(),
        file: "crates/core/src/a.rs".into(),
        line: 8,
    }];
    assert_eq!(apply(fired, &off_by_one).len(), 1);
}
