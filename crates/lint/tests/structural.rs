//! Fixture tests for the structural rule families: each G/P1xx/C/S/X002
//! rule gets a positive fixture (the violation fires), a suppressed
//! fixture (a justified `lint:allow` clears it), and a negative fixture
//! (conforming code stays clean) — all through the public
//! [`pixel_lint::analyze_sources`] pipeline, exactly as the CLI runs it.

use pixel_lint::{analyze_sources, AnalysisOptions, WorkspaceReport};

fn analyze(sources: &[(&str, &str)]) -> WorkspaceReport {
    analyze_sources(sources, &AnalysisOptions::default())
}

fn rules_in(report: &WorkspaceReport, file: &str) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.file == file)
        .map(|f| f.rule)
        .collect()
}

fn fired(report: &WorkspaceReport, rule: &str) -> bool {
    report.findings.iter().any(|f| f.rule == rule)
}

// ---------------------------------------------------------------- G-rules

#[test]
fn g001_flags_a_crate_cycle() {
    let r = analyze(&[
        (
            "crates/core/src/lib.rs",
            "use pixel_serve::wire::frame;\npub fn a() {}\n",
        ),
        (
            "crates/serve/src/lib.rs",
            "use pixel_core::config::Cfg;\npub mod wire;\n",
        ),
        ("crates/serve/src/wire.rs", "pub fn frame() {}\n"),
    ]);
    assert!(fired(&r, "G001"), "core <-> serve cycle: {:?}", r.findings);
}

#[test]
fn g002_flags_an_upward_layer_edge() {
    let r = analyze(&[
        (
            "crates/dnn/src/lib.rs",
            "use pixel_core::config::Cfg;\npub fn a() {}\n",
        ),
        ("crates/core/src/lib.rs", "pub mod config;\n"),
        ("crates/core/src/config.rs", "pub struct Cfg;\n"),
    ]);
    assert!(
        fired(&r, "G002"),
        "dnn (layer 1) -> core (layer 2): {:?}",
        r.findings
    );
}

#[test]
fn g003_takes_precedence_over_g002_for_leaves() {
    let r = analyze(&[
        (
            "crates/units/src/lib.rs",
            "use pixel_obs::span;\npub fn a() {}\n",
        ),
        ("crates/obs/src/lib.rs", "pub fn span() {}\n"),
    ]);
    assert!(fired(&r, "G003"), "units is a leaf: {:?}", r.findings);
    assert!(!fired(&r, "G002"), "G003 subsumes G002: {:?}", r.findings);
}

#[test]
fn g004_flags_transitive_backend_coupling() {
    // ee -> shared -> oo: no direct reference (A002 stays quiet), but
    // the transitive path must trip G004.
    let r = analyze(&[
        (
            "crates/core/src/model/ee.rs",
            "use crate::model::shared::helper;\npub fn cost() { helper(); }\n",
        ),
        (
            "crates/core/src/model/shared.rs",
            "use crate::model::oo::weight;\npub fn helper() { weight(); }\n",
        ),
        ("crates/core/src/model/oo.rs", "pub fn weight() {}\n"),
        (
            "crates/core/src/model/mod.rs",
            "pub mod ee;\npub mod oo;\npub mod shared;\n",
        ),
    ]);
    let g004: Vec<_> = r.findings.iter().filter(|f| f.rule == "G004").collect();
    assert!(!g004.is_empty(), "{:?}", r.findings);
    assert_eq!(g004[0].file, "crates/core/src/model/ee.rs");
    assert!(g004[0].message.contains("shared.rs"), "{}", g004[0].message);
    assert!(!fired(&r, "A002"), "no direct edge: {:?}", r.findings);
}

#[test]
fn g004_registry_mod_does_not_couple_backends() {
    // The registry mod.rs legitimately declares every backend; paths
    // through it must not count as coupling.
    let r = analyze(&[
        (
            "crates/core/src/model/ee.rs",
            "use crate::model::Registry;\npub fn cost() {}\n",
        ),
        ("crates/core/src/model/oo.rs", "pub fn weight() {}\n"),
        (
            "crates/core/src/model/mod.rs",
            "pub mod ee;\npub mod oo;\npub struct Registry;\n",
        ),
    ]);
    assert!(!fired(&r, "G004"), "{:?}", r.findings);
}

#[test]
fn conforming_downward_edges_stay_clean() {
    let r = analyze(&[
        (
            "crates/serve/src/lib.rs",
            "use pixel_core::config::Cfg;\npub fn a() {}\n",
        ),
        ("crates/core/src/lib.rs", "pub mod config;\n"),
        ("crates/core/src/config.rs", "pub struct Cfg;\n"),
    ]);
    for rule in ["G001", "G002", "G003", "G004"] {
        assert!(!fired(&r, rule), "{rule} misfired: {:?}", r.findings);
    }
}

// ---------------------------------------------------------------- P1xx

#[test]
fn p101_flags_unwrap_reachable_from_a_bin() {
    let r = analyze(&[
        (
            "crates/bench/src/bin/tool.rs",
            "fn main() { pixel_core::helper::risky(); }\n",
        ),
        (
            "crates/core/src/helper.rs",
            "pub fn risky() { std::fs::read(\"x\").unwrap(); }\n",
        ),
        ("crates/core/src/lib.rs", "pub mod helper;\n"),
    ]);
    let p101: Vec<_> = r.findings.iter().filter(|f| f.rule == "P101").collect();
    assert_eq!(p101.len(), 1, "{:?}", r.findings);
    assert_eq!(p101[0].file, "crates/core/src/helper.rs");
    assert!(p101[0].message.contains("main"), "{}", p101[0].message);
}

#[test]
fn p001_suppression_carries_over_to_p101() {
    let r = analyze(&[
        (
            "crates/bench/src/bin/tool.rs",
            "fn main() { pixel_core::helper::risky(); }\n",
        ),
        (
            "crates/core/src/helper.rs",
            "pub fn risky() {\n    // lint:allow(P001) fixture: the read is infallible here\n    std::fs::read(\"x\").unwrap();\n}\n",
        ),
        ("crates/core/src/lib.rs", "pub mod helper;\n"),
    ]);
    assert!(!fired(&r, "P001"), "{:?}", r.findings);
    assert!(!fired(&r, "P101"), "carryover: {:?}", r.findings);
}

#[test]
fn p102_flags_expect_reachable_from_an_entry_lib_surface() {
    let r = analyze(&[(
        "crates/serve/src/machine.rs",
        "pub fn step() { inner(); }\nfn inner() { opt().expect(\"set\"); }\nfn opt() -> Option<u32> { None }\n",
    )]);
    assert!(fired(&r, "P102"), "{:?}", r.findings);
}

#[test]
fn p103_flags_panic_reachable_from_a_bin() {
    let r = analyze(&[(
        "crates/serve/src/bin/served.rs",
        "fn main() { fail(); }\nfn fail() { panic!(\"boom\"); }\n",
    )]);
    assert!(fired(&r, "P103"), "{:?}", r.findings);
}

#[test]
fn p104_flags_reachable_arithmetic_indexing_and_suppression_clears_it() {
    let hot = "pub fn run(v: &[u32], i: usize) -> u32 { v[i + 1] }\n";
    let r = analyze(&[("crates/fleet/src/sim.rs", hot)]);
    assert!(fired(&r, "P104"), "{:?}", r.findings);

    let suppressed = "// lint:allow(P104) fixture: i + 1 < v.len() is the documented contract\npub fn run(v: &[u32], i: usize) -> u32 { v[i + 1] }\n";
    let r = analyze(&[("crates/fleet/src/sim.rs", suppressed)]);
    assert!(!fired(&r, "P104"), "{:?}", r.findings);
}

#[test]
fn unreachable_panics_do_not_become_p1xx() {
    // A lexical P001 still fires, but no entry point reaches the fn, so
    // the transitive rule must stay quiet.
    let r = analyze(&[
        (
            "crates/core/src/island.rs",
            "pub fn island() { opt().unwrap(); }\nfn opt() -> Option<u32> { None }\n",
        ),
        ("crates/core/src/lib.rs", "pub mod island;\n"),
    ]);
    assert!(fired(&r, "P001"), "{:?}", r.findings);
    assert!(!fired(&r, "P101"), "{:?}", r.findings);
}

// ---------------------------------------------------------------- C-rules

#[test]
fn c001_flags_thread_spawn_outside_sanctioned_modules() {
    let src = "pub fn go() { std::thread::spawn(|| {}); }\n";
    let r = analyze(&[("crates/core/src/engine.rs", src)]);
    assert_eq!(rules_in(&r, "crates/core/src/engine.rs"), vec!["C001"]);

    // The sanctioned sweep engine may spawn.
    let r = analyze(&[("crates/core/src/sweep.rs", src)]);
    assert!(!fired(&r, "C001"), "{:?}", r.findings);

    // A justified suppression clears it elsewhere.
    let suppressed =
        "pub fn go() {\n    // lint:allow(C001) fixture: scoped helper joins before returning\n    std::thread::spawn(|| {});\n}\n";
    let r = analyze(&[("crates/core/src/engine.rs", suppressed)]);
    assert!(!fired(&r, "C001"), "{:?}", r.findings);
}

#[test]
fn c002_flags_mutable_global_state() {
    // `static mut` is never acceptable, even in a sanctioned file.
    let r = analyze(&[("crates/obs/src/registry.rs", "static mut COUNT: u32 = 0;\n")]);
    assert!(fired(&r, "C002"), "{:?}", r.findings);

    // Interior-mutable statics are flagged outside the sanctioned set...
    let locked = "static CACHE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
    let r = analyze(&[("crates/core/src/state.rs", locked)]);
    assert!(fired(&r, "C002"), "{:?}", r.findings);

    // ... and sanctioned inside obs (the metrics registry lives there).
    let r = analyze(&[("crates/obs/src/registry.rs", locked)]);
    assert!(!fired(&r, "C002"), "{:?}", r.findings);
}

#[test]
fn c003_flags_completion_order_accumulation() {
    let src = "pub fn total(xs: &[u64]) -> u64 {\n    let mut sum = 0u64;\n    std::thread::scope(|s| {\n        let hs: Vec<_> = xs.iter().map(|x| s.spawn(move || *x)).collect();\n        for h in hs {\n            sum += h.join().unwrap_or(0);\n        }\n    });\n    sum\n}\n";
    let r = analyze(&[("crates/core/src/sweep.rs", src)]);
    assert!(fired(&r, "C003"), "{:?}", r.findings);

    // Collecting into a Vec and folding afterwards is the sanctioned
    // spawn-order merge.
    let folded = "pub fn total(xs: &[u64]) -> u64 {\n    let parts = std::thread::scope(|s| {\n        let hs: Vec<_> = xs.iter().map(|x| s.spawn(move || *x)).collect();\n        hs.into_iter().map(|h| h.join().unwrap_or(0)).collect::<Vec<_>>()\n    });\n    parts.iter().sum()\n}\n";
    let r = analyze(&[("crates/core/src/sweep.rs", folded)]);
    assert!(!fired(&r, "C003"), "{:?}", r.findings);
}

#[test]
fn c004_flags_hash_collections_reachable_from_artifact_paths() {
    let util = "use std::collections::HashMap;\npub struct Cache { pub map: HashMap<u32, u32> }\n";
    let reached = [
        (
            "crates/serve/src/lib.rs",
            "use pixel_core::util::Cache;\npub fn a() {}\n",
        ),
        ("crates/core/src/util.rs", util),
        ("crates/core/src/lib.rs", "pub mod util;\n"),
    ];
    let r = analyze(&reached);
    let c004: Vec<_> = r.findings.iter().filter(|f| f.rule == "C004").collect();
    assert_eq!(c004.len(), 1, "{:?}", r.findings);
    assert_eq!(c004[0].file, "crates/core/src/util.rs");

    // The same file with no edge from the artifact/report paths is out
    // of C004's jurisdiction (D002 never applied to it either).
    let r = analyze(&[
        ("crates/core/src/util.rs", util),
        ("crates/core/src/lib.rs", "pub mod util;\n"),
    ]);
    assert!(!fired(&r, "C004"), "{:?}", r.findings);

    // A justified suppression on the import line clears it.
    let suppressed = "// lint:allow(C004) fixture: per-key reads only, order never leaves\nuse std::collections::HashMap;\npub struct Cache { pub map: HashMap<u32, u32> }\n";
    let mut sources = reached;
    sources[1] = ("crates/core/src/util.rs", suppressed);
    let r = analyze(&sources);
    assert!(!fired(&r, "C004"), "{:?}", r.findings);
}

// ---------------------------------------------------------------- meta

#[test]
fn s001_flags_spec_drift_in_both_directions() {
    // A catalogue that documents a bogus rule and misses real ones.
    let opts = AnalysisOptions {
        design_md: Some("The catalogue: D001 and the imaginary S999.\n"),
        ..AnalysisOptions::default()
    };
    let r = analyze_sources(&[("crates/core/src/lib.rs", "pub fn a() {}\n")], &opts);
    let s001: Vec<_> = r.findings.iter().filter(|f| f.rule == "S001").collect();
    assert!(
        s001.iter().any(|f| f.message.contains("S999")),
        "undocumented bogus id: {:?}",
        r.findings
    );
    assert!(
        s001.iter()
            .any(|f| f.message.contains("missing from the DESIGN.md catalogue")),
        "missing implemented ids: {:?}",
        r.findings
    );
    assert!(s001.iter().all(|f| f.file == "DESIGN.md"));
}

#[test]
fn x002_flags_stale_suppressions_only_when_asked() {
    let sources = [(
        "crates/core/src/quiet.rs",
        "// lint:allow(D001) fixture: nothing here reads a clock\npub fn a() {}\n",
    )];
    let r = analyze_sources(&sources, &AnalysisOptions::default());
    assert!(!fired(&r, "X002"), "off by default: {:?}", r.findings);

    let opts = AnalysisOptions {
        unused_suppressions: true,
        ..AnalysisOptions::default()
    };
    let r = analyze_sources(&sources, &opts);
    let x002: Vec<_> = r.findings.iter().filter(|f| f.rule == "X002").collect();
    assert_eq!(x002.len(), 1, "{:?}", r.findings);
    assert!(x002[0].message.contains("D001"), "{}", x002[0].message);
}

#[test]
fn x002_spares_suppressions_that_suppress_something() {
    let opts = AnalysisOptions {
        unused_suppressions: true,
        ..AnalysisOptions::default()
    };
    let r = analyze_sources(
        &[(
            "crates/core/src/busy.rs",
            "pub fn risky() {\n    // lint:allow(P001) fixture: infallible by construction\n    opt().unwrap();\n}\nfn opt() -> Option<u32> { None }\n",
        )],
        &opts,
    );
    assert!(!fired(&r, "X002"), "{:?}", r.findings);
    assert!(!fired(&r, "P001"), "{:?}", r.findings);
}

// ------------------------------------------------------------ determinism

#[test]
fn findings_and_archgraph_are_jobs_invariant() {
    // A workspace large enough to split into chunks, with violations in
    // several files; every worker count must agree byte for byte.
    let sources: &[(&str, &str)] = &[
        (
            "crates/core/src/engine.rs",
            "pub fn go() { std::thread::spawn(|| {}); }\n",
        ),
        (
            "crates/core/src/island.rs",
            "pub fn island() { opt().unwrap(); }\nfn opt() -> Option<u32> { None }\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub mod engine;\npub mod island;\n",
        ),
        (
            "crates/dnn/src/lib.rs",
            "use pixel_core::engine::go;\npub fn a() {}\n",
        ),
        (
            "crates/fleet/src/sim.rs",
            "pub fn run(v: &[u32], i: usize) -> u32 { v[i + 1] }\n",
        ),
        ("crates/units/src/lib.rs", "use pixel_obs::span;\n"),
    ];
    let base = analyze_sources(sources, &AnalysisOptions::default());
    assert!(!base.findings.is_empty());
    for jobs in [2usize, 4, 9] {
        let opts = AnalysisOptions {
            jobs,
            ..AnalysisOptions::default()
        };
        let r = analyze_sources(sources, &opts);
        assert_eq!(r.findings, base.findings, "findings differ at jobs {jobs}");
        assert_eq!(
            pixel_lint::graph::render_archgraph(&r.graph),
            pixel_lint::graph::render_archgraph(&base.graph),
            "archgraph differs at jobs {jobs}"
        );
    }
}
