//! Workspace dependency graphs and the structural G/C004 rules.
//!
//! Two graphs are built from the per-file [`crate::parser::FileItems`]:
//!
//! * the **crate graph** — one node per workspace crate, one edge per
//!   `pixel_*` reference in non-test code — checked against the
//!   documented layering (G001 cycles, G002 layering, G003 leaves) and
//!   rendered as the `reproduce archgraph` artifact;
//! * the **module graph** — one node per source file, edges from `use`
//!   paths, path-qualified calls and `mod` declarations, resolved by
//!   longest-module-path prefix — used for transitive backend
//!   isolation (G004) and for lifting D002 from path heuristics to
//!   use-graph reachability (C004).
//!
//! Everything here is deterministic: files arrive sorted, adjacency is
//! kept in `BTree` collections, and the artifact text depends only on
//! crate-level edges (not line numbers), so it changes only when a
//! cross-crate dependency changes.

use crate::diag::Finding;
use crate::parser::FileItems;
use crate::rules::{is_test_context, D002_FILES, D002_PREFIXES};
use std::collections::{BTreeMap, BTreeSet};

/// The documented layering: every crate edge must point to a strictly
/// lower layer. Layer 0 crates are leaves (G003). Mirrors DESIGN.md §14
/// — extend this table when a new crate joins the workspace.
pub const LAYERS: [(&str, u8); 11] = [
    ("pixel_units", 0),
    ("pixel_obs", 0),
    ("pixel_lint", 0),
    ("pixel_photonics", 1),
    ("pixel_electronics", 1),
    ("pixel_dnn", 1),
    ("pixel_core", 2),
    ("pixel_serve", 3),
    ("pixel_fleet", 4),
    ("pixel_bench", 5),
    ("pixel", 5),
];

/// The `crates/core` backend modules that must stay mutually isolated.
const BACKEND_DIRS: [&str; 2] = ["crates/core/src/model/", "crates/core/src/omac/"];
const BACKEND_STEMS: [&str; 3] = ["ee", "oe", "oo"];

/// Layer rank of a crate, if documented.
#[must_use]
pub fn layer_of(krate: &str) -> Option<u8> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == krate)
        .map(|(_, l)| *l)
}

/// The workspace crate a file belongs to (`pixel_core` for
/// `crates/core/src/...`, `pixel` for the root `src/`), or `None` for
/// files outside any crate source tree.
#[must_use]
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let dir = rest.split('/').next()?;
        if rest[dir.len()..].starts_with("/src/") {
            return Some(format!("pixel_{dir}"));
        }
        return None; // crate tests/ benches/ do not define library deps
    }
    if rel.starts_with("src/") {
        return Some("pixel".to_owned());
    }
    None
}

/// Module path of a file within its crate (`crates/core/src/model/ee.rs`
/// → `["model", "ee"]`; `lib.rs`/`main.rs` → root; `src/bin/x.rs` gets
/// its own `["bin", "x"]` root so nothing resolves into it).
fn module_path(rel: &str) -> Vec<String> {
    let rest = if let Some(r) = rel.strip_prefix("crates/") {
        match r.find("/src/") {
            Some(at) => &r[at + 5..],
            None => return Vec::new(),
        }
    } else if let Some(r) = rel.strip_prefix("src/") {
        r
    } else {
        return Vec::new();
    };
    let trimmed = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut segs: Vec<String> = trimmed.split('/').map(str::to_owned).collect();
    if segs
        .last()
        .is_some_and(|s| s == "lib" || s == "main" || s == "mod")
    {
        segs.pop();
    }
    segs
}

/// One analyzed source file, as the graph layer sees it.
pub struct GraphFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Parsed items.
    pub items: &'a FileItems,
}

/// One crate-level dependency edge with its first witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrateEdge {
    /// Referencing crate.
    pub from: String,
    /// Referenced crate.
    pub to: String,
    /// First file that witnesses the edge (sorted-walk order).
    pub file: String,
    /// Line of the first witness.
    pub line: u32,
}

/// The workspace architecture graph plus the structural findings.
pub struct ArchGraph {
    /// Crates present in the workspace, sorted.
    pub crates: Vec<String>,
    /// Deduplicated crate edges, sorted by (from, to).
    pub edges: Vec<CrateEdge>,
    /// G001/G002/G003/G004 and C004 findings.
    pub findings: Vec<Finding>,
    /// Number of backend files checked by G004.
    pub backend_files: usize,
}

struct ModuleGraph {
    /// Per crate: module path → file index, for longest-prefix lookup.
    modules: BTreeMap<String, Vec<(Vec<String>, usize)>>,
    /// Per file: crate key.
    crates: Vec<Option<String>>,
    /// Per file: module path.
    paths: Vec<Vec<String>>,
}

impl ModuleGraph {
    fn build(files: &[GraphFile<'_>]) -> Self {
        let mut modules: BTreeMap<String, Vec<(Vec<String>, usize)>> = BTreeMap::new();
        let mut crates = Vec::with_capacity(files.len());
        let mut paths = Vec::with_capacity(files.len());
        for (i, f) in files.iter().enumerate() {
            let krate = crate_of(f.rel);
            let mpath = module_path(f.rel);
            if let Some(k) = &krate {
                // Bin targets are separate crate roots: nothing resolves
                // into them, so they don't join the module table.
                if mpath.first().is_none_or(|s| s != "bin") {
                    modules
                        .entry(k.clone())
                        .or_default()
                        .push((mpath.clone(), i));
                }
            }
            crates.push(krate);
            paths.push(mpath);
        }
        for v in modules.values_mut() {
            // Longest paths first so prefix search can take the first hit.
            v.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        }
        Self {
            modules,
            crates,
            paths,
        }
    }

    /// Resolves a path (from a `use` or a qualified call) seen in file
    /// `from` to a workspace file, or `None` for external paths.
    fn resolve(&self, from: usize, segments: &[String]) -> Option<usize> {
        let (krate, abs): (String, Vec<String>) = match segments.first().map(String::as_str) {
            None | Some("std" | "core" | "alloc" | "*") => return None,
            Some("crate") => (self.crates[from].clone()?, segments[1..].to_vec()),
            Some("self") => {
                let mut p = self.paths[from].clone();
                p.extend_from_slice(&segments[1..]);
                (self.crates[from].clone()?, p)
            }
            Some("super") => {
                let mut p = self.paths[from].clone();
                let mut rest = segments;
                while rest.first().is_some_and(|s| s == "super") {
                    p.pop();
                    rest = &rest[1..];
                }
                p.extend_from_slice(rest);
                (self.crates[from].clone()?, p)
            }
            Some(head) if head == "pixel" || head.starts_with("pixel_") => {
                if !self.modules.contains_key(head) {
                    return None;
                }
                (head.to_owned(), segments[1..].to_vec())
            }
            Some(_) => return None, // bare head: an item in scope, not a module path
        };
        let table = self.modules.get(&krate)?;
        for (mpath, idx) in table {
            if mpath.len() <= abs.len() && abs[..mpath.len()] == mpath[..] && *idx != from {
                return Some(*idx);
            }
        }
        None
    }
}

/// Per-file outgoing reference edges (use paths + qualified calls),
/// resolved within the workspace. `#[cfg(test)]` spans are excluded —
/// test-only imports must not shape the architecture graph.
/// Deterministic: sorted, deduplicated.
fn reference_edges(
    files: &[GraphFile<'_>],
    scans: &[&crate::lexer::Scan],
    graph: &ModuleGraph,
) -> Vec<BTreeSet<usize>> {
    let mut out = vec![BTreeSet::new(); files.len()];
    for (i, f) in files.iter().enumerate() {
        if is_test_context(f.rel) {
            continue;
        }
        for u in &f.items.uses {
            if !scans[i].is_test_line(u.line) {
                if let Some(t) = graph.resolve(i, &u.segments) {
                    out[i].insert(t);
                }
            }
        }
        for c in &f.items.calls {
            if c.segments.len() >= 2 && !scans[i].is_test_line(c.line) {
                if let Some(t) = graph.resolve(i, &c.segments) {
                    out[i].insert(t);
                }
            }
        }
    }
    out
}

/// `mod` declaration edges (a file owns the submodules it declares).
fn mod_decl_edges(files: &[GraphFile<'_>], graph: &ModuleGraph) -> Vec<BTreeSet<usize>> {
    let mut out = vec![BTreeSet::new(); files.len()];
    for (i, f) in files.iter().enumerate() {
        let Some(krate) = &graph.crates[i] else {
            continue;
        };
        let Some(table) = graph.modules.get(krate) else {
            continue;
        };
        for m in &f.items.mods {
            if m.inline {
                continue;
            }
            let mut child = graph.paths[i].clone();
            child.push(m.name.clone());
            for (mpath, idx) in table {
                if *mpath == child && *idx != i {
                    out[i].insert(*idx);
                }
            }
        }
    }
    out
}

/// Builds the crate-level graph and runs G001–G003.
fn crate_rules(
    files: &[GraphFile<'_>],
    scans: &[&crate::lexer::Scan],
    graph: &ModuleGraph,
) -> (Vec<String>, Vec<CrateEdge>, Vec<Finding>) {
    let mut present: BTreeSet<String> = BTreeSet::new();
    for k in graph.crates.iter().flatten() {
        present.insert(k.clone());
    }
    // Edges: first witness wins; files are pre-sorted so this is stable.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        let Some(from) = graph.crates[i].clone() else {
            continue;
        };
        if is_test_context(f.rel) {
            continue;
        }
        let mut witness = |to: &str, line: u32| {
            if to != from {
                edges
                    .entry((from.clone(), to.to_owned()))
                    .or_insert_with(|| (f.rel.to_owned(), line));
            }
        };
        for u in &f.items.uses {
            if let Some(head) = u.segments.first() {
                if present.contains(head) && !scans[i].is_test_line(u.line) {
                    witness(head, u.line);
                }
            }
        }
        for c in &f.items.calls {
            if let Some(head) = c.segments.first() {
                if c.segments.len() >= 2 && present.contains(head) && !scans[i].is_test_line(c.line)
                {
                    witness(head, c.line);
                }
            }
        }
    }
    let edges: Vec<CrateEdge> = edges
        .into_iter()
        .map(|((from, to), (file, line))| CrateEdge {
            from,
            to,
            file,
            line,
        })
        .collect();

    let mut findings = Vec::new();

    // G001 — cycles. DFS over sorted adjacency; report each cycle once.
    let adj: BTreeMap<&str, Vec<&CrateEdge>> = {
        let mut m: BTreeMap<&str, Vec<&CrateEdge>> = BTreeMap::new();
        for e in &edges {
            m.entry(e.from.as_str()).or_default().push(e);
        }
        m
    };
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let mut stack: Vec<&str> = Vec::new();
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a CrateEdge>>,
        state: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        findings: &mut Vec<Finding>,
    ) {
        state.insert(node, 1);
        stack.push(node);
        for e in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
            match state.get(e.to.as_str()) {
                Some(1) => {
                    let from = stack.iter().position(|n| *n == e.to).unwrap_or(0);
                    let mut cycle: Vec<&str> = stack[from..].to_vec();
                    cycle.push(e.to.as_str());
                    findings.push(Finding {
                        file: e.file.clone(),
                        line: e.line,
                        rule: "G001",
                        message: format!("crate dependency cycle: {}", cycle.join(" -> ")),
                    });
                }
                Some(_) => {}
                None => dfs(e.to.as_str(), adj, state, stack, findings),
            }
        }
        stack.pop();
        state.insert(node, 2);
    }
    for k in &present {
        if !state.contains_key(k.as_str()) {
            dfs(k, &adj, &mut state, &mut stack, &mut findings);
        }
    }

    // G002 / G003 — layering and leaf isolation.
    for e in &edges {
        if layer_of(&e.from) == Some(0) {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "G003",
                message: format!(
                    "leaf crate `{}` references workspace crate `{}`; layer-0 crates must stay dependency-free",
                    e.from, e.to
                ),
            });
            continue;
        }
        match (layer_of(&e.from), layer_of(&e.to)) {
            (Some(a), Some(b)) if b < a => {}
            (Some(a), Some(b)) => findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "G002",
                message: format!(
                    "layering violation: `{}` (layer {a}) -> `{}` (layer {b}); edges must point to a strictly lower layer",
                    e.from, e.to
                ),
            }),
            _ => findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "G002",
                message: format!(
                    "crate edge `{}` -> `{}` involves a crate missing from the documented layering; add it to LAYERS and DESIGN.md §14",
                    e.from, e.to
                ),
            }),
        }
    }
    (present.into_iter().collect(), edges, findings)
}

/// G004 — transitive backend isolation: from each `ee`/`oe`/`oo`
/// backend file, no use/call path may reach a sibling backend, even
/// through intermediate modules. The registry `mod.rs` files that
/// legitimately name every backend are excluded from the walk, and
/// direct references stay A002's job (paths here need an intermediate).
fn backend_isolation(
    files: &[GraphFile<'_>],
    refs: &[BTreeSet<usize>],
    findings: &mut Vec<Finding>,
) -> usize {
    let backend_stem = |rel: &str| -> Option<&'static str> {
        BACKEND_DIRS.iter().find_map(|dir| {
            BACKEND_STEMS
                .iter()
                .find(|stem| rel == format!("{dir}{stem}.rs"))
                .copied()
        })
    };
    let registry: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| BACKEND_DIRS.iter().any(|d| f.rel == format!("{d}mod.rs")))
        .map(|(i, _)| i)
        .collect();
    let mut checked = 0usize;
    for (start, f) in files.iter().enumerate() {
        let Some(stem) = backend_stem(f.rel) else {
            continue;
        };
        checked += 1;
        // BFS with parent pointers for a witness path.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = vec![start];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(start);
        while let Some(node) = queue.pop() {
            for &next in &refs[node] {
                if seen.contains(&next) || registry.contains(&next) {
                    continue;
                }
                seen.insert(next);
                parent.insert(next, node);
                if let Some(other) = backend_stem(files[next].rel) {
                    if other != stem && node != start {
                        let mut path = vec![files[next].rel.to_owned()];
                        let mut at = node;
                        while at != start {
                            path.push(files[at].rel.to_owned());
                            at = parent[&at];
                        }
                        path.push(f.rel.to_owned());
                        path.reverse();
                        findings.push(Finding {
                            file: f.rel.to_owned(),
                            line: 1,
                            rule: "G004",
                            message: format!(
                                "backend `{stem}` transitively reaches sibling backend `{other}`: {}",
                                path.join(" -> ")
                            ),
                        });
                        continue;
                    }
                }
                queue.push(next);
            }
        }
    }
    findings.sort();
    checked
}

/// C004 — D002 lifted to reachability: any file the artifact/report
/// paths transitively pull in (via use, qualified-call, or `mod`
/// edges) must not use `HashMap`/`HashSet` outside tests, even if its
/// path is not under the D002 prefixes.
fn hash_reachability(
    files: &[GraphFile<'_>],
    scans: &[&crate::lexer::Scan],
    refs: &[BTreeSet<usize>],
    mods: &[BTreeSet<usize>],
    findings: &mut Vec<Finding>,
) {
    let under_d002 =
        |rel: &str| D002_PREFIXES.iter().any(|p| rel.starts_with(p)) || D002_FILES.contains(&rel);
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        if under_d002(f.rel) && !is_test_context(f.rel) {
            reachable.insert(i);
            queue.push(i);
        }
    }
    while let Some(node) = queue.pop() {
        for &next in refs[node].iter().chain(mods[node].iter()) {
            if reachable.insert(next) {
                queue.push(next);
            }
        }
    }
    for &i in &reachable {
        let rel = files[i].rel;
        if under_d002(rel) || is_test_context(rel) {
            continue; // D002 already has jurisdiction
        }
        let hit = scans[i].tokens.iter().find(|t| {
            t.kind == crate::lexer::TokenKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && !scans[i].is_test_line(t.line)
        });
        if let Some(t) = hit {
            findings.push(Finding {
                file: rel.to_owned(),
                line: t.line,
                rule: "C004",
                message: format!(
                    "{} in a file reachable from the artifact/report paths; iteration order may leak into output — use BTreeMap/BTreeSet or suppress with the reason it cannot",
                    t.text
                ),
            });
        }
    }
}

/// Builds both graphs, runs G001–G004 and C004, and returns the
/// [`ArchGraph`]. `files` must be sorted by `rel` (the walk order) and
/// `scans[i]` must correspond to `files[i]`.
#[must_use]
pub fn analyze(files: &[GraphFile<'_>], scans: &[&crate::lexer::Scan]) -> ArchGraph {
    let graph = ModuleGraph::build(files);
    let refs = reference_edges(files, scans, &graph);
    let mods = mod_decl_edges(files, &graph);
    let (crates, edges, mut findings) = crate_rules(files, scans, &graph);
    let backend_files = backend_isolation(files, &refs, &mut findings);
    hash_reachability(files, scans, &refs, &mods, &mut findings);
    findings.sort();
    ArchGraph {
        crates,
        edges,
        findings,
        backend_files,
    }
}

/// Renders the deterministic `reproduce archgraph` artifact: the crate
/// table, the deduplicated edges with one witness file each, the
/// G-rule verdicts, and a DOT digraph. Intentionally free of line
/// numbers and per-fn counts so it only changes when the cross-crate
/// structure changes.
#[must_use]
pub fn render_archgraph(g: &ArchGraph) -> String {
    let mut out = String::new();
    out.push_str("== PIXEL workspace architecture graph ==\n\n");
    out.push_str(&format!("crates ({}):\n", g.crates.len()));
    for k in &g.crates {
        let layer = layer_of(k).map_or("?".to_owned(), |l| l.to_string());
        out.push_str(&format!("  {k:<18} layer {layer}\n"));
    }
    out.push_str(&format!("\nedges ({}):\n", g.edges.len()));
    for e in &g.edges {
        out.push_str(&format!("  {:<18} -> {:<18} ({})\n", e.from, e.to, e.file));
    }
    let by_rule = |rule: &str| g.findings.iter().filter(|f| f.rule == rule).count();
    out.push_str("\nverdicts:\n");
    for (rule, label) in [
        ("G001", "cycles"),
        ("G002", "layering"),
        ("G003", "leaf isolation"),
        ("G004", "backend isolation"),
        ("C004", "hash reachability"),
    ] {
        let n = by_rule(rule);
        let verdict = if n == 0 {
            "ok".to_owned()
        } else {
            format!("{n} violation(s)")
        };
        out.push_str(&format!("  {rule} {label:<18} {verdict}\n"));
    }
    out.push_str(&format!(
        "  backend files checked by G004: {}\n",
        g.backend_files
    ));
    out.push_str("\ndigraph pixel_workspace {\n");
    for k in &g.crates {
        out.push_str(&format!("  \"{k}\";\n"));
    }
    for e in &g.edges {
        out.push_str(&format!("  \"{}\" -> \"{}\";\n", e.from, e.to));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn analyze_src(sources: &[(&str, &str)]) -> ArchGraph {
        let scans: Vec<_> = sources.iter().map(|(_, s)| scan(s)).collect();
        let items: Vec<_> = scans.iter().map(parse).collect();
        let files: Vec<GraphFile<'_>> = sources
            .iter()
            .zip(items.iter())
            .map(|((rel, _), items)| GraphFile { rel, items })
            .collect();
        let scan_refs: Vec<_> = scans.iter().collect();
        analyze(&files, &scan_refs)
    }

    #[test]
    fn crate_and_module_paths() {
        assert_eq!(
            crate_of("crates/core/src/model/ee.rs").as_deref(),
            Some("pixel_core")
        );
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("pixel"));
        assert_eq!(crate_of("crates/core/tests/x.rs"), None);
        assert_eq!(module_path("crates/core/src/model/ee.rs"), ["model", "ee"]);
        assert_eq!(module_path("crates/core/src/model/mod.rs"), ["model"]);
        assert!(module_path("crates/core/src/lib.rs").is_empty());
    }

    #[test]
    fn layering_violation_is_g002() {
        let g = analyze_src(&[
            ("crates/units/src/lib.rs", ""),
            (
                "crates/core/src/lib.rs",
                "use pixel_serve::machine::ServeMachine;\n",
            ),
            ("crates/serve/src/lib.rs", "use pixel_units::Energy;\n"),
        ]);
        assert!(g.findings.iter().any(|f| f.rule == "G002"
            && f.file == "crates/core/src/lib.rs"
            && f.message.contains("pixel_serve")));
    }

    #[test]
    fn leaf_reference_is_g003_not_g002() {
        let g = analyze_src(&[
            (
                "crates/units/src/lib.rs",
                "use pixel_core::config::Design;\n",
            ),
            ("crates/core/src/lib.rs", ""),
        ]);
        assert!(g.findings.iter().any(|f| f.rule == "G003"));
        assert!(!g.findings.iter().any(|f| f.rule == "G002"));
    }

    #[test]
    fn cycle_is_g001() {
        let g = analyze_src(&[
            ("crates/core/src/lib.rs", "use pixel_dnn::zoo;\n"),
            ("crates/dnn/src/lib.rs", "use pixel_core::config::Design;\n"),
        ]);
        assert!(g
            .findings
            .iter()
            .any(|f| f.rule == "G001" && f.message.contains("->")));
    }

    #[test]
    fn transitive_backend_reach_is_g004_but_registry_is_not() {
        let g = analyze_src(&[
            (
                "crates/core/src/model/ee.rs",
                "use crate::model::shared::helper;\nfn f() { helper(); }\n",
            ),
            (
                "crates/core/src/model/shared.rs",
                "use crate::model::oe::OeModel;\npub fn helper() {}\n",
            ),
            ("crates/core/src/model/oe.rs", "pub struct OeModel;\n"),
            (
                "crates/core/src/model/mod.rs",
                "mod ee;\nmod oe;\nmod shared;\nuse self::ee::*;\nuse self::oe::*;\n",
            ),
            ("crates/core/src/lib.rs", "mod model;\n"),
        ]);
        let g004: Vec<_> = g.findings.iter().filter(|f| f.rule == "G004").collect();
        assert_eq!(g004.len(), 1, "{:?}", g.findings);
        assert!(g004[0].message.contains("shared.rs"));
        assert_eq!(g004[0].file, "crates/core/src/model/ee.rs");
    }

    #[test]
    fn direct_sibling_reference_is_left_to_a002() {
        let g = analyze_src(&[
            (
                "crates/core/src/model/ee.rs",
                "use crate::model::oe::OeModel;\n",
            ),
            ("crates/core/src/model/oe.rs", "pub struct OeModel;\n"),
            ("crates/core/src/model/mod.rs", "mod ee;\nmod oe;\n"),
            ("crates/core/src/lib.rs", "mod model;\n"),
        ]);
        assert!(!g.findings.iter().any(|f| f.rule == "G004"));
    }

    #[test]
    fn hash_in_reachable_file_is_c004() {
        let g = analyze_src(&[
            (
                "crates/bench/src/lib.rs",
                "use pixel_core::helper::thing;\n",
            ),
            (
                "crates/core/src/helper.rs",
                "use std::collections::HashMap;\npub fn thing() {}\n",
            ),
            ("crates/core/src/lib.rs", "pub mod helper;\n"),
        ]);
        assert!(g
            .findings
            .iter()
            .any(|f| f.rule == "C004" && f.file == "crates/core/src/helper.rs" && f.line == 1));
    }

    #[test]
    fn hash_in_unreachable_file_is_clean() {
        let g = analyze_src(&[
            ("crates/bench/src/lib.rs", ""),
            (
                "crates/core/src/island.rs",
                "use std::collections::HashMap;\n",
            ),
            ("crates/core/src/lib.rs", ""),
        ]);
        assert!(!g.findings.iter().any(|f| f.rule == "C004"));
    }

    #[test]
    fn archgraph_rendering_is_stable_and_complete() {
        let g = analyze_src(&[
            ("crates/core/src/lib.rs", "use pixel_units::Energy;\n"),
            ("crates/units/src/lib.rs", ""),
        ]);
        let text = render_archgraph(&g);
        assert!(text.contains("pixel_core"));
        assert!(text.contains("\"pixel_core\" -> \"pixel_units\";"));
        assert!(text.contains("G001 cycles"));
        assert_eq!(text, render_archgraph(&g));
    }
}
