//! `pixel-lint` — workspace-specific static analysis for the PIXEL
//! reproduction.
//!
//! Off-the-shelf tools cannot check the invariants this reproduction's
//! credibility rests on, so this crate does, with a zero-dependency,
//! std-only analyzer built on a lightweight Rust tokenizer (no `syn`):
//!
//! * **D-rules (determinism)** — artifacts are pinned bitwise by the
//!   snapshot-equivalence tests, so library code must not read wall
//!   clocks (`D001`) or the process environment (`D004`), must not let
//!   hash-iteration order reach artifact output (`D002`), and must not
//!   compare floats for exact equality against literals (`D003`).
//! * **A-rules (architecture)** — all design-specific cost logic lives
//!   in the `DesignModel` backends: no `match` on `Design` outside
//!   `crates/core/src/{model,omac}` (`A001`) and no cross-backend
//!   reference between the `ee`/`oe`/`oo` modules (`A002`).
//! * **U-rules (unit hygiene)** — public functions in the modelling
//!   crates whose parameter or return names claim a physical quantity
//!   (`*_energy`, `*_area`, `*_ns`, ...) must carry `pixel-units`
//!   newtypes, not bare `f64` (`U001`) — the discipline DSENT imposes
//!   on its technology models.
//! * **O-rules (observability hygiene)** — metric names handed to the
//!   `pixel_obs` recording functions must follow the lowercase
//!   dot-namespaced `crate.subsystem.metric` scheme (`O001`), so the
//!   profile tables, traces, and OpenMetrics exposition stay uniform.
//! * **P-rules (panic hygiene)** — non-test library code must not
//!   `unwrap()` / `expect()` / `panic!` (`P001`–`P003`) unless the line
//!   carries a justified `// lint:allow(P001) reason` suppression.
//!
//! On top of the per-file lexer sits a lightweight item parser
//! (module tree, `use` graph, fn items, name-resolved call sites) that
//! powers the structural rule families:
//!
//! * **G-rules (dependency graph)** — the workspace crate graph must be
//!   acyclic (`G001`), respect the documented layering (`G002`), keep
//!   the layer-0 leaves dependency-free (`G003`), and keep the
//!   `ee`/`oe`/`oo` backends isolated even transitively (`G004`); the
//!   graph is rendered as the snapshot-pinned `reproduce archgraph`
//!   artifact.
//! * **P1xx (transitive panic paths)** — panic-capable expressions
//!   *reachable* from artifact entry points via the call graph
//!   (`P101`–`P103` mirror `P001`–`P003` and share their suppressions;
//!   `P104` adds arithmetic slice indexing).
//! * **C-rules (concurrency determinism)** — thread spawns outside the
//!   sanctioned engines (`C001`), mutable global state outside obs and
//!   the documented knobs (`C002`), completion-order accumulation in
//!   `thread::scope` merges (`C003`), and hash collections reachable
//!   from artifact paths (`C004`, D002 lifted to the use graph).
//! * **Meta rules** — malformed suppressions (`X001`), stale
//!   suppressions (`X002`, under `--unused-suppressions`), and spec
//!   drift between the rule set and `DESIGN.md` (`S001`).
//!
//! Findings can be grandfathered in `lint-baseline.toml` (kept empty in
//! this repository) and are reported in human or `--format json` form.
//! See `DESIGN.md` §11 for the rule catalogue and §14 for the
//! structural model and its documented limits.

pub mod baseline;
pub mod callgraph;
pub mod cli;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod walk;
pub mod workspace;

pub use diag::{Finding, RuleInfo, RULES};
pub use rules::{analyze_scan, analyze_source};
pub use workspace::{analyze_files, analyze_sources, AnalysisOptions, WorkspaceReport};
