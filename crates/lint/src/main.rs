//! The standalone `pixel-lint` binary. See [`pixel_lint::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(pixel_lint::cli::run(&args))
}
