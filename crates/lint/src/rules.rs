//! The rule set: determinism (D), architecture (A), unit hygiene (U),
//! observability hygiene (O) and panic hygiene (P) checks over one
//! file's token stream.
//!
//! Every rule has a stable ID (see [`crate::diag::RULES`]) and reports
//! `file:line` findings. Rules are token-level heuristics, not type
//! checks — they are tuned to the idioms of this workspace and accept a
//! `// lint:allow(RULE) reason` suppression on the offending line (or
//! the line directly above it) where a violation is deliberate.

use crate::diag::{is_known_rule, Finding};
use crate::lexer::{Scan, Token, TokenKind};

/// Paths where wall-clock time is sanctioned (the observability layer
/// and the bench timer are *about* wall-clock time).
const D001_EXEMPT_PREFIXES: [&str; 1] = ["crates/obs/src/"];
const D001_EXEMPT_FILES: [&str; 2] = [
    "crates/bench/src/timing.rs",
    // The vetted clock adapter: the single place `crates/serve` is
    // allowed to read wall-clock time. Policy code gets instants fed
    // through `Clock`, never reads them.
    "crates/serve/src/clock.rs",
];

/// Artifact / report / serve paths whose output must not depend on hash
/// iteration order.
const D002_PREFIXES: [&str; 4] = [
    "crates/serve/src/",
    "crates/fleet/src/",
    "crates/bench/src/",
    "crates/obs/src/",
];
const D002_FILES: [&str; 2] = ["crates/core/src/report.rs", "crates/core/src/dse.rs"];

/// Entry points sanctioned to read the process environment.
const D004_EXEMPT_FILES: [&str; 5] = [
    "crates/core/src/sweep.rs",
    "crates/bench/src/bin/reproduce.rs",
    "crates/lint/src/cli.rs",
    "crates/lint/src/main.rs",
    "crates/serve/src/bin/served.rs",
];

/// Backend modules allowed to match on `Design`.
const A001_EXEMPT_PREFIXES: [&str; 2] = ["crates/core/src/model/", "crates/core/src/omac/"];

/// Crates whose public API must carry `pixel-units` quantity types.
const U001_PREFIXES: [&str; 3] = [
    "crates/core/src/",
    "crates/electronics/src/",
    "crates/photonics/src/",
];

/// Quantity-bearing name suffixes (the DSENT-style unit discipline).
const U001_SUFFIXES: [&str; 10] = [
    "_energy", "_fj", "_pj", "_area", "_um2", "_latency", "_ns", "_ps", "_power", "_uw",
];
/// Bare quantity names that count the same as the suffixes.
const U001_BARE: [&str; 4] = ["energy", "area", "latency", "power"];

/// Metric-recording free functions whose first argument is a metric
/// name (span paths are slash-separated by design and stay exempt).
const O001_FNS: [&str; 3] = ["add", "gauge", "observe"];

fn has_prefix(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// True for files that are wholly test/bench/example context.
fn is_test_context(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// True for library-ish sources the panic-hygiene rules cover.
fn is_library_src(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.contains("/src/")) && !is_test_context(rel)
}

fn quantity_name(name: &str) -> bool {
    U001_BARE.contains(&name) || U001_SUFFIXES.iter().any(|s| name.ends_with(s))
}

struct Ctx<'a> {
    rel: &'a str,
    scan: &'a Scan,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn toks(&self) -> &[Token] {
        &self.scan.tokens
    }

    fn text(&self, idx: usize) -> &str {
        self.toks().get(idx).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, idx: usize) -> Option<TokenKind> {
        self.toks().get(idx).map(|t| t.kind)
    }

    fn emit(&mut self, rule: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            file: self.rel.to_owned(),
            line,
            rule,
            message,
        });
    }

    fn in_test(&self, line: u32) -> bool {
        is_test_context(self.rel) || self.scan.is_test_line(line)
    }
}

/// D001 — wall-clock reads poison determinism outside obs/timing.
/// Tests, benches and examples may time things; artifacts may not.
fn check_d001(ctx: &mut Ctx<'_>) {
    if is_test_context(ctx.rel)
        || has_prefix(ctx.rel, &D001_EXEMPT_PREFIXES)
        || D001_EXEMPT_FILES.contains(&ctx.rel)
    {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "SystemTime" {
            let line = t.line;
            ctx.emit(
                "D001",
                line,
                "SystemTime read outside crates/obs; route wall-clock time through pixel-obs"
                    .to_owned(),
            );
        } else if t.text == "Instant" && ctx.text(i + 1) == "::" && ctx.text(i + 2) == "now" {
            let line = t.line;
            ctx.emit(
                "D001",
                line,
                "Instant::now outside crates/obs / bench timing; artifacts must be wall-clock free"
                    .to_owned(),
            );
        }
    }
}

/// D002 — hash iteration order must never reach artifact output.
fn check_d002(ctx: &mut Ctx<'_>) {
    if !has_prefix(ctx.rel, &D002_PREFIXES) && !D002_FILES.contains(&ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            let (line, name) = (t.line, t.text.clone());
            ctx.emit(
                "D002",
                line,
                format!("{name} in an artifact/report/serve path; use BTreeMap/BTreeSet or a sorted Vec"),
            );
        }
    }
}

/// D003 — exact float comparison against a literal.
fn check_d003(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_neighbour = ctx.kind(i + 1) == Some(TokenKind::Float)
            || (i > 0 && ctx.kind(i - 1) == Some(TokenKind::Float));
        if float_neighbour && !ctx.in_test(t.line) {
            let (line, op) = (t.line, t.text.clone());
            ctx.emit(
                "D003",
                line,
                format!("float `{op}` against a literal; compare with a tolerance (suppress when the literal is an exact sentinel)"),
            );
        }
    }
}

/// D004 — process-environment reads outside sanctioned entry points.
fn check_d004(ctx: &mut Ctx<'_>) {
    if D004_EXEMPT_FILES.contains(&ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind == TokenKind::Ident
            && t.text == "env"
            && ctx.text(i + 1) == "::"
            && !ctx.in_test(t.line)
        {
            let line = t.line;
            ctx.emit(
                "D004",
                line,
                "std::env read outside the sanctioned sweep/CLI entry points".to_owned(),
            );
        }
    }
}

/// A001 — `match` on `Design` outside the backend modules.
fn check_a001(ctx: &mut Ctx<'_>) {
    if has_prefix(ctx.rel, &A001_EXEMPT_PREFIXES) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let scrutinee: Option<(usize, usize)> = if t.text == "match" {
            // Scrutinee runs from after `match` to the arm block's `{`.
            let mut j = i + 1;
            while j < ctx.toks().len() && ctx.text(j) != "{" {
                j += 1;
            }
            Some((i + 1, j))
        } else if t.text == "matches" && ctx.text(i + 1) == "!" && ctx.text(i + 2) == "(" {
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < ctx.toks().len() {
                match ctx.text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            Some((i + 2, j))
        } else {
            None
        };
        let Some((from, to)) = scrutinee else {
            continue;
        };
        let names_design = ctx.toks()[from..to.min(ctx.toks().len())]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && (t.text == "design" || t.text == "Design"));
        if names_design {
            let line = t.line;
            ctx.emit(
                "A001",
                line,
                "match on Design outside crates/core/src/{model,omac}; dispatch through the DesignModel trait"
                    .to_owned(),
            );
        }
    }
}

/// A002 — cross-backend references between ee/oe/oo modules.
fn check_a002(ctx: &mut Ctx<'_>) {
    let Some(stem) = backend_stem(ctx.rel) else {
        return;
    };
    let others: Vec<&str> = ["ee", "oe", "oo"]
        .into_iter()
        .filter(|&s| s != stem)
        .collect();
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident || !others.contains(&t.text.as_str()) {
            continue;
        }
        let path_like = ctx.text(i + 1) == "::" || (i > 0 && ctx.text(i - 1) == "::");
        if path_like {
            let (line, name) = (t.line, t.text.clone());
            ctx.emit(
                "A002",
                line,
                format!("backend `{stem}` references sibling backend `{name}`; backends must stay isolated"),
            );
        }
    }
}

/// The backend stem (`ee` / `oe` / `oo`) of a backend-module path.
fn backend_stem(rel: &str) -> Option<&'static str> {
    for dir in ["crates/core/src/model/", "crates/core/src/omac/"] {
        for stem in ["ee", "oe", "oo"] {
            if rel == format!("{dir}{stem}.rs") {
                return Some(stem);
            }
        }
    }
    None
}

/// U001 — quantity-named params/returns of public fns must be typed.
fn check_u001(ctx: &mut Ctx<'_>) {
    if !has_prefix(ctx.rel, &U001_PREFIXES) {
        return;
    }
    let len = ctx.toks().len();
    let mut i = 0usize;
    while i < len {
        if ctx.text(i) != "pub" {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` are internal API: skip.
        if ctx.text(i + 1) == "(" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while matches!(ctx.text(j), "const" | "async" | "unsafe") {
            j += 1;
        }
        if ctx.text(j) != "fn" {
            i += 1;
            continue;
        }
        let fn_name = ctx.text(j + 1).to_owned();
        let fn_line = ctx.toks().get(j + 1).map_or(0, |t| t.line);
        // Find the parameter list (skip generics up to the `(`).
        let mut k = j + 2;
        while k < len && ctx.text(k) != "(" {
            k += 1;
        }
        let open = k;
        let mut depth = 0usize;
        while k < len {
            match ctx.text(k) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let close = k;
        check_u001_params(ctx, &fn_name, open + 1, close);
        // Return type: `-> f64` with a quantity-named fn.
        if ctx.text(close + 1) == "->"
            && ctx.text(close + 2) == "f64"
            && matches!(ctx.text(close + 3), "{" | ";" | "where")
            && quantity_name(&fn_name)
            && !ctx.in_test(fn_line)
        {
            ctx.emit(
                "U001",
                fn_line,
                format!("pub fn `{fn_name}` returns bare f64; return a pixel-units quantity type"),
            );
        }
        i = close + 1;
    }
}

/// Checks the parameter tokens in `(open..close)` of `fn_name`.
fn check_u001_params(ctx: &mut Ctx<'_>, fn_name: &str, open: usize, close: usize) {
    let mut param_start = open;
    let mut depth = 0usize;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for idx in open..close {
        match ctx.text(idx) {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                groups.push((param_start, idx));
                param_start = idx + 1;
            }
            _ => {}
        }
    }
    if param_start < close {
        groups.push((param_start, close));
    }
    for (a, b) in groups {
        // The declared name is the last ident before the top-level `:`.
        let Some(colon_at) = (a..b).find(|&idx| ctx.text(idx) == ":") else {
            continue; // receiver (`self`, `&mut self`) or pattern-only
        };
        let name = (a..colon_at)
            .rev()
            .find_map(|idx| {
                let t = &ctx.scan.tokens[idx];
                (t.kind == TokenKind::Ident).then(|| t.text.clone())
            })
            .unwrap_or_default();
        let bare_f64 = colon_at + 1 < b && ctx.text(colon_at + 1) == "f64" && colon_at + 2 == b;
        if bare_f64 && quantity_name(&name) && !ctx.in_test(ctx.scan.tokens[a].line) {
            let line = ctx.scan.tokens[a].line;
            ctx.emit(
                "U001",
                line,
                format!("pub fn `{fn_name}` takes quantity `{name}` as bare f64; use a pixel-units type"),
            );
        }
    }
}

/// True for a conforming dot-namespaced metric name: non-empty
/// `[a-z0-9_]` segments separated by single dots
/// (`crate.subsystem.metric`).
fn is_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// O001 — metric names handed to `pixel_obs::{add,gauge,observe}` must
/// follow the lowercase dot-namespaced scheme. Only literal first
/// arguments are checked (a computed name is the caller's problem);
/// test code may name metrics freely.
fn check_o001(ctx: &mut Ctx<'_>) {
    for i in 2..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident
            || !O001_FNS.contains(&t.text.as_str())
            || ctx.text(i - 1) != "::"
            || ctx.text(i - 2) != "pixel_obs"
            || ctx.text(i + 1) != "("
            || ctx.kind(i + 2) != Some(TokenKind::Str)
        {
            continue;
        }
        let Some(lit) = ctx.toks().get(i + 2) else {
            continue;
        };
        let (line, quoted) = (lit.line, lit.text.clone());
        if ctx.in_test(line) {
            continue;
        }
        let name = quoted
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(&quoted);
        if !is_metric_name(name) {
            let fun = t.text.clone();
            ctx.emit(
                "O001",
                line,
                format!("metric name {quoted} passed to pixel_obs::{fun} is not lowercase dot-namespaced (want e.g. `serve.arrivals`)"),
            );
        }
    }
}

/// P001/P002/P003 — panic hygiene in non-test library code.
fn check_panics(ctx: &mut Ctx<'_>) {
    if !is_library_src(ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let line = t.line;
        if ctx.text(i + 1) == "(" && i > 0 && ctx.text(i - 1) == "." {
            if t.text == "unwrap" {
                ctx.emit(
                    "P001",
                    line,
                    "unwrap() in library code; propagate a Result or suppress with a reason"
                        .to_owned(),
                );
            } else if t.text == "expect" {
                ctx.emit(
                    "P002",
                    line,
                    "expect() in library code; propagate a Result or suppress with a reason"
                        .to_owned(),
                );
            }
        } else if t.text == "panic" && ctx.text(i + 1) == "!" {
            ctx.emit(
                "P003",
                line,
                "panic! in library code; return an error or suppress with a reason".to_owned(),
            );
        }
    }
}

/// X001 — malformed suppression markers.
fn check_x001(ctx: &mut Ctx<'_>) {
    for s in &ctx.scan.suppressions {
        let bad =
            s.rules.is_empty() || s.rules.iter().any(|r| !is_known_rule(r)) || s.reason.len() < 3;
        if bad {
            let line = s.line;
            ctx.emit(
                "X001",
                line,
                "lint:allow must list known rule IDs and carry a reason, e.g. `lint:allow(P001) poisoning is unrecoverable here`"
                    .to_owned(),
            );
        }
    }
}

/// Runs every rule over one scanned file and applies suppressions.
///
/// `rel` is the workspace-relative path with forward slashes; findings
/// come back sorted by line then rule.
#[must_use]
pub fn analyze_scan(rel: &str, scan: &Scan) -> Vec<Finding> {
    let mut ctx = Ctx {
        rel,
        scan,
        findings: Vec::new(),
    };
    check_d001(&mut ctx);
    check_d002(&mut ctx);
    check_d003(&mut ctx);
    check_d004(&mut ctx);
    check_a001(&mut ctx);
    check_a002(&mut ctx);
    check_u001(&mut ctx);
    check_o001(&mut ctx);
    check_panics(&mut ctx);
    check_x001(&mut ctx);

    // A valid suppression covers its own line and the line below it
    // (so a marker can sit on its own line above a long statement).
    let mut suppressed: Vec<(u32, String)> = Vec::new();
    for s in &scan.suppressions {
        if s.rules.is_empty() || s.rules.iter().any(|r| !is_known_rule(r)) || s.reason.len() < 3 {
            continue;
        }
        for r in &s.rules {
            suppressed.push((s.line, r.clone()));
            suppressed.push((s.line + 1, r.clone()));
        }
    }
    let mut findings: Vec<Finding> = ctx
        .findings
        .into_iter()
        .filter(|f| {
            f.rule == "X001" || !suppressed.iter().any(|(l, r)| *l == f.line && r == f.rule)
        })
        .collect();
    findings.sort();
    findings
}

/// Scans and analyzes raw source text (fixture-test entry point).
#[must_use]
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    analyze_scan(rel, &crate::lexer::scan(src))
}
