//! The rule set: determinism (D), architecture (A), unit hygiene (U),
//! observability hygiene (O) and panic hygiene (P) checks over one
//! file's token stream.
//!
//! Every rule has a stable ID (see [`crate::diag::RULES`]) and reports
//! `file:line` findings. Rules are token-level heuristics, not type
//! checks — they are tuned to the idioms of this workspace and accept a
//! `// lint:allow(RULE) reason` suppression on the offending line (or
//! the line directly above it) where a violation is deliberate.

use crate::diag::{is_known_rule, Finding};
use crate::lexer::{Scan, Token, TokenKind};

/// Paths where wall-clock time is sanctioned (the observability layer
/// and the bench timer are *about* wall-clock time).
const D001_EXEMPT_PREFIXES: [&str; 1] = ["crates/obs/src/"];
const D001_EXEMPT_FILES: [&str; 2] = [
    "crates/bench/src/timing.rs",
    // The vetted clock adapter: the single place `crates/serve` is
    // allowed to read wall-clock time. Policy code gets instants fed
    // through `Clock`, never reads them.
    "crates/serve/src/clock.rs",
];

/// Artifact / report / serve paths whose output must not depend on hash
/// iteration order. Also the root set for C004's reachability lift
/// (see [`crate::graph`]).
pub(crate) const D002_PREFIXES: [&str; 4] = [
    "crates/serve/src/",
    "crates/fleet/src/",
    "crates/bench/src/",
    "crates/obs/src/",
];
pub(crate) const D002_FILES: [&str; 2] = ["crates/core/src/report.rs", "crates/core/src/dse.rs"];

/// Entry points sanctioned to read the process environment.
const D004_EXEMPT_FILES: [&str; 5] = [
    "crates/core/src/sweep.rs",
    "crates/bench/src/bin/reproduce.rs",
    "crates/lint/src/cli.rs",
    "crates/lint/src/main.rs",
    "crates/serve/src/bin/served.rs",
];

/// Backend modules allowed to match on `Design`.
const A001_EXEMPT_PREFIXES: [&str; 2] = ["crates/core/src/model/", "crates/core/src/omac/"];

/// Crates whose public API must carry `pixel-units` quantity types.
const U001_PREFIXES: [&str; 3] = [
    "crates/core/src/",
    "crates/electronics/src/",
    "crates/photonics/src/",
];

/// Quantity-bearing name suffixes (the DSENT-style unit discipline).
const U001_SUFFIXES: [&str; 10] = [
    "_energy", "_fj", "_pj", "_area", "_um2", "_latency", "_ns", "_ps", "_power", "_uw",
];
/// Bare quantity names that count the same as the suffixes.
const U001_BARE: [&str; 4] = ["energy", "area", "latency", "power"];

/// Metric-recording free functions whose first argument is a metric
/// name (span paths are slash-separated by design and stay exempt).
const O001_FNS: [&str; 3] = ["add", "gauge", "observe"];

/// The only files allowed to spawn threads: the two chunked-scope
/// engines, the daemon/loadgen/oracle I/O layers, and the lint walk
/// itself. Everything else must go through `pixel_core::sweep`.
const C001_SANCTIONED_FILES: [&str; 6] = [
    "crates/core/src/sweep.rs",
    "crates/core/src/functional_fabric.rs",
    "crates/serve/src/daemon.rs",
    "crates/serve/src/loadgen.rs",
    "crates/serve/src/oracle.rs",
    "crates/lint/src/workspace.rs",
];

/// Paths sanctioned to hold mutable global state: the observability
/// registry, and the documented process-wide knobs (jobs, seed, quick
/// mode, metrics sink).
const C002_SANCTIONED_PREFIXES: [&str; 1] = ["crates/obs/src/"];
const C002_SANCTIONED_FILES: [&str; 3] = [
    "crates/core/src/sweep.rs",
    "crates/core/src/seed.rs",
    "crates/bench/src/opts.rs",
];

/// Type idents that make a `static` interiorly mutable.
const C002_INTERIOR_MUTABLE: [&str; 9] = [
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "Once",
    "Cell",
    "RefCell",
    "UnsafeCell",
];

fn has_prefix(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// True for files that are wholly test/bench/example context.
pub(crate) fn is_test_context(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// True for library-ish sources the panic-hygiene rules cover.
pub(crate) fn is_library_src(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.contains("/src/")) && !is_test_context(rel)
}

fn quantity_name(name: &str) -> bool {
    U001_BARE.contains(&name) || U001_SUFFIXES.iter().any(|s| name.ends_with(s))
}

struct Ctx<'a> {
    rel: &'a str,
    scan: &'a Scan,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn toks(&self) -> &[Token] {
        &self.scan.tokens
    }

    fn text(&self, idx: usize) -> &str {
        self.toks().get(idx).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, idx: usize) -> Option<TokenKind> {
        self.toks().get(idx).map(|t| t.kind)
    }

    fn emit(&mut self, rule: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            file: self.rel.to_owned(),
            line,
            rule,
            message,
        });
    }

    fn in_test(&self, line: u32) -> bool {
        is_test_context(self.rel) || self.scan.is_test_line(line)
    }
}

/// D001 — wall-clock reads poison determinism outside obs/timing.
/// Tests, benches and examples may time things; artifacts may not.
fn check_d001(ctx: &mut Ctx<'_>) {
    if is_test_context(ctx.rel)
        || has_prefix(ctx.rel, &D001_EXEMPT_PREFIXES)
        || D001_EXEMPT_FILES.contains(&ctx.rel)
    {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "SystemTime" {
            let line = t.line;
            ctx.emit(
                "D001",
                line,
                "SystemTime read outside crates/obs; route wall-clock time through pixel-obs"
                    .to_owned(),
            );
        } else if t.text == "Instant" && ctx.text(i + 1) == "::" && ctx.text(i + 2) == "now" {
            let line = t.line;
            ctx.emit(
                "D001",
                line,
                "Instant::now outside crates/obs / bench timing; artifacts must be wall-clock free"
                    .to_owned(),
            );
        }
    }
}

/// D002 — hash iteration order must never reach artifact output.
fn check_d002(ctx: &mut Ctx<'_>) {
    if !has_prefix(ctx.rel, &D002_PREFIXES) && !D002_FILES.contains(&ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            let (line, name) = (t.line, t.text.clone());
            ctx.emit(
                "D002",
                line,
                format!("{name} in an artifact/report/serve path; use BTreeMap/BTreeSet or a sorted Vec"),
            );
        }
    }
}

/// D003 — exact float comparison against a literal.
fn check_d003(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_neighbour = ctx.kind(i + 1) == Some(TokenKind::Float)
            || (i > 0 && ctx.kind(i - 1) == Some(TokenKind::Float));
        if float_neighbour && !ctx.in_test(t.line) {
            let (line, op) = (t.line, t.text.clone());
            ctx.emit(
                "D003",
                line,
                format!("float `{op}` against a literal; compare with a tolerance (suppress when the literal is an exact sentinel)"),
            );
        }
    }
}

/// D004 — process-environment reads outside sanctioned entry points.
fn check_d004(ctx: &mut Ctx<'_>) {
    if D004_EXEMPT_FILES.contains(&ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind == TokenKind::Ident
            && t.text == "env"
            && ctx.text(i + 1) == "::"
            && !ctx.in_test(t.line)
        {
            let line = t.line;
            ctx.emit(
                "D004",
                line,
                "std::env read outside the sanctioned sweep/CLI entry points".to_owned(),
            );
        }
    }
}

/// A001 — `match` on `Design` outside the backend modules.
fn check_a001(ctx: &mut Ctx<'_>) {
    if has_prefix(ctx.rel, &A001_EXEMPT_PREFIXES) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let scrutinee: Option<(usize, usize)> = if t.text == "match" {
            // Scrutinee runs from after `match` to the arm block's `{`.
            let mut j = i + 1;
            while j < ctx.toks().len() && ctx.text(j) != "{" {
                j += 1;
            }
            Some((i + 1, j))
        } else if t.text == "matches" && ctx.text(i + 1) == "!" && ctx.text(i + 2) == "(" {
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < ctx.toks().len() {
                match ctx.text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            Some((i + 2, j))
        } else {
            None
        };
        let Some((from, to)) = scrutinee else {
            continue;
        };
        let names_design = ctx.toks()[from..to.min(ctx.toks().len())]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && (t.text == "design" || t.text == "Design"));
        if names_design {
            let line = t.line;
            ctx.emit(
                "A001",
                line,
                "match on Design outside crates/core/src/{model,omac}; dispatch through the DesignModel trait"
                    .to_owned(),
            );
        }
    }
}

/// A002 — cross-backend references between ee/oe/oo modules.
fn check_a002(ctx: &mut Ctx<'_>) {
    let Some(stem) = backend_stem(ctx.rel) else {
        return;
    };
    let others: Vec<&str> = ["ee", "oe", "oo"]
        .into_iter()
        .filter(|&s| s != stem)
        .collect();
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident || !others.contains(&t.text.as_str()) {
            continue;
        }
        let path_like = ctx.text(i + 1) == "::" || (i > 0 && ctx.text(i - 1) == "::");
        if path_like {
            let (line, name) = (t.line, t.text.clone());
            ctx.emit(
                "A002",
                line,
                format!("backend `{stem}` references sibling backend `{name}`; backends must stay isolated"),
            );
        }
    }
}

/// The backend stem (`ee` / `oe` / `oo`) of a backend-module path.
fn backend_stem(rel: &str) -> Option<&'static str> {
    for dir in ["crates/core/src/model/", "crates/core/src/omac/"] {
        for stem in ["ee", "oe", "oo"] {
            if rel == format!("{dir}{stem}.rs") {
                return Some(stem);
            }
        }
    }
    None
}

/// U001 — quantity-named params/returns of public fns must be typed.
fn check_u001(ctx: &mut Ctx<'_>) {
    if !has_prefix(ctx.rel, &U001_PREFIXES) {
        return;
    }
    let len = ctx.toks().len();
    let mut i = 0usize;
    while i < len {
        if ctx.text(i) != "pub" {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` are internal API: skip.
        if ctx.text(i + 1) == "(" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while matches!(ctx.text(j), "const" | "async" | "unsafe") {
            j += 1;
        }
        if ctx.text(j) != "fn" {
            i += 1;
            continue;
        }
        let fn_name = ctx.text(j + 1).to_owned();
        let fn_line = ctx.toks().get(j + 1).map_or(0, |t| t.line);
        // Find the parameter list (skip generics up to the `(`).
        let mut k = j + 2;
        while k < len && ctx.text(k) != "(" {
            k += 1;
        }
        let open = k;
        let mut depth = 0usize;
        while k < len {
            match ctx.text(k) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let close = k;
        check_u001_params(ctx, &fn_name, open + 1, close);
        // Return type: `-> f64` with a quantity-named fn.
        if ctx.text(close + 1) == "->"
            && ctx.text(close + 2) == "f64"
            && matches!(ctx.text(close + 3), "{" | ";" | "where")
            && quantity_name(&fn_name)
            && !ctx.in_test(fn_line)
        {
            ctx.emit(
                "U001",
                fn_line,
                format!("pub fn `{fn_name}` returns bare f64; return a pixel-units quantity type"),
            );
        }
        i = close + 1;
    }
}

/// Checks the parameter tokens in `(open..close)` of `fn_name`.
fn check_u001_params(ctx: &mut Ctx<'_>, fn_name: &str, open: usize, close: usize) {
    let mut param_start = open;
    let mut depth = 0usize;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for idx in open..close {
        match ctx.text(idx) {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                groups.push((param_start, idx));
                param_start = idx + 1;
            }
            _ => {}
        }
    }
    if param_start < close {
        groups.push((param_start, close));
    }
    for (a, b) in groups {
        // The declared name is the last ident before the top-level `:`.
        let Some(colon_at) = (a..b).find(|&idx| ctx.text(idx) == ":") else {
            continue; // receiver (`self`, `&mut self`) or pattern-only
        };
        let name = (a..colon_at)
            .rev()
            .find_map(|idx| {
                let t = &ctx.scan.tokens[idx];
                (t.kind == TokenKind::Ident).then(|| t.text.clone())
            })
            .unwrap_or_default();
        let bare_f64 = colon_at + 1 < b && ctx.text(colon_at + 1) == "f64" && colon_at + 2 == b;
        if bare_f64 && quantity_name(&name) && !ctx.in_test(ctx.scan.tokens[a].line) {
            let line = ctx.scan.tokens[a].line;
            ctx.emit(
                "U001",
                line,
                format!("pub fn `{fn_name}` takes quantity `{name}` as bare f64; use a pixel-units type"),
            );
        }
    }
}

/// True for a conforming dot-namespaced metric name: non-empty
/// `[a-z0-9_]` segments separated by single dots
/// (`crate.subsystem.metric`).
fn is_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// O001 — metric names handed to `pixel_obs::{add,gauge,observe}` must
/// follow the lowercase dot-namespaced scheme. Only literal first
/// arguments are checked (a computed name is the caller's problem);
/// test code may name metrics freely.
fn check_o001(ctx: &mut Ctx<'_>) {
    for i in 2..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident
            || !O001_FNS.contains(&t.text.as_str())
            || ctx.text(i - 1) != "::"
            || ctx.text(i - 2) != "pixel_obs"
            || ctx.text(i + 1) != "("
            || ctx.kind(i + 2) != Some(TokenKind::Str)
        {
            continue;
        }
        let Some(lit) = ctx.toks().get(i + 2) else {
            continue;
        };
        let (line, quoted) = (lit.line, lit.text.clone());
        if ctx.in_test(line) {
            continue;
        }
        let name = quoted
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(&quoted);
        if !is_metric_name(name) {
            let fun = t.text.clone();
            ctx.emit(
                "O001",
                line,
                format!("metric name {quoted} passed to pixel_obs::{fun} is not lowercase dot-namespaced (want e.g. `serve.arrivals`)"),
            );
        }
    }
}

/// P001/P002/P003 — panic hygiene in non-test library code.
fn check_panics(ctx: &mut Ctx<'_>) {
    if !is_library_src(ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let line = t.line;
        if ctx.text(i + 1) == "(" && i > 0 && ctx.text(i - 1) == "." {
            if t.text == "unwrap" {
                ctx.emit(
                    "P001",
                    line,
                    "unwrap() in library code; propagate a Result or suppress with a reason"
                        .to_owned(),
                );
            } else if t.text == "expect" {
                ctx.emit(
                    "P002",
                    line,
                    "expect() in library code; propagate a Result or suppress with a reason"
                        .to_owned(),
                );
            }
        } else if t.text == "panic" && ctx.text(i + 1) == "!" {
            ctx.emit(
                "P003",
                line,
                "panic! in library code; return an error or suppress with a reason".to_owned(),
            );
        }
    }
}

/// C001 — thread spawns outside the sanctioned parallel engines.
/// `thread::sleep` is fine anywhere; creating concurrency is not.
fn check_c001(ctx: &mut Ctx<'_>) {
    if is_test_context(ctx.rel) || C001_SANCTIONED_FILES.contains(&ctx.rel) {
        return;
    }
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind == TokenKind::Ident
            && t.text == "thread"
            && ctx.text(i + 1) == "::"
            && matches!(ctx.text(i + 2), "spawn" | "scope" | "Builder")
            && !ctx.in_test(t.line)
        {
            let (line, what) = (t.line, ctx.text(i + 2).to_owned());
            ctx.emit(
                "C001",
                line,
                format!("thread::{what} outside the sanctioned parallel modules; route concurrency through pixel_core::sweep or the serve I/O layer"),
            );
        }
    }
}

/// C002 — mutable global state outside obs and the documented knobs.
/// `static mut` is flagged everywhere; interior-mutable statics
/// (`Atomic*`, `Mutex`, `OnceLock`, ...) only outside the sanctioned
/// files.
fn check_c002(ctx: &mut Ctx<'_>) {
    let sanctioned =
        has_prefix(ctx.rel, &C002_SANCTIONED_PREFIXES) || C002_SANCTIONED_FILES.contains(&ctx.rel);
    for i in 0..ctx.toks().len() {
        let t = &ctx.toks()[i];
        if t.kind != TokenKind::Ident || t.text != "static" || ctx.in_test(t.line) {
            continue;
        }
        if ctx.text(i + 1) == "mut" {
            let line = t.line;
            ctx.emit(
                "C002",
                line,
                "static mut is never acceptable; use an atomic or a lock in a sanctioned module"
                    .to_owned(),
            );
            continue;
        }
        if sanctioned || is_test_context(ctx.rel) {
            continue;
        }
        // Scan the declared type (tokens up to `=` or `;`) for
        // interior-mutable type names.
        let mut j = i + 1;
        while j < ctx.toks().len() && !matches!(ctx.text(j), "=" | ";") {
            let tj = &ctx.toks()[j];
            if tj.kind == TokenKind::Ident
                && (tj.text.starts_with("Atomic")
                    || C002_INTERIOR_MUTABLE.contains(&tj.text.as_str()))
            {
                let (line, ty) = (t.line, tj.text.clone());
                ctx.emit(
                    "C002",
                    line,
                    format!("interior-mutable static (`{ty}`) outside obs and the documented process-wide knobs"),
                );
                break;
            }
            j += 1;
        }
    }
}

/// C003 — f64 accumulation across `thread::scope` worker joins without
/// an order-preserving merge: a statement inside a scope block that
/// both calls `join` and compound-assigns is merging results in
/// completion order, which is nondeterministic. The sanctioned engines
/// collect handles first and fold them in spawn order instead.
fn check_c003(ctx: &mut Ctx<'_>) {
    if is_test_context(ctx.rel) {
        return;
    }
    let len = ctx.toks().len();
    let mut i = 0usize;
    while i + 2 < len {
        let is_scope = ctx.toks()[i].kind == TokenKind::Ident
            && ctx.text(i) == "thread"
            && ctx.text(i + 1) == "::"
            && ctx.text(i + 2) == "scope";
        if !is_scope {
            i += 1;
            continue;
        }
        // Extent: the first brace block after `scope` (the closure body).
        let mut open = i + 3;
        while open < len && ctx.text(open) != "{" {
            open += 1;
        }
        let mut depth = 0i32;
        let mut close = open;
        while close < len {
            match ctx.text(close) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        // Split the extent into `;`-delimited statements and flag any
        // that both join a handle and compound-assign.
        let mut stmt_start = open + 1;
        for idx in open + 1..=close.min(len.saturating_sub(1)) {
            if ctx.text(idx) == ";" || idx == close {
                let mut join_line: Option<u32> = None;
                let mut compound = false;
                for k in stmt_start..idx {
                    let tk = &ctx.toks()[k];
                    if tk.kind == TokenKind::Ident && tk.text == "join" {
                        join_line.get_or_insert(tk.line);
                    }
                    if tk.kind == TokenKind::Punct
                        && matches!(tk.text.as_str(), "+=" | "-=" | "*=" | "/=")
                    {
                        compound = true;
                    }
                }
                if let Some(line) = join_line {
                    if compound && !ctx.in_test(line) {
                        ctx.emit(
                            "C003",
                            line,
                            "accumulating join() results with a compound assignment inside thread::scope merges in completion order; collect handles and fold them in spawn order"
                                .to_owned(),
                        );
                    }
                }
                stmt_start = idx + 1;
            }
        }
        i = open + 1; // nested scopes: keep scanning inside
    }
}

/// X001 — malformed suppression markers.
fn check_x001(ctx: &mut Ctx<'_>) {
    for s in &ctx.scan.suppressions {
        let bad =
            s.rules.is_empty() || s.rules.iter().any(|r| !is_known_rule(r)) || s.reason.len() < 3;
        if bad {
            let line = s.line;
            ctx.emit(
                "X001",
                line,
                "lint:allow must list known rule IDs and carry a reason, e.g. `lint:allow(P001) poisoning is unrecoverable here`"
                    .to_owned(),
            );
        }
    }
}

/// True if a suppression listing `supp` also covers finding rule
/// `rule`. Besides the identity case, a lexical panic-hygiene
/// suppression carries over to its transitive twin: the justification
/// for an `unwrap()` (P001) is also the justification for it being
/// reachable (P101), so one marker covers both.
#[must_use]
pub fn suppression_covers(supp: &str, rule: &str) -> bool {
    supp == rule
        || matches!(
            (supp, rule),
            ("P001", "P101") | ("P002", "P102") | ("P003", "P103")
        )
}

/// Rules that cannot be suppressed: the meta rules about suppressions
/// themselves (X001/X002) and spec drift (S001).
#[must_use]
pub fn is_unsuppressible(rule: &str) -> bool {
    matches!(rule, "X001" | "X002" | "S001")
}

/// True if `s` is a well-formed suppression (known rules, real reason).
#[must_use]
pub fn is_valid_suppression(s: &crate::lexer::Suppression) -> bool {
    !s.rules.is_empty() && s.rules.iter().all(|r| is_known_rule(r)) && s.reason.len() >= 3
}

/// Runs every per-file lexical rule over one scanned file, without
/// applying suppressions. The workspace layer adds the structural
/// G/P1xx/C004/S001 findings and applies suppressions centrally.
#[must_use]
pub fn raw_findings(rel: &str, scan: &Scan) -> Vec<Finding> {
    let mut ctx = Ctx {
        rel,
        scan,
        findings: Vec::new(),
    };
    check_d001(&mut ctx);
    check_d002(&mut ctx);
    check_d003(&mut ctx);
    check_d004(&mut ctx);
    check_a001(&mut ctx);
    check_a002(&mut ctx);
    check_u001(&mut ctx);
    check_o001(&mut ctx);
    check_panics(&mut ctx);
    check_c001(&mut ctx);
    check_c002(&mut ctx);
    check_c003(&mut ctx);
    check_x001(&mut ctx);
    let mut findings = ctx.findings;
    findings.sort();
    findings
}

/// Applies one file's suppressions to its findings. A valid
/// suppression covers its own line and the line below it (so a marker
/// can sit on its own line above a long statement); meta rules are
/// never suppressed. Returns the surviving findings.
#[must_use]
pub fn apply_suppressions(findings: Vec<Finding>, scan: &Scan) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            is_unsuppressible(f.rule)
                || !scan.suppressions.iter().any(|s| {
                    is_valid_suppression(s)
                        && (s.line == f.line || s.line + 1 == f.line)
                        && s.rules.iter().any(|r| suppression_covers(r, f.rule))
                })
        })
        .collect()
}

/// Runs every lexical rule over one scanned file and applies
/// suppressions — the single-file entry point used by fixture tests.
/// Structural (cross-file) rules need [`crate::workspace`].
///
/// `rel` is the workspace-relative path with forward slashes; findings
/// come back sorted by line then rule.
#[must_use]
pub fn analyze_scan(rel: &str, scan: &Scan) -> Vec<Finding> {
    let mut findings = apply_suppressions(raw_findings(rel, scan), scan);
    findings.sort();
    findings
}

/// Scans and analyzes raw source text (fixture-test entry point).
#[must_use]
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    analyze_scan(rel, &crate::lexer::scan(src))
}
