//! Name-resolved workspace call graph and the P1xx transitive
//! panic-path rules.
//!
//! Where P001–P003 flag lexical panic sites, P101–P104 flag panic
//! sites *reachable* from the artifact entry points: every fn in a
//! `src/bin/` or `src/main.rs` target plus the documented library
//! surfaces (`reproduce` artifact renderers, `ServeMachine`, the fleet
//! event loops). Resolution is by function name within a crate and its
//! dependency crates — deliberately over-approximate (no type
//! information), so it errs toward reporting reachability; a justified
//! `lint:allow(P001)`-family suppression at the panic site covers the
//! matching transitive rule too (see `rules::suppression_covers`).

use crate::diag::Finding;
use crate::graph::{crate_of, CrateEdge};
use crate::parser::{FileItems, PanicKind};
use crate::rules::is_library_src;
use std::collections::{BTreeMap, BTreeSet};

/// Library files whose `pub fn`s are artifact entry points even though
/// they are not bin targets: artifact renderers, the serving state
/// machine, and the fleet event loops. Extend alongside DESIGN.md §14.
pub const ENTRY_LIB_FILES: [&str; 5] = [
    "crates/bench/src/lib.rs",
    "crates/bench/src/perf.rs",
    "crates/serve/src/machine.rs",
    "crates/fleet/src/sim.rs",
    "crates/fleet/src/sweep.rs",
];

/// True for files whose every fn is an entry root (bin targets).
fn is_bin_target(rel: &str) -> bool {
    rel.ends_with("/main.rs") || rel == "src/main.rs" || rel.contains("/src/bin/")
}

struct FnNode {
    /// Index into the `files` slice.
    file: usize,
    /// Index into that file's `fns`.
    item: usize,
    /// Entry root?
    entry: bool,
}

/// One analyzed file, as the call-graph layer sees it.
pub struct CgFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Parsed items.
    pub items: &'a FileItems,
    /// Token scan (for `#[cfg(test)]` span filtering).
    pub scan: &'a crate::lexer::Scan,
}

/// Walks the call graph from the entry roots and returns P101–P104
/// findings for every reachable panic site in non-test library code.
/// `files` must be sorted by `rel`; `edges` is the crate graph from
/// [`crate::graph::analyze`], used to bound name resolution to a
/// crate's dependency cone.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(files: &[CgFile<'_>], edges: &[CrateEdge]) -> Vec<Finding> {
    // Dependency cone per crate (direct edges; resolution recurses
    // through callees, so transitive deps are covered by the walk).
    let mut deps: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        deps.entry(e.from.as_str()).or_default().insert(&e.to);
    }

    // Fn nodes in deterministic (file, line) order.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut by_name: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
    let mut crate_keys: Vec<Option<String>> = Vec::with_capacity(files.len());
    for (fi, f) in files.iter().enumerate() {
        crate_keys.push(crate_of(f.rel));
        if !is_library_src(f.rel) || crate_keys[fi].is_none() {
            continue;
        }
        let entry_file = is_bin_target(f.rel);
        let entry_lib = ENTRY_LIB_FILES.contains(&f.rel);
        for (ii, item) in f.items.fns.iter().enumerate() {
            if f.scan.is_test_line(item.line) {
                continue;
            }
            let id = nodes.len();
            nodes.push(FnNode {
                file: fi,
                item: ii,
                entry: entry_file || (entry_lib && item.is_pub),
            });
            let krate = crate_keys[fi].clone().unwrap_or_default();
            by_name
                .entry((krate, item.name.as_str()))
                .or_default()
                .push(id);
        }
    }
    // Map (file, fn item) -> node id for call attribution.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        node_of.insert((n.file, n.item), id);
    }

    // Resolve each call to candidate callee nodes.
    let resolve = |fi: usize, segments: &[String]| -> Vec<usize> {
        let Some(name) = segments.last() else {
            return Vec::new();
        };
        let Some(own) = &crate_keys[fi] else {
            return Vec::new();
        };
        let head = segments.first().map(String::as_str).unwrap_or_default();
        let mut out: Vec<usize> = Vec::new();
        if segments.len() >= 2 && (head == "pixel" || head.starts_with("pixel_")) {
            if let Some(v) = by_name.get(&(head.to_owned(), name.as_str())) {
                out.extend(v);
            }
            return out;
        }
        if let Some(v) = by_name.get(&(own.clone(), name.as_str())) {
            out.extend(v);
        }
        for d in deps.get(own.as_str()).into_iter().flatten() {
            if let Some(v) = by_name.get(&((*d).to_owned(), name.as_str())) {
                out.extend(v);
            }
        }
        out
    };

    let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
    for (fi, f) in files.iter().enumerate() {
        for c in &f.items.calls {
            let Some(&from) = node_of.get(&(fi, c.caller)) else {
                continue;
            };
            if f.scan.is_test_line(c.line) {
                continue;
            }
            for to in resolve(fi, &c.segments) {
                if to != from {
                    adjacency[from].insert(to);
                }
            }
        }
    }

    // BFS from the entry roots, keeping the first-discovered parent so
    // every finding can cite a concrete witness path.
    let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (id, n) in nodes.iter().enumerate() {
        if n.entry {
            dist[id] = Some(0);
            queue.push_back(id);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &next in &adjacency[at] {
            if dist[next].is_none() {
                dist[next] = dist[at].map(|d| d + 1);
                parent[next] = Some(at);
                queue.push_back(next);
            }
        }
    }

    let describe = |id: usize| -> String {
        let n = &nodes[id];
        files[n.file].items.fns[n.item].name.clone()
    };
    let mut findings = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for p in &f.items.panics {
            let Some(&node) = node_of.get(&(fi, p.caller)) else {
                continue;
            };
            let Some(d) = dist[node] else {
                continue;
            };
            if f.scan.is_test_line(p.line) {
                continue;
            }
            // Witness path: entry -> ... -> enclosing fn (≤ 4 hops shown).
            let mut path = vec![node];
            let mut at = node;
            while let Some(par) = parent[at] {
                path.push(par);
                at = par;
            }
            path.reverse();
            let entry_node = path[0];
            let entry_file = files[nodes[entry_node].file].rel;
            let shown: Vec<String> = if path.len() > 4 {
                let mut v: Vec<String> = path[..2].iter().map(|&id| describe(id)).collect();
                v.push("...".to_owned());
                v.push(describe(*path.last().unwrap_or(&node)));
                v
            } else {
                path.iter().map(|&id| describe(id)).collect()
            };
            let (rule, what) = match p.kind {
                PanicKind::Unwrap => ("P101", "unwrap()"),
                PanicKind::Expect => ("P102", "expect()"),
                PanicKind::Panic => ("P103", "panic!"),
                PanicKind::Index => ("P104", "arithmetic slice index"),
            };
            findings.push(Finding {
                file: f.rel.to_owned(),
                line: p.line,
                rule,
                message: format!(
                    "{what} reachable from artifact entry `{}` ({entry_file}) in {d} call(s): {}",
                    describe(entry_node),
                    shown.join(" -> ")
                ),
            });
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphFile;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn analyze_src(sources: &[(&str, &str)]) -> Vec<Finding> {
        let scans: Vec<_> = sources.iter().map(|(_, s)| scan(s)).collect();
        let items: Vec<_> = scans.iter().map(parse).collect();
        let gfiles: Vec<GraphFile<'_>> = sources
            .iter()
            .zip(items.iter())
            .map(|((rel, _), items)| GraphFile { rel, items })
            .collect();
        let scan_refs: Vec<_> = scans.iter().collect();
        let arch = crate::graph::analyze(&gfiles, &scan_refs);
        let cfiles: Vec<CgFile<'_>> = sources
            .iter()
            .zip(items.iter())
            .zip(scans.iter())
            .map(|(((rel, _), items), scan)| CgFile { rel, items, scan })
            .collect();
        analyze(&cfiles, &arch.edges)
    }

    #[test]
    fn unwrap_reachable_from_bin_is_p101() {
        let f = analyze_src(&[
            (
                "crates/bench/src/bin/reproduce.rs",
                "fn main() { pixel_core::helper::risky(); }\n",
            ),
            (
                "crates/core/src/helper.rs",
                "pub fn risky() { std::fs::read(\"x\").unwrap(); }\n",
            ),
            ("crates/core/src/lib.rs", "pub mod helper;\n"),
        ]);
        let p101: Vec<_> = f.iter().filter(|f| f.rule == "P101").collect();
        assert_eq!(p101.len(), 1, "{f:?}");
        assert_eq!(p101[0].file, "crates/core/src/helper.rs");
        assert!(p101[0].message.contains("main"), "{}", p101[0].message);
        assert!(p101[0].message.contains("1 call(s)"));
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let f = analyze_src(&[
            ("crates/bench/src/bin/reproduce.rs", "fn main() {}\n"),
            (
                "crates/core/src/helper.rs",
                "pub fn island() { panic!(\"never called\"); }\n",
            ),
            ("crates/core/src/lib.rs", "pub mod helper;\n"),
        ]);
        assert!(
            !f.iter().any(|f| f.rule == "P103"),
            "island fn must not be reachable: {f:?}"
        );
    }

    #[test]
    fn entry_lib_pub_fns_are_roots() {
        let f = analyze_src(&[
            (
                "crates/bench/src/lib.rs",
                "pub fn table1() -> String { inner() }\nfn inner() -> String { opt().expect(\"set\") }\nfn opt() -> Option<String> { None }\n",
            ),
        ]);
        let p102: Vec<_> = f.iter().filter(|f| f.rule == "P102").collect();
        assert_eq!(p102.len(), 1, "{f:?}");
        assert!(p102[0].message.contains("table1"));
    }

    #[test]
    fn private_fns_in_entry_lib_are_not_roots() {
        let f = analyze_src(&[(
            "crates/bench/src/lib.rs",
            "fn dead() { never().unwrap(); }\nfn never() -> Option<u32> { None }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn arithmetic_index_is_p104() {
        let f = analyze_src(&[(
            "crates/fleet/src/sim.rs",
            "pub fn run(v: &[u32], i: usize) -> u32 { v[i + 1] }\n",
        )]);
        let p104: Vec<_> = f.iter().filter(|f| f.rule == "P104").collect();
        assert_eq!(p104.len(), 1, "{f:?}");
        assert!(p104[0].message.contains("0 call(s)"));
    }

    #[test]
    fn reachability_respects_the_dependency_cone() {
        // `helper` exists in two crates; serve depends only on core, so
        // the unwrap in the unrelated crate must not become reachable.
        let f = analyze_src(&[
            (
                "crates/serve/src/machine.rs",
                "use pixel_core::util::helper;\npub fn step() { helper(); }\n",
            ),
            ("crates/core/src/util.rs", "pub fn helper() {}\n"),
            ("crates/core/src/lib.rs", "pub mod util;\n"),
            (
                "crates/fleet/src/other.rs",
                "pub fn helper() { fail().unwrap(); }\nfn fail() -> Option<u32> { None }\n",
            ),
            ("crates/fleet/src/lib.rs", "pub mod other;\n"),
        ]);
        assert!(
            !f.iter().any(|f| f.file.contains("fleet")),
            "fleet is not in serve's cone: {f:?}"
        );
    }
}
