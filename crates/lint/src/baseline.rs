//! The `lint-baseline.toml` grandfather file.
//!
//! The baseline lets the analyzer land strict: pre-existing violations
//! are recorded here and filtered from the report, while anything new
//! fails CI immediately. The intended trajectory is burn-down — this
//! repository's baseline is empty and must stay empty (the self-check
//! test asserts it).
//!
//! The format is a minimal TOML subset parsed without dependencies:
//!
//! ```toml
//! [[finding]]
//! rule = "P001"
//! file = "crates/x/src/y.rs"
//! line = 12
//! ```

use crate::diag::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule ID.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the baseline file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

/// Parses the baseline TOML subset.
///
/// # Errors
///
/// Returns [`BaselineError`] on unknown keys, values outside the
/// string/integer subset, or fields outside a `[[finding]]` table.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, BaselineError> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(done) = current.take() {
                entries.push(done);
            }
            current = Some(BaselineEntry {
                rule: String::new(),
                file: String::new(),
                line: 0,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(BaselineError {
                line: lineno,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let Some(entry) = current.as_mut() else {
            return Err(BaselineError {
                line: lineno,
                message: "field outside a [[finding]] table".to_owned(),
            });
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" | "file" => {
                let Some(s) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("{key} must be a quoted string"),
                    });
                };
                if key == "rule" {
                    entry.rule = s.to_owned();
                } else {
                    entry.file = s.to_owned();
                }
            }
            "line" => match value.parse::<u32>() {
                Ok(n) => entry.line = n,
                Err(_) => {
                    return Err(BaselineError {
                        line: lineno,
                        message: "line must be an unsigned integer".to_owned(),
                    });
                }
            },
            other => {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unknown key {other:?}"),
                });
            }
        }
    }
    if let Some(done) = current.take() {
        entries.push(done);
    }
    Ok(entries)
}

/// Serializes entries back to the baseline format (round-trips [`parse`]).
#[must_use]
pub fn serialize(entries: &[BaselineEntry]) -> String {
    let mut out = String::from(
        "# pixel-lint baseline: grandfathered findings, one [[finding]] table each.\n\
         # The goal is burn-down; keep this file empty.\n",
    );
    for e in entries {
        out.push_str(&format!(
            "\n[[finding]]\nrule = \"{}\"\nfile = \"{}\"\nline = {}\n",
            e.rule, e.file, e.line
        ));
    }
    out
}

/// Filters `findings`, dropping those matched by a baseline entry.
#[must_use]
pub fn apply(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !baseline
                .iter()
                .any(|b| b.rule == f.rule && b.file == f.file && b.line == f.line)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rule: &str, file: &str, line: u32) -> BaselineEntry {
        BaselineEntry {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line,
        }
    }

    #[test]
    fn round_trips() {
        let entries = vec![
            entry("P001", "crates/a/src/l.rs", 3),
            entry("D002", "crates/b/src/m.rs", 99),
        ];
        assert_eq!(parse(&serialize(&entries)), Ok(entries));
    }

    #[test]
    fn empty_baseline_parses_empty() {
        assert_eq!(parse(&serialize(&[])), Ok(vec![]));
        assert_eq!(parse("# only comments\n\n"), Ok(vec![]));
    }

    #[test]
    fn rejects_unknown_keys_and_loose_fields() {
        assert!(parse("[[finding]]\nseverity = \"high\"\n").is_err());
        assert!(parse("rule = \"P001\"\n").is_err());
        assert!(parse("[[finding]]\nline = \"three\"\n").is_err());
    }

    #[test]
    fn apply_filters_exact_matches_only() {
        let f = |line| Finding {
            file: "crates/a/src/l.rs".to_owned(),
            line,
            rule: "P001",
            message: String::new(),
        };
        let kept = apply(vec![f(3), f(4)], &[entry("P001", "crates/a/src/l.rs", 3)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 4);
    }
}
