//! A lightweight, comment- and string-aware Rust token scanner.
//!
//! `pixel-lint` deliberately avoids a full parser (the build environment
//! has no registry, so `syn` is off the table) and instead lexes each
//! source file into a flat token stream. The scanner understands exactly
//! enough Rust to make token-level rules sound:
//!
//! * line comments, nested block comments and doc comments are stripped
//!   (so an `unwrap()` mentioned in prose never fires a rule), but
//!   `lint:allow(...)` suppression markers inside them are collected;
//! * plain `"..."` string literals become [`TokenKind::Str`] tokens
//!   whose text keeps the surrounding quotes (so they can never collide
//!   with ident/punct matching); raw, byte and byte-raw strings and char
//!   literals are skipped, with lifetimes disambiguated from char
//!   literals;
//! * numbers keep enough shape to know whether they are float literals;
//! * the multi-char operators rules care about (`::`, `==`, `!=`, `->`,
//!   `=>`, `..`, the compound assignments `+=` `-=` `*=` `/=`, ...) are
//!   single tokens.
//!
//! [`Scan::test_spans`] additionally resolves `#[cfg(test)]` items by
//! brace matching, so rules can exempt test code inside library files.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (`1.0`, `1e9`, `2f64`, ...).
    Float,
    /// Punctuation / operator (possibly multi-char, e.g. `::`).
    Punct,
    /// A lifetime such as `'a` (kept distinct so type scans stay simple).
    Lifetime,
    /// A plain `"..."` string literal. The token text **includes** the
    /// surrounding quotes, so a `Str` can never be mistaken for an
    /// identifier or operator by text equality. Raw/byte strings do not
    /// produce tokens.
    Str,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token text (comments/strings never produce tokens).
    pub text: String,
    /// Lexeme class.
    pub kind: TokenKind,
}

/// A `// lint:allow(RULE, ...) reason` marker found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line of the comment carrying the marker.
    pub line: u32,
    /// Rule IDs listed inside the parentheses.
    pub rules: Vec<String>,
    /// Free-text justification following the closing parenthesis.
    pub reason: String,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression markers found in comments.
    pub suppressions: Vec<Suppression>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl Scan {
    /// True if `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts `lint:allow(...)` markers from one comment's text.
fn scan_suppression(text: &str, line: u32, out: &mut Vec<Suppression>) {
    let Some(at) = text.find("lint:allow(") else {
        return;
    };
    let rest = &text[at + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        // Malformed marker: record it with no rules so the meta rule
        // (X001) can reject it.
        out.push(Suppression {
            line,
            rules: Vec::new(),
            reason: String::new(),
        });
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..].trim().to_owned();
    out.push(Suppression {
        line,
        rules,
        reason,
    });
}

/// Scans `src` into tokens, suppressions and test spans.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn scan(src: &str) -> Scan {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |idx: usize| -> char {
        if idx < n {
            chars[idx]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Doc comments are prose: a marker only counts in a plain
            // `//` comment, so documentation may *mention* the syntax.
            if !text.starts_with("///") && !text.starts_with("//!") {
                scan_suppression(&text, line, &mut suppressions);
            }
        } else if c == '/' && at(i + 1) == '*' {
            let start_line = line;
            let start = i;
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(n)].iter().collect();
            if !text.starts_with("/**") && !text.starts_with("/*!") {
                scan_suppression(&text, start_line, &mut suppressions);
            }
        } else if c == '"' {
            let start = i;
            let start_line = line;
            i = skip_string(&chars, i, &mut line);
            tokens.push(Token {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
                kind: TokenKind::Str,
            });
        } else if c == '\'' {
            // Char literal or lifetime.
            if at(i + 1) == '\\' {
                // Escaped char literal: skip to the closing quote.
                i += 2;
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
            } else if at(i + 2) == '\'' {
                // Plain char literal like 'x'.
                i += 3;
            } else {
                // Lifetime: 'ident.
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    line,
                    text: chars[start..i].iter().collect(),
                    kind: TokenKind::Lifetime,
                });
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Raw / byte string prefixes introduce string literals.
            let next = at(i);
            if matches!(text.as_str(), "r" | "b" | "br" | "rb") && (next == '"' || next == '#') {
                if text == "b" && next == '"' {
                    i = skip_string(&chars, i, &mut line);
                } else {
                    i = skip_raw_string(&chars, i, &mut line);
                }
            } else {
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Ident,
                });
            }
        } else if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            if c == '0' && matches!(at(i + 1), 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                if at(i) == '.' && at(i + 1).is_ascii_digit() {
                    float = true;
                    i += 1;
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                if matches!(at(i), 'e' | 'E')
                    && (at(i + 1).is_ascii_digit()
                        || (matches!(at(i + 1), '+' | '-') && at(i + 2).is_ascii_digit()))
                {
                    float = true;
                    i += 1;
                    if matches!(at(i), '+' | '-') {
                        i += 1;
                    }
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Type suffix (u32, f64, ...).
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            if text.ends_with("f32") || text.ends_with("f64") {
                float = true;
            }
            tokens.push(Token {
                line,
                text,
                kind: if float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
            });
        } else {
            // Punctuation; join the two-char operators the rules rely on.
            const TWO: [&str; 16] = [
                "::", "==", "!=", "->", "=>", "..", "&&", "||", "<=", ">=", "<<", ">>", "+=", "-=",
                "*=", "/=",
            ];
            let pair: String = [c, at(i + 1)].iter().collect();
            if TWO.contains(&pair.as_str()) {
                tokens.push(Token {
                    line,
                    text: pair,
                    kind: TokenKind::Punct,
                });
                i += 2;
            } else {
                tokens.push(Token {
                    line,
                    text: c.to_string(),
                    kind: TokenKind::Punct,
                });
                i += 1;
            }
        }
    }

    let test_spans = find_test_spans(&tokens);
    Scan {
        tokens,
        suppressions,
        test_spans,
    }
}

/// Skips a `"..."` string literal starting at the opening quote (or at
/// the `b` prefix's quote), returning the index just past the close.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string literal; `i` points at the first `#` or `"` after
/// the `r`/`br` prefix.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        return i;
    }
    i += 1;
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Finds the inclusive line spans of items annotated `#[cfg(test)]`.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let text = |idx: usize| tokens.get(idx).map_or("", |t| t.text.as_str());
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = text(i) == "#"
            && text(i + 1) == "["
            && text(i + 2) == "cfg"
            && text(i + 3) == "("
            && text(i + 4) == "test"
            && text(i + 5) == ")"
            && text(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while text(j) == "#" && text(j + 1) == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < tokens.len() {
                if text(j) == "[" {
                    depth += 1;
                } else if text(j) == "]" {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan forward to the item body (`{`) or terminator (`;`).
        while j < tokens.len() && text(j) != "{" && text(j) != ";" {
            j += 1;
        }
        if j >= tokens.len() {
            spans.push((start_line, tokens[tokens.len() - 1].line));
            break;
        }
        if text(j) == ";" {
            spans.push((start_line, tokens[j].line));
            i = j + 1;
            continue;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if text(j) == "{" {
                depth += 1;
            } else if text(j) == "}" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end_line = tokens
            .get(j)
            .map_or_else(|| tokens[tokens.len() - 1].line, |t| t.line);
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        // Strings survive as single quoted `Str` tokens; comments (and
        // the unwrap() they mention) vanish entirely.
        let src = "let x = \"unwrap()\"; // unwrap()\n/* unwrap() */ let y = 1;";
        let t = texts(src);
        assert!(!t.contains(&"unwrap".to_owned()), "{t:?}");
        assert_eq!(
            t,
            [
                "let",
                "x",
                "=",
                "\"unwrap()\"",
                ";",
                "let",
                "y",
                "=",
                "1",
                ";"
            ]
        );
        let s = scan(src);
        let lit = s.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(lit.text, "\"unwrap()\"");
        assert_eq!(lit.line, 1);
    }

    #[test]
    fn raw_and_byte_strings_are_skipped() {
        let t = texts("let a = r#\"x.unwrap()\"#; let b = b\"panic!\"; let c = br\"bad\";");
        assert!(!t
            .iter()
            .any(|s| s == "unwrap" || s == "panic" || s == "bad"));
        assert!(t.contains(&"a".to_owned()) && t.contains(&"c".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.contains(&"'a".to_owned()));
        assert!(!t.contains(&"x'".to_owned()));
    }

    #[test]
    fn float_literals_are_classified() {
        let s = scan("a == 1.0; b != 2e9; c == 3; d == 0x1e5; e == 4f64;");
        let kind = |txt: &str| s.tokens.iter().find(|t| t.text == txt).map(|t| t.kind);
        assert_eq!(kind("1.0"), Some(TokenKind::Float));
        assert_eq!(kind("2e9"), Some(TokenKind::Float));
        assert_eq!(kind("3"), Some(TokenKind::Int));
        assert_eq!(kind("0x1e5"), Some(TokenKind::Int));
        assert_eq!(kind("4f64"), Some(TokenKind::Float));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let t = texts("a::b == c != d -> e => f .. g");
        for op in ["::", "==", "!=", "->", "=>", ".."] {
            assert!(t.contains(&op.to_owned()), "{op}");
        }
    }

    #[test]
    fn suppressions_are_collected_with_reasons() {
        let s = scan("x(); // lint:allow(P001, D003) zero is a sentinel\ny();");
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(s.suppressions[0].rules, ["P001", "D003"]);
        assert_eq!(s.suppressions[0].reason, "zero is a sentinel");
        assert_eq!(s.suppressions[0].line, 1);
    }

    #[test]
    fn cfg_test_mod_span_covers_the_body() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn tail() {}";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_test_with_following_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn lib() {}";
        let s = scan(src);
        assert!(s.is_test_line(3));
        assert!(!s.is_test_line(4));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let t = texts("/* outer /* inner */ still comment */ let z = 2;");
        assert_eq!(t, ["let", "z", "=", "2", ";"]);
    }
}
