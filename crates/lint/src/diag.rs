//! Findings, the rule registry, and the human / JSON output formats.

use std::fmt;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule ID (`D001`, `A002`, ...).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable ID.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: [RuleInfo; 26] = [
    RuleInfo {
        id: "D001",
        summary: "no SystemTime / Instant::now outside crates/obs and crates/bench/src/timing.rs",
    },
    RuleInfo {
        id: "D002",
        summary: "no HashMap/HashSet in artifact/report/serve paths (iteration order reaches output); use BTreeMap or a sorted collection",
    },
    RuleInfo {
        id: "D003",
        summary: "no float == / != against float literals outside tests",
    },
    RuleInfo {
        id: "D004",
        summary: "no std::env reads outside the sanctioned sweep/CLI entry points",
    },
    RuleInfo {
        id: "A001",
        summary: "no match on Design outside the crates/core model/ and omac/ backend modules",
    },
    RuleInfo {
        id: "A002",
        summary: "no cross-backend reference (ee.rs must not name oe:: or oo::, etc.)",
    },
    RuleInfo {
        id: "G001",
        summary: "no cycles in the workspace crate dependency graph",
    },
    RuleInfo {
        id: "G002",
        summary: "crate edges must point to a strictly lower layer of the documented layering (units/obs/lint -> photonics/electronics/dnn -> core -> serve -> fleet -> bench)",
    },
    RuleInfo {
        id: "G003",
        summary: "layer-0 leaf crates (pixel-units, pixel-obs, pixel-lint) must not reference any workspace crate",
    },
    RuleInfo {
        id: "G004",
        summary: "no transitive reference between ee/oe/oo backend files through intermediate modules (A002 lifted to the module graph)",
    },
    RuleInfo {
        id: "U001",
        summary: "public fns in core/electronics/photonics with quantity-named params or returns must use pixel-units types, not bare f64",
    },
    RuleInfo {
        id: "O001",
        summary: "metric names passed to pixel_obs::{add,gauge,observe} must be lowercase dot-namespaced (crate.subsystem.metric)",
    },
    RuleInfo {
        id: "P001",
        summary: "no .unwrap() in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "P002",
        summary: "no .expect() in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "P003",
        summary: "no panic! in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "P101",
        summary: "no .unwrap() reachable from an artifact entry point via the workspace call graph (covered by a P001 suppression at the site)",
    },
    RuleInfo {
        id: "P102",
        summary: "no .expect() reachable from an artifact entry point via the workspace call graph (covered by a P002 suppression at the site)",
    },
    RuleInfo {
        id: "P103",
        summary: "no panic! reachable from an artifact entry point via the workspace call graph (covered by a P003 suppression at the site)",
    },
    RuleInfo {
        id: "P104",
        summary: "no arithmetic slice indexing (v[i + 1]) reachable from an artifact entry point; use get(), split_at, or suppress with the bound argument",
    },
    RuleInfo {
        id: "C001",
        summary: "no thread spawns outside the sanctioned parallel modules (pixel_core::sweep, the functional fabric, the serve I/O layer, the lint walk)",
    },
    RuleInfo {
        id: "C002",
        summary: "no static mut anywhere and no interior-mutable statics outside crates/obs and the documented process-wide knobs",
    },
    RuleInfo {
        id: "C003",
        summary: "no compound-assign accumulation of join() results inside thread::scope (completion-order merges are nondeterministic; fold handles in spawn order)",
    },
    RuleInfo {
        id: "C004",
        summary: "no HashMap/HashSet in files reachable from the artifact/report paths via the use graph (D002 lifted to reachability)",
    },
    RuleInfo {
        id: "S001",
        summary: "the implemented rule set and the DESIGN.md catalogue must match exactly, both directions",
    },
    RuleInfo {
        id: "X001",
        summary: "every lint:allow marker must list known rule IDs and carry a reason",
    },
    RuleInfo {
        id: "X002",
        summary: "no stale lint:allow markers: a suppression that suppresses nothing must be removed (checked under --unused-suppressions)",
    },
];

/// True if `id` names a known rule.
#[must_use]
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Renders findings in the human `file:line: RULE: message` format.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("pixel-lint: no findings\n");
    } else {
        out.push_str(&format!("pixel-lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a stable JSON document:
///
/// ```json
/// {"version":1,"total":1,"findings":[
///   {"rule":"P001","file":"crates/x/src/y.rs","line":12,"message":"..."}]}
/// ```
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"version\":1,\"total\":{},\"findings\":[",
        findings.len()
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/x/src/y.rs".to_owned(),
            line: 3,
            rule: "P001",
            message: "say \"no\"".to_owned(),
        }
    }

    #[test]
    fn human_format_is_clickable() {
        let text = render_human(&[sample()]);
        assert!(text.starts_with("crates/x/src/y.rs:3: P001: "));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json(&[sample()]);
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"total\":1"));
    }

    #[test]
    fn rule_ids_are_unique_and_known() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(is_known_rule(r.id));
            assert!(!RULES[..i].iter().any(|p| p.id == r.id), "dup {}", r.id);
        }
        assert!(!is_known_rule("Z999"));
    }
}
