//! Findings, the rule registry, and the human / JSON output formats.

use std::fmt;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule ID (`D001`, `A002`, ...).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable ID.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: [RuleInfo; 12] = [
    RuleInfo {
        id: "D001",
        summary: "no SystemTime / Instant::now outside crates/obs and crates/bench/src/timing.rs",
    },
    RuleInfo {
        id: "D002",
        summary: "no HashMap/HashSet in artifact/report/serve paths (iteration order reaches output); use BTreeMap or a sorted collection",
    },
    RuleInfo {
        id: "D003",
        summary: "no float == / != against float literals outside tests",
    },
    RuleInfo {
        id: "D004",
        summary: "no std::env reads outside the sanctioned sweep/CLI entry points",
    },
    RuleInfo {
        id: "A001",
        summary: "no match on Design outside the crates/core model/ and omac/ backend modules",
    },
    RuleInfo {
        id: "A002",
        summary: "no cross-backend reference (ee.rs must not name oe:: or oo::, etc.)",
    },
    RuleInfo {
        id: "U001",
        summary: "public fns in core/electronics/photonics with quantity-named params or returns must use pixel-units types, not bare f64",
    },
    RuleInfo {
        id: "O001",
        summary: "metric names passed to pixel_obs::{add,gauge,observe} must be lowercase dot-namespaced (crate.subsystem.metric)",
    },
    RuleInfo {
        id: "P001",
        summary: "no .unwrap() in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "P002",
        summary: "no .expect() in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "P003",
        summary: "no panic! in non-test library code without a lint:allow suppression",
    },
    RuleInfo {
        id: "X001",
        summary: "every lint:allow marker must list known rule IDs and carry a reason",
    },
];

/// True if `id` names a known rule.
#[must_use]
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Renders findings in the human `file:line: RULE: message` format.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("pixel-lint: no findings\n");
    } else {
        out.push_str(&format!("pixel-lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a stable JSON document:
///
/// ```json
/// {"version":1,"total":1,"findings":[
///   {"rule":"P001","file":"crates/x/src/y.rs","line":12,"message":"..."}]}
/// ```
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"version\":1,\"total\":{},\"findings\":[",
        findings.len()
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/x/src/y.rs".to_owned(),
            line: 3,
            rule: "P001",
            message: "say \"no\"".to_owned(),
        }
    }

    #[test]
    fn human_format_is_clickable() {
        let text = render_human(&[sample()]);
        assert!(text.starts_with("crates/x/src/y.rs:3: P001: "));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json(&[sample()]);
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"total\":1"));
    }

    #[test]
    fn rule_ids_are_unique_and_known() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(is_known_rule(r.id));
            assert!(!RULES[..i].iter().any(|p| p.id == r.id), "dup {}", r.id);
        }
        assert!(!is_known_rule("Z999"));
    }
}
