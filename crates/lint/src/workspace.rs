//! Whole-workspace analysis: the parallel per-file phase, the
//! structural rule families, central suppression application, and the
//! suppression/spec meta rules (X002, S001).
//!
//! The pipeline is:
//!
//! 1. **per-file, parallel** — lex, parse items, run the lexical rules
//!    ([`crate::rules::raw_findings`]) over contiguous file chunks on
//!    `std::thread::scope` workers; results are concatenated in input
//!    order, so the output is byte-identical for any worker count;
//! 2. **structural, serial** — the dependency graphs and G/C004 rules
//!    ([`crate::graph`]), the call graph and P1xx rules
//!    ([`crate::callgraph`]), and spec drift (S001);
//! 3. **suppressions, central** — every finding is filtered against
//!    its file's `lint:allow` markers (with the P00x→P10x carryover),
//!    and markers that suppressed nothing become X002 findings when
//!    `--unused-suppressions` is on.

use crate::diag::{Finding, RULES};
use crate::graph::{self, ArchGraph, GraphFile};
use crate::lexer::{self, Scan};
use crate::parser::{self, FileItems};
use crate::rules;

/// One workspace source file, read into memory.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// File contents.
    pub text: String,
}

/// The result of a whole-workspace analysis.
pub struct WorkspaceReport {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// The architecture graph (render with
    /// [`crate::graph::render_archgraph`]).
    pub graph: ArchGraph,
}

/// Tuning knobs for [`analyze_files`].
pub struct AnalysisOptions<'a> {
    /// Worker count for the per-file phase (clamped to ≥ 1). The
    /// output is identical for every value.
    pub jobs: usize,
    /// `DESIGN.md` text for the S001 spec-drift check, if available.
    pub design_md: Option<&'a str>,
    /// Emit X002 findings for suppressions that suppress nothing.
    pub unused_suppressions: bool,
}

impl Default for AnalysisOptions<'_> {
    fn default() -> Self {
        Self {
            jobs: 1,
            design_md: None,
            unused_suppressions: false,
        }
    }
}

struct FileAnalysis {
    scan: Scan,
    items: FileItems,
    raw: Vec<Finding>,
}

fn analyze_one(file: &SourceFile) -> FileAnalysis {
    let scan = lexer::scan(&file.text);
    let items = parser::parse(&scan);
    let raw = rules::raw_findings(&file.rel, &scan);
    FileAnalysis { scan, items, raw }
}

/// Phase 1: contiguous chunks over scoped workers, concatenated in
/// spawn order (the `pixel_core::sweep` idiom, reimplemented locally
/// because `pixel-lint` is a layer-0 leaf and depends on nothing).
fn per_file_phase(files: &[SourceFile], jobs: usize) -> Vec<FileAnalysis> {
    let jobs = jobs.clamp(1, files.len().max(1));
    if jobs <= 1 {
        return files.iter().map(analyze_one).collect();
    }
    let chunk = files.len().div_ceil(jobs);
    let mut out: Vec<FileAnalysis> = Vec::with_capacity(files.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(analyze_one).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// S001 — spec drift: every implemented rule ID must appear in
/// DESIGN.md, and every rule-shaped ID DESIGN.md mentions must be
/// implemented. IDs are `[DAUOPXCGS]` + three digits, word-bounded.
fn check_s001(design_md: &str, findings: &mut Vec<Finding>) {
    let mut documented: Vec<(String, u32)> = Vec::new();
    for (lineno, line) in design_md.lines().enumerate() {
        let bytes = line.as_bytes();
        for at in 0..bytes.len() {
            if !b"DAUOPXCGS".contains(&bytes[at]) {
                continue;
            }
            if at + 4 > bytes.len() || !bytes[at + 1..at + 4].iter().all(u8::is_ascii_digit) {
                continue;
            }
            let word = |b: Option<&u8>| b.is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
            let bounded_left = at == 0 || !word(at.checked_sub(1).and_then(|j| bytes.get(j)));
            let bounded_right = !word(bytes.get(at + 4));
            if bounded_left && bounded_right {
                let id = String::from_utf8_lossy(&bytes[at..at + 4]).into_owned();
                #[allow(clippy::cast_possible_truncation)]
                let ln = (lineno + 1) as u32;
                if !documented.iter().any(|(d, _)| *d == id) {
                    documented.push((id, ln));
                }
            }
        }
    }
    for r in RULES {
        if !documented.iter().any(|(d, _)| d == r.id) {
            findings.push(Finding {
                file: "DESIGN.md".to_owned(),
                line: 1,
                rule: "S001",
                message: format!(
                    "rule {} is implemented but missing from the DESIGN.md catalogue",
                    r.id
                ),
            });
        }
    }
    for (id, line) in documented {
        if !RULES.iter().any(|r| r.id == id) {
            findings.push(Finding {
                file: "DESIGN.md".to_owned(),
                line,
                rule: "S001",
                message: format!("DESIGN.md documents rule {id}, which is not implemented"),
            });
        }
    }
}

/// Runs the full pipeline over in-memory sources. `files` must be
/// sorted by `rel` (the walk order guarantees this for disk runs).
#[must_use]
pub fn analyze_files(files: &[SourceFile], opts: &AnalysisOptions<'_>) -> WorkspaceReport {
    let analyses = per_file_phase(files, opts.jobs);

    // Phase 2: structural rules over the assembled workspace.
    let gfiles: Vec<GraphFile<'_>> = files
        .iter()
        .zip(analyses.iter())
        .map(|(f, a)| GraphFile {
            rel: &f.rel,
            items: &a.items,
        })
        .collect();
    let scans: Vec<&Scan> = analyses.iter().map(|a| &a.scan).collect();
    let mut graph = graph::analyze(&gfiles, &scans);
    let cgfiles: Vec<crate::callgraph::CgFile<'_>> = files
        .iter()
        .zip(analyses.iter())
        .map(|(f, a)| crate::callgraph::CgFile {
            rel: &f.rel,
            items: &a.items,
            scan: &a.scan,
        })
        .collect();
    let transitive = crate::callgraph::analyze(&cgfiles, &graph.edges);

    // Gather raw findings per file so suppression usage can be tracked.
    let mut raw: Vec<Finding> = Vec::new();
    for a in &analyses {
        raw.extend(a.raw.iter().cloned());
    }
    raw.extend(graph.findings.iter().cloned());
    raw.extend(transitive);
    if let Some(md) = opts.design_md {
        check_s001(md, &mut raw);
    }
    raw.sort();

    // Phase 3: central suppression application + X002.
    let scan_of = |rel: &str| -> Option<&Scan> {
        files
            .iter()
            .position(|f| f.rel == rel)
            .map(|i| &analyses[i].scan)
    };
    let mut findings: Vec<Finding> = Vec::new();
    for f in &raw {
        let keep = rules::is_unsuppressible(f.rule)
            || scan_of(&f.file).is_none_or(|scan| {
                !scan.suppressions.iter().any(|s| {
                    rules::is_valid_suppression(s)
                        && (s.line == f.line || s.line + 1 == f.line)
                        && s.rules.iter().any(|r| rules::suppression_covers(r, f.rule))
                })
            });
        if keep {
            findings.push(f.clone());
        }
    }
    if opts.unused_suppressions {
        for (file, a) in files.iter().zip(analyses.iter()) {
            for s in &a.scan.suppressions {
                if !rules::is_valid_suppression(s) {
                    continue; // already an X001
                }
                let used = raw.iter().any(|f| {
                    f.file == file.rel
                        && (s.line == f.line || s.line + 1 == f.line)
                        && s.rules.iter().any(|r| rules::suppression_covers(r, f.rule))
                });
                if !used {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: s.line,
                        rule: "X002",
                        message: format!(
                            "lint:allow({}) suppresses nothing; remove the stale marker",
                            s.rules.join(",")
                        ),
                    });
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    // The graph keeps only the findings that survived suppression, so
    // the archgraph verdict lines agree with the deny-mode report: a
    // justified `lint:allow` clears the verdict too.
    graph.findings.retain(|g| findings.iter().any(|f| f == g));
    WorkspaceReport { findings, graph }
}

/// Convenience wrapper for fixture tests: analyze in-memory sources
/// given as `(rel, text)` pairs (sorted internally).
#[must_use]
pub fn analyze_sources(sources: &[(&str, &str)], opts: &AnalysisOptions<'_>) -> WorkspaceReport {
    let mut files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| SourceFile {
            rel: (*rel).to_owned(),
            text: (*text).to_owned(),
        })
        .collect();
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    analyze_files(&files, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_do_not_change_output() {
        let sources = [
            (
                "crates/core/src/helper.rs",
                "pub fn risky() { std::fs::read(\"x\").unwrap(); }\n",
            ),
            ("crates/core/src/lib.rs", "pub mod helper;\n"),
            (
                "crates/bench/src/bin/reproduce.rs",
                "fn main() { pixel_core::helper::risky(); }\n",
            ),
        ];
        let one = analyze_sources(
            &sources,
            &AnalysisOptions {
                jobs: 1,
                ..Default::default()
            },
        );
        let four = analyze_sources(
            &sources,
            &AnalysisOptions {
                jobs: 4,
                ..Default::default()
            },
        );
        assert_eq!(one.findings, four.findings);
        assert_eq!(
            graph::render_archgraph(&one.graph),
            graph::render_archgraph(&four.graph)
        );
    }

    #[test]
    fn suppression_carryover_covers_transitive_twin() {
        let sources = [
            (
                "crates/core/src/helper.rs",
                "pub fn risky() {\n    // lint:allow(P001) demo carryover\n    std::fs::read(\"x\").unwrap();\n}\n",
            ),
            ("crates/core/src/lib.rs", "pub mod helper;\n"),
            (
                "crates/bench/src/bin/reproduce.rs",
                "fn main() { pixel_core::helper::risky(); }\n",
            ),
        ];
        let report = analyze_sources(&sources, &AnalysisOptions::default());
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.rule == "P001" || f.rule == "P101"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn unused_suppression_is_x002() {
        let sources = [(
            "crates/core/src/clean.rs",
            "// lint:allow(P001) nothing here panics anymore\npub fn fine() {}\n",
        )];
        let on = analyze_sources(
            &sources,
            &AnalysisOptions {
                unused_suppressions: true,
                ..Default::default()
            },
        );
        assert!(on.findings.iter().any(|f| f.rule == "X002" && f.line == 1));
        let off = analyze_sources(&sources, &AnalysisOptions::default());
        assert!(!off.findings.iter().any(|f| f.rule == "X002"));
    }

    #[test]
    fn used_suppression_is_not_x002() {
        let sources = [(
            "crates/core/src/busy.rs",
            "pub fn f() {\n    // lint:allow(P003) sentinel panic is load-bearing here\n    panic!(\"x\");\n}\n",
        )];
        let report = analyze_sources(
            &sources,
            &AnalysisOptions {
                unused_suppressions: true,
                ..Default::default()
            },
        );
        assert!(
            !report.findings.iter().any(|f| f.rule == "X002"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn spec_drift_fires_both_directions() {
        let mut raw = Vec::new();
        check_s001(
            "| D001 | stuff |\n| Z123 not-an-id |\n| S999 | ghost |\n",
            &mut raw,
        );
        // Implemented-but-undocumented: every real rule except D001.
        assert!(raw
            .iter()
            .any(|f| f.rule == "S001" && f.message.contains("P101")));
        // Documented-but-unimplemented: S999 (Z123 is not rule-shaped).
        assert!(raw
            .iter()
            .any(|f| f.rule == "S001" && f.message.contains("S999") && f.line == 3));
        assert!(!raw.iter().any(|f| f.message.contains("Z123")));
    }
}
