//! Deterministic discovery of the workspace's `.rs` sources.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Collects every `.rs` file under `root`, as workspace-relative
/// forward-slash paths, sorted for deterministic reports.
///
/// # Errors
///
/// Returns any I/O error encountered while walking the tree.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Converts an absolute source path to the workspace-relative
/// forward-slash form the rules and baseline use.
#[must_use]
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_uses_forward_slashes() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/core/src/lib.rs");
        assert_eq!(relative(root, p), "crates/core/src/lib.rs");
    }

    #[test]
    fn walks_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_sources(root).expect("walk lint crate");
        let rels: Vec<String> = files.iter().map(|p| relative(root, p)).collect();
        assert!(rels.contains(&"src/walk.rs".to_owned()), "{rels:?}");
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "output is sorted");
    }
}
