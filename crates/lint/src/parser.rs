//! A lightweight item parser over the flat token stream.
//!
//! The structural rule families (G-rules over the dependency graph,
//! P1xx transitive panic-path rules, the reachability-lifted C004) need
//! more than per-line tokens but far less than `syn`: which modules a
//! file `use`s, which `fn` items it defines, which calls each body
//! makes, and where the panic-capable expressions sit. This module
//! extracts exactly that, by brace matching over [`crate::lexer::scan`]
//! output — no type information, no macro expansion.
//!
//! Known, deliberate limits (documented in DESIGN.md §14):
//!
//! * names, not items: call sites resolve by function *name* within a
//!   crate and its dependencies, an over-approximation that errs toward
//!   reporting reachability;
//! * macro bodies are scanned as plain token runs (calls inside
//!   `format!` arguments are still seen; macro-*generated* code is not);
//! * closures belong to their enclosing `fn`, so work handed to
//!   `thread::scope` workers stays on the caller's panic path.

use crate::lexer::{Scan, Token, TokenKind};

/// One flattened `use` path (groups expanded, `as` renames dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// 1-based line of the `use` keyword (or path head for inline paths).
    pub line: u32,
    /// Path segments; `crate`/`super`/`self` heads are preserved.
    pub segments: Vec<String>,
}

/// A `mod name;` or `mod name { ... }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// 1-based line of the `mod` keyword.
    pub line: u32,
    /// Declared module name.
    pub name: String,
    /// True for `mod name { ... }` (body in this file).
    pub inline: bool,
}

/// One `fn` item with its body's token extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// True for `pub fn` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// Token index range `[start, end)` of the body including braces;
    /// empty for bodiless trait-method declarations.
    pub body: (usize, usize),
}

/// A call site inside some function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line.
    pub line: u32,
    /// Path segments ending in the callee name (`["report", "render"]`
    /// for `report::render(...)`, `["render"]` for a bare or method
    /// call).
    pub segments: Vec<String>,
    /// Index into [`FileItems::fns`] of the innermost enclosing fn.
    pub caller: usize,
    /// True for `.name(...)` method syntax.
    pub method: bool,
}

/// The lexical class of a panic-capable expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(...)`.
    Expect,
    /// `panic!(...)`.
    Panic,
    /// Slice/array indexing with an arithmetic index expression
    /// (`v[i + 1]`); range slicing and plain-identifier/literal indices
    /// are out of scope to bound noise.
    Index,
}

/// One panic-capable expression inside some function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What can panic here.
    pub kind: PanicKind,
    /// Index into [`FileItems::fns`] of the innermost enclosing fn.
    pub caller: usize,
}

/// Everything the structural rules need from one source file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Flattened `use` paths.
    pub uses: Vec<UsePath>,
    /// `mod` declarations.
    pub mods: Vec<ModDecl>,
    /// `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// Call sites, each attributed to its enclosing fn.
    pub calls: Vec<CallSite>,
    /// Panic-capable expressions, each attributed to its enclosing fn.
    pub panics: Vec<PanicSite>,
}

/// Rust keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "where", "move",
    "mut", "ref",
];

fn text(tokens: &[Token], idx: usize) -> &str {
    tokens.get(idx).map_or("", |t| t.text.as_str())
}

fn owned_text(tokens: &[Token], idx: usize) -> String {
    tokens.get(idx).map_or_else(String::new, |t| t.text.clone())
}

fn line_of(tokens: &[Token], idx: usize) -> u32 {
    tokens.get(idx).map_or(0, |t| t.line)
}

fn is_ident(tokens: &[Token], idx: usize) -> bool {
    tokens.get(idx).is_some_and(|t| t.kind == TokenKind::Ident)
}

/// Expands one `use` statement starting at the token after `use`,
/// returning the flattened paths and the index just past the `;`.
fn expand_use(tokens: &[Token], start: usize, line: u32, out: &mut Vec<UsePath>) -> usize {
    // Find the statement extent first: up to the matching `;` at zero
    // brace depth (use statements contain `{ }` groups but no bodies).
    let mut end = start;
    let mut depth = 0i32;
    while end < tokens.len() {
        match text(tokens, end) {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    expand_group(tokens, start, end, &[], line, out);
    end + 1
}

/// Recursively expands `prefix::{a, b::c, d::{e, f}}` within
/// `[start, end)`.
fn expand_group(
    tokens: &[Token],
    start: usize,
    end: usize,
    prefix: &[String],
    line: u32,
    out: &mut Vec<UsePath>,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = start;
    while i < end {
        let t = text(tokens, i);
        if t == "{" {
            // Split the group body on top-level commas; recurse.
            let mut depth = 1i32;
            let mut item_start = i + 1;
            let mut j = i + 1;
            while j < end && depth > 0 {
                match text(tokens, j) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 && item_start < j {
                            expand_group(tokens, item_start, j, &segs, line, out);
                        }
                    }
                    "," if depth == 1 => {
                        if item_start < j {
                            expand_group(tokens, item_start, j, &segs, line, out);
                        }
                        item_start = j + 1;
                    }
                    _ => {}
                }
                j += 1;
            }
            return; // a group terminates this path
        }
        if t == "as" {
            // `path as alias`: the path is complete; skip the alias.
            break;
        }
        if t == "*" {
            segs.push("*".to_owned());
            break;
        }
        if is_ident(tokens, i) {
            segs.push(t.to_owned());
        } else if t != "::" {
            break; // something unexpected: keep what we have
        }
        i += 1;
    }
    if segs.len() > prefix.len() {
        out.push(UsePath {
            line,
            segments: segs,
        });
    }
}

/// True if the token at `idx` opens an expression-position index
/// bracket (preceded by an identifier, `)`, or `]`).
fn is_index_bracket(tokens: &[Token], idx: usize) -> bool {
    let Some(prev) = idx.checked_sub(1).and_then(|j| tokens.get(j)) else {
        return false;
    };
    prev.kind == TokenKind::Ident && !NON_CALL_KEYWORDS.contains(&prev.text.as_str())
        || prev.text == ")"
        || prev.text == "]"
}

/// True if the bracketed index expression `[open+1, close)` is
/// arithmetic: a top-level `+` or `-` with no `..` range.
fn is_arithmetic_index(tokens: &[Token], open: usize, close: usize) -> bool {
    let mut depth = 0i32;
    let mut arithmetic = false;
    for idx in open + 1..close {
        match text(tokens, idx) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ".." if depth == 0 => return false, // range slicing is out of scope
            "+" | "-" if depth == 0 => arithmetic = true,
            _ => {}
        }
    }
    arithmetic
}

/// Walks back from the callee name at `name_idx`, collecting `a::b::`
/// path qualifiers into `segments` (callee name last).
fn call_segments(tokens: &[Token], name_idx: usize) -> Vec<String> {
    let mut rev = vec![owned_text(tokens, name_idx)];
    let mut i = name_idx;
    while i >= 2 && text(tokens, i - 1) == "::" && is_ident(tokens, i - 2) {
        rev.push(owned_text(tokens, i - 2));
        i -= 2;
    }
    rev.reverse();
    rev
}

/// Parses one scanned file into its items.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn parse(scan: &Scan) -> FileItems {
    let tokens = &scan.tokens;
    let n = tokens.len();
    let mut items = FileItems::default();

    // Pass 1: `use` statements, `mod` declarations, `fn` items.
    let mut i = 0usize;
    while i < n {
        let t = text(tokens, i);
        if t == "use" && is_ident(tokens, i) {
            let line = tokens[i].line;
            i = expand_use(tokens, i + 1, line, &mut items.uses);
            continue;
        }
        if t == "mod" && is_ident(tokens, i) && is_ident(tokens, i + 1) {
            let name = owned_text(tokens, i + 1);
            let after = text(tokens, i + 2);
            if after == ";" || after == "{" {
                items.mods.push(ModDecl {
                    line: tokens[i].line,
                    name,
                    inline: after == "{",
                });
            }
            i += 2;
            continue;
        }
        if t == "fn" && is_ident(tokens, i) && is_ident(tokens, i + 1) {
            let name = owned_text(tokens, i + 1);
            let line = line_of(tokens, i + 1);
            // Visibility: walk back over fn qualifiers to a `pub` that
            // is not followed by a restriction parenthesis.
            let mut back = i;
            while back > 0 && matches!(text(tokens, back - 1), "const" | "async" | "unsafe") {
                back -= 1;
            }
            let is_pub = back > 0 && text(tokens, back - 1) == "pub" && text(tokens, back) != "(";
            // Parameter list: first `(` after the name (generics with
            // `Fn(...)` bounds are a known approximation).
            let mut j = i + 2;
            while j < n && text(tokens, j) != "(" {
                j += 1;
            }
            let mut depth = 0i32;
            while j < n {
                match text(tokens, j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Body: next `{` or terminating `;` (trait declaration).
            let mut k = j + 1;
            while k < n && text(tokens, k) != "{" && text(tokens, k) != ";" {
                k += 1;
            }
            let body = if k < n && text(tokens, k) == "{" {
                let open = k;
                let mut bdepth = 0i32;
                while k < n {
                    match text(tokens, k) {
                        "{" => bdepth += 1,
                        "}" => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                (open, (k + 1).min(n))
            } else {
                (0, 0)
            };
            items.fns.push(FnItem {
                name,
                line,
                is_pub,
                body,
            });
            // Continue scanning *inside* the body too: nested fns are
            // found on the same pass (the enclosing-fn attribution below
            // picks the innermost).
            i += 2;
            continue;
        }
        i += 1;
    }

    // Pass 2: call and panic sites, attributed to the innermost fn.
    let enclosing = |idx: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_len = usize::MAX;
        for (f, item) in items.fns.iter().enumerate() {
            let (a, b) = item.body;
            if a < b && idx >= a && idx < b && b - a < best_len {
                best = Some(f);
                best_len = b - a;
            }
        }
        best
    };
    let mut i = 0usize;
    while i < n {
        let t = &tokens[i];
        // Attribute groups `#[...]` are not expressions: skip them.
        if t.text == "#" && text(tokens, i + 1) == "[" {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < n {
                match text(tokens, j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        let Some(caller) = enclosing(i) else {
            i += 1;
            continue;
        };
        if t.kind == TokenKind::Ident {
            if t.text == "panic" && text(tokens, i + 1) == "!" {
                items.panics.push(PanicSite {
                    line: t.line,
                    kind: PanicKind::Panic,
                    caller,
                });
            } else if text(tokens, i + 1) == "(" && i > 0 && text(tokens, i - 1) == "." {
                let kind = match t.text.as_str() {
                    "unwrap" => Some(PanicKind::Unwrap),
                    "expect" => Some(PanicKind::Expect),
                    _ => None,
                };
                if let Some(kind) = kind {
                    items.panics.push(PanicSite {
                        line: t.line,
                        kind,
                        caller,
                    });
                }
                items.calls.push(CallSite {
                    line: t.line,
                    segments: vec![t.text.clone()],
                    caller,
                    method: true,
                });
            } else if text(tokens, i + 1) == "("
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && text(tokens, i.wrapping_sub(1)) != "fn"
            {
                items.calls.push(CallSite {
                    line: t.line,
                    segments: call_segments(tokens, i),
                    caller,
                    method: false,
                });
            }
        } else if t.text == "[" && is_index_bracket(tokens, i) {
            let mut depth = 0i32;
            let mut j = i;
            while j < n {
                match text(tokens, j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_arithmetic_index(tokens, i, j) {
                items.panics.push(PanicSite {
                    line: t.line,
                    kind: PanicKind::Index,
                    caller,
                });
            }
        }
        i += 1;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse_src(src: &str) -> FileItems {
        parse(&scan(src))
    }

    #[test]
    fn expands_use_groups() {
        let p = parse_src("use std::collections::{HashMap, HashSet};\nuse pixel_core::model::EvalContext;\nuse super::*;\n");
        let paths: Vec<String> = p.uses.iter().map(|u| u.segments.join("::")).collect();
        assert_eq!(
            paths,
            [
                "std::collections::HashMap",
                "std::collections::HashSet",
                "pixel_core::model::EvalContext",
                "super::*",
            ]
        );
    }

    #[test]
    fn expands_nested_groups_and_renames() {
        let p = parse_src("use pixel_core::{sweep, model::{ee, oe as other}};\n");
        let paths: Vec<String> = p.uses.iter().map(|u| u.segments.join("::")).collect();
        assert_eq!(
            paths,
            [
                "pixel_core::sweep",
                "pixel_core::model::ee",
                "pixel_core::model::oe",
            ]
        );
    }

    #[test]
    fn finds_fn_items_with_visibility_and_bodies() {
        let p = parse_src(
            "pub fn outer() { inner(); }\nfn inner() {}\npub(crate) fn hidden() {}\npub const fn k() -> u32 { 1 }\n",
        );
        let names: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            [
                ("outer", true),
                ("inner", false),
                ("hidden", false),
                ("k", true)
            ]
        );
    }

    #[test]
    fn attributes_calls_to_the_innermost_fn() {
        let p = parse_src("fn a() { helper(); fn b() { nested_call(); } tail(); }\n");
        let by_caller: Vec<(String, &str)> = p
            .calls
            .iter()
            .map(|c| (c.segments.join("::"), p.fns[c.caller].name.as_str()))
            .collect();
        assert!(by_caller.contains(&("helper".to_owned(), "a")));
        assert!(by_caller.contains(&("nested_call".to_owned(), "b")));
        assert!(by_caller.contains(&("tail".to_owned(), "a")));
    }

    #[test]
    fn collects_path_qualified_and_method_calls() {
        let p = parse_src(
            "fn f() { report::render(1); x.finish(); pixel_core::sweep::default_jobs(); }\n",
        );
        let paths: Vec<String> = p.calls.iter().map(|c| c.segments.join("::")).collect();
        assert!(paths.contains(&"report::render".to_owned()));
        assert!(paths.contains(&"finish".to_owned()));
        assert!(paths.contains(&"pixel_core::sweep::default_jobs".to_owned()));
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn() {
        let p = parse_src("fn f() { run(|| { helper() }); }\n");
        for c in &p.calls {
            assert_eq!(p.fns[c.caller].name, "f");
        }
    }

    #[test]
    fn panic_sites_are_classified() {
        let p = parse_src(
            "fn f(x: Option<u32>, v: &[u32], i: usize) -> u32 {\n    let a = v[i + 1];\n    let b = v[i];\n    let c = &v[..i - 1];\n    x.expect(\"set\") + a + b + c.len() as u32\n}\nfn g() { panic!(\"boom\") }\n",
        );
        let kinds: Vec<PanicKind> = p.panics.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [PanicKind::Index, PanicKind::Expect, PanicKind::Panic]
        );
        assert_eq!(p.panics[0].line, 2);
    }

    #[test]
    fn mod_decls_are_recorded() {
        let p = parse_src("mod sub;\npub mod inline_mod { fn f() {} }\n");
        assert_eq!(p.mods.len(), 2);
        assert_eq!(p.mods[0].name, "sub");
        assert!(!p.mods[0].inline);
        assert!(p.mods[1].inline);
    }

    #[test]
    fn attributes_are_not_index_brackets() {
        let p =
            parse_src("fn f() {\n    #[allow(clippy::x)]\n    let v = [1 + 2];\n    drop(v);\n}\n");
        assert!(p.panics.is_empty(), "{:?}", p.panics);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse_src("fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "f");
    }
}
