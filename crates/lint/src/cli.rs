//! Command-line driver shared by the `pixel-lint` binary and the
//! `reproduce lint` subcommand.

use crate::baseline::{self, BaselineEntry};
use crate::diag::{render_human, render_json, Finding, RULES};
use crate::walk;
use crate::workspace;
use std::fs;
use std::path::{Path, PathBuf};

/// Output format of a lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: RULE: message` lines plus a summary.
    Human,
    /// A single machine-readable JSON document.
    Json,
}

/// Parsed command-line options.
#[derive(Debug)]
pub struct Options {
    /// Workspace root (auto-discovered when `None`).
    pub root: Option<PathBuf>,
    /// Baseline path (`<root>/lint-baseline.toml` when `None`).
    pub baseline: Option<PathBuf>,
    /// Output format.
    pub format: Format,
    /// Deny mode: ignore the baseline, every finding fails.
    pub deny: bool,
    /// Rewrite the baseline file with the current findings and exit 0.
    pub write_baseline: bool,
    /// Worker count for the per-file phase (default: host parallelism,
    /// capped at 8). Output is identical for every value.
    pub jobs: Option<usize>,
    /// Flag `lint:allow` markers that no longer suppress anything.
    pub unused_suppressions: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            root: None,
            baseline: None,
            format: Format::Human,
            deny: false,
            write_baseline: false,
            jobs: None,
            unused_suppressions: false,
        }
    }
}

const USAGE: &str = "\
pixel-lint: workspace-specific invariants for the PIXEL reproduction

USAGE: pixel-lint [OPTIONS]
  --root <dir>       workspace root (default: discovered from cwd)
  --baseline <file>  baseline file (default: <root>/lint-baseline.toml)
  --format <fmt>     human | json (default: human)
  -D, --deny         ignore the baseline: every finding fails
  --write-baseline   record current findings as the new baseline
  --jobs <n>         analysis worker count (output is jobs-invariant)
  --unused-suppressions
                     flag lint:allow markers that suppress nothing (X002)
  --list-rules       print the rule table and exit

EXIT: 0 clean, 1 findings, 2 usage or I/O error
";

/// Parses CLI arguments.
///
/// # Errors
///
/// Returns a usage message on unknown flags or missing values.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a file path")?,
                ));
            }
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format must be human|json, got {other:?}")),
                };
            }
            "-D" | "--deny" => opts.deny = true,
            "--write-baseline" => opts.write_baseline = true,
            "--jobs" => {
                let n = it
                    .next()
                    .ok_or("--jobs requires a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--unused-suppressions" => opts.unused_suppressions = true,
            "--list-rules" | "--help" | "-h" => {
                return Err(String::new()); // caller prints usage/rules
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Renders the rule table for `--list-rules`.
#[must_use]
pub fn rule_table() -> String {
    let mut out = String::new();
    for r in RULES {
        out.push_str(&format!("  {:<5} {}\n", r.id, r.summary));
    }
    out
}

/// Walks up from `start` to the directory holding the workspace-level
/// `Cargo.toml` (the one declaring `[workspace]`).
#[must_use]
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Default worker count: host parallelism, capped at 8 (the per-file
/// phase saturates quickly on this workspace's file count).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Reads every `.rs` source under `root` into memory, sorted by
/// relative path.
///
/// # Errors
///
/// Returns a description of any I/O failure.
pub fn load_sources(root: &Path) -> Result<Vec<workspace::SourceFile>, String> {
    let files = walk::rust_sources(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = walk::relative(root, &path);
        let text = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
        out.push(workspace::SourceFile { rel, text });
    }
    Ok(out)
}

/// Runs the full workspace analysis (lexical + structural rules) under
/// `root`.
///
/// # Errors
///
/// Returns a description of any I/O failure.
pub fn analyze_root_report(
    root: &Path,
    jobs: usize,
    unused_suppressions: bool,
) -> Result<workspace::WorkspaceReport, String> {
    let sources = load_sources(root)?;
    let design_md = fs::read_to_string(root.join("DESIGN.md")).ok();
    let opts = workspace::AnalysisOptions {
        jobs,
        design_md: design_md.as_deref(),
        unused_suppressions,
    };
    Ok(workspace::analyze_files(&sources, &opts))
}

/// Analyzes every `.rs` source under `root` with default options
/// (structural rules on, X002 off).
///
/// # Errors
///
/// Returns a description of any I/O failure.
pub fn analyze_root(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(analyze_root_report(root, default_jobs(), false)?.findings)
}

/// Renders the `reproduce archgraph` artifact for the workspace at
/// `root`. Byte-identical for every `jobs` value.
///
/// # Errors
///
/// Returns a description of any I/O failure.
pub fn archgraph(root: &Path, jobs: usize) -> Result<String, String> {
    let report = analyze_root_report(root, jobs, false)?;
    Ok(crate::graph::render_archgraph(&report.graph))
}

/// Runs a full lint pass; returns the process exit code.
#[must_use]
#[allow(clippy::missing_panics_doc)] // no panic paths: errors map to exit 2
pub fn run(args: &[String]) -> u8 {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}\nRULES:\n{}", rule_table());
            return 0;
        }
        Err(msg) => {
            eprintln!("pixel-lint: {msg}\n{USAGE}");
            return 2;
        }
    };
    let Some(root) = opts
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d)))
    else {
        eprintln!("pixel-lint: cannot find a workspace root (try --root)");
        return 2;
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let jobs = opts.jobs.unwrap_or_else(default_jobs);
    let findings = match analyze_root_report(&root, jobs, opts.unused_suppressions) {
        Ok(report) => report.findings,
        Err(msg) => {
            eprintln!("pixel-lint: {msg}");
            return 2;
        }
    };

    if opts.write_baseline {
        let entries: Vec<BaselineEntry> = findings
            .iter()
            .map(|f| BaselineEntry {
                rule: f.rule.to_owned(),
                file: f.file.clone(),
                line: f.line,
            })
            .collect();
        if let Err(e) = fs::write(&baseline_path, baseline::serialize(&entries)) {
            eprintln!("pixel-lint: writing {baseline_path:?}: {e}");
            return 2;
        }
        println!(
            "pixel-lint: wrote {} entr(ies) to {}",
            entries.len(),
            baseline_path.display()
        );
        return 0;
    }

    let grandfathered = if opts.deny {
        Vec::new()
    } else {
        match fs::read_to_string(&baseline_path) {
            Ok(text) => match baseline::parse(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("pixel-lint: {e}");
                    return 2;
                }
            },
            Err(_) => Vec::new(), // no baseline file = empty baseline
        }
    };
    let remaining = baseline::apply(findings, &grandfathered);

    match opts.format {
        Format::Human => print!("{}", render_human(&remaining)),
        Format::Json => print!("{}", render_json(&remaining)),
    }
    u8::from(!remaining.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_flags() {
        let o = parse_args(&args(&["--deny", "--format", "json", "--root", "/ws"])).unwrap();
        assert!(o.deny);
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.root.as_deref(), Some(Path::new("/ws")));
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--format", "xml"])).is_err());
    }

    #[test]
    fn parses_jobs_and_unused_suppressions() {
        let o = parse_args(&args(&["--jobs", "4", "--unused-suppressions"])).unwrap();
        assert_eq!(o.jobs, Some(4));
        assert!(o.unused_suppressions);
        let o = parse_args(&args(&["--deny"])).unwrap();
        assert_eq!(o.jobs, None);
        assert!(!o.unused_suppressions);
        assert!(parse_args(&args(&["--jobs", "0"])).is_err());
        assert!(parse_args(&args(&["--jobs", "many"])).is_err());
        assert!(parse_args(&args(&["--jobs"])).is_err());
    }

    #[test]
    fn discovers_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = discover_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").exists());
    }

    #[test]
    fn rule_table_lists_every_rule() {
        let table = rule_table();
        for r in RULES {
            assert!(table.contains(r.id), "{} missing", r.id);
        }
    }
}
