//! Property tests for the serving simulator: queue invariants under
//! randomized traffic, the histogram percentile estimator against a
//! sorted reference, exact histogram merging (merge-of-two must equal
//! the histogram of the concatenated stream), the latency decomposition
//! recombining bitwise into the aggregate, and bitwise determinism of
//! the full saturation sweep across worker counts and repeated runs.

use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::model::EvalContext;
use pixel_core::sweep::SweepEngine;
use pixel_serve::arrivals::{Request, Workload};
use pixel_serve::percentile::{exact_percentile, LatencyHistogram, DEFAULT_SUB_BITS};
use pixel_serve::queue::{AdmissionQueue, ShedPolicy};
use pixel_serve::saturation::{render_curves, saturation_sweep, SweepSpec};
use pixel_serve::sim::{simulate, simulate_with_flightrec, ServeConfig};
use pixel_serve::LatencyBreakdown;
use pixel_units::rng::SplitMix64;
use pixel_units::{Time, VirtInstant};

/// Replays a random offer/take trace against the queue and checks the
/// conservation and ordering invariants a bounded FIFO must keep.
fn check_queue_invariants(seed: u64, shed: ShedPolicy) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let capacity = 1 + (rng.next_u64() % 32) as usize;
    let mut queue = AdmissionQueue::new(capacity, shed);
    let mut clock = VirtInstant::EPOCH;
    let mut offered: u64 = 0;
    let mut shed_seen: u64 = 0;
    let mut taken: Vec<Request> = Vec::new();
    for id in 0..4000u64 {
        clock += Time::new(rng.next_f64());
        if rng.next_f64() < 0.7 {
            offered += 1;
            let request = Request {
                id,
                tenant: 0,
                network: (rng.next_u64() % 3) as usize,
                arrival: clock,
            };
            if queue.offer(clock, request).is_some() {
                shed_seen += 1;
            }
        } else {
            let max = 1 + (rng.next_u64() % 8) as usize;
            let batch = queue.take_batch(clock, max);
            assert!(batch.len() <= max);
            assert!(
                batch.windows(2).all(|w| w[0].network == w[1].network),
                "mixed-network batch"
            );
            taken.extend(batch);
        }
        assert!(queue.depth() <= capacity, "depth exceeds capacity");
        assert!(queue.max_depth() <= capacity);
    }
    // Conservation: every offered request was admitted or shed, and
    // every admitted one is either taken or still waiting.
    assert_eq!(queue.shed_count(), shed_seen);
    match shed {
        // DropNewest never admits the victim.
        ShedPolicy::DropNewest => assert_eq!(queue.admitted(), offered - shed_seen),
        // DropOldest admits everything and evicts waiting requests.
        ShedPolicy::DropOldest => assert_eq!(queue.admitted(), offered),
    }
    let in_flight = queue.depth() as u64;
    let evicted = match shed {
        ShedPolicy::DropNewest => 0,
        ShedPolicy::DropOldest => shed_seen,
    };
    assert_eq!(
        taken.len() as u64 + in_flight + evicted,
        queue.admitted(),
        "admitted = taken + waiting + evicted"
    );
    // FIFO: ids leave in strictly increasing admission order except
    // across network boundaries — but within one network they must be
    // strictly increasing.
    for net in 0..3 {
        let ids: Vec<u64> = taken
            .iter()
            .filter(|r| r.network == net)
            .map(|r| r.id)
            .collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "FIFO broken for network {net}"
        );
    }
}

#[test]
fn queue_invariants_hold_under_random_traffic() {
    for seed in 0..8 {
        check_queue_invariants(seed, ShedPolicy::DropNewest);
        check_queue_invariants(seed ^ 0xdead_beef, ShedPolicy::DropOldest);
    }
}

#[test]
fn histogram_percentiles_track_the_sorted_reference() {
    // Relative bucket error is bounded by 2^-sub_bits; allow twice that
    // plus one unit for the integer midpoint rounding.
    let tolerance = 2.0 / f64::from(1u32 << DEFAULT_SUB_BITS);
    for seed in 0..6u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut hist = LatencyHistogram::new(DEFAULT_SUB_BITS);
        let mut values: Vec<u64> = Vec::new();
        for _ in 0..5000 {
            // Log-uniform values spanning nanoseconds to ~1000 s.
            let magnitude = (rng.next_f64() * 40.0).exp();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let v = magnitude as u64;
            values.push(v);
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&values, q);
            let approx = hist.percentile(q);
            #[allow(clippy::cast_precision_loss)]
            let bound = exact as f64 * tolerance + 1.0;
            #[allow(clippy::cast_precision_loss)]
            let err = (approx as f64 - exact as f64).abs();
            assert!(
                err <= bound,
                "seed {seed} q {q}: approx {approx} vs exact {exact} (err {err}, bound {bound})"
            );
        }
    }
}

/// Below `2^(sub_bits+1)` every bucket is one unit wide, so the
/// histogram's nearest-rank selection must agree with the sorted
/// reference *exactly* — any off-by-one in the rank computation shows
/// up undamped by quantization. Boundary quantiles `q = k/n` sit right
/// on the `ceil` edge of the rank rule and are the cases most likely
/// to break.
#[test]
fn percentile_rank_selection_is_exact_in_unit_buckets() {
    let limit = 1u64 << (DEFAULT_SUB_BITS + 1);
    for seed in 0..4u64 {
        let mut rng = SplitMix64::seed_from_u64(0x9e7c ^ seed);
        // Power-of-two counts make q = k/n representable exactly in
        // binary floating point, so ceil(q·n) lands on the boundary
        // with no rounding slack.
        let n = 1usize << (4 + seed % 4);
        let mut hist = LatencyHistogram::new(DEFAULT_SUB_BITS);
        let mut values: Vec<u64> = (0..n).map(|_| rng.next_u64() % limit).collect();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        #[allow(clippy::cast_precision_loss)]
        for k in 0..=n {
            let q = k as f64 / n as f64;
            let expected = exact_percentile(&values, q);
            assert_eq!(
                hist.percentile(q),
                expected,
                "seed {seed} n {n} boundary q {q}"
            );
            // Nudged just past the boundary the rank must step to the
            // next order statistic (same one for the k = n endpoint).
            let nudged = (q + 1e-9).min(1.0);
            assert_eq!(
                hist.percentile(nudged),
                exact_percentile(&values, nudged),
                "seed {seed} n {n} nudged q {nudged}"
            );
        }
    }
}

/// Degenerate and endpoint cases: a single sample answers that sample
/// at every quantile, and q = 0 / q = 1 pin to the recorded extremes
/// even when the distribution spans coarse buckets.
#[test]
fn percentile_endpoints_pin_to_recorded_extremes() {
    for value in [0u64, 1, 255, 256, 12_345, 1 << 40, u64::MAX] {
        let mut hist = LatencyHistogram::new(DEFAULT_SUB_BITS);
        hist.record(value);
        for q in [0.0, 0.25, 0.5, 0.75, 0.999, 1.0] {
            assert_eq!(hist.percentile(q), value, "single sample {value} q {q}");
        }
    }
    let mut rng = SplitMix64::seed_from_u64(0xf1f0);
    let mut hist = LatencyHistogram::new(DEFAULT_SUB_BITS);
    let values: Vec<u64> = (0..500)
        .map(|_| rng.next_u64() >> (rng.next_u64() % 48))
        .collect();
    for &v in &values {
        hist.record(v);
    }
    assert_eq!(hist.percentile(0.0), *values.iter().min().unwrap());
    assert_eq!(hist.percentile(1.0), *values.iter().max().unwrap());
}

/// Log-uniform values spanning ~12 orders of magnitude, the way
/// latencies do (nanoseconds to minutes).
fn latency_like_values(rng: &mut SplitMix64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let magnitude = rng.next_u64() % 41;
            rng.next_u64() % (1u64 << magnitude).max(1)
        })
        .collect()
}

fn histogram_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// The rank grid the merge properties are checked against.
const RANKS: [f64; 11] = [
    0.0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.999, 1.0,
];

#[test]
fn merge_of_two_equals_histogram_of_concatenation() {
    for seed in [1u64, 7, 42, 2026, 0xdead_beef] {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let a = latency_like_values(&mut rng, 500);
        let b = latency_like_values(&mut rng, 313);
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();

        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let whole = histogram_of(&concat);

        // Structural equality pins every bucket plus count/min/max/sum.
        assert_eq!(merged, whole, "seed {seed}");
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.sum(), whole.sum());
        // Every rank query answers identically.
        for q in RANKS {
            assert_eq!(
                merged.percentile(q),
                whole.percentile(q),
                "seed {seed} rank {q}"
            );
        }
    }
}

#[test]
fn merge_with_empty_is_identity_in_both_directions() {
    let mut rng = SplitMix64::seed_from_u64(99);
    let full = histogram_of(&latency_like_values(&mut rng, 64));

    let mut left = full.clone();
    left.merge(&LatencyHistogram::default());
    assert_eq!(left, full);

    let mut right = LatencyHistogram::default();
    right.merge(&full);
    assert_eq!(right, full);
}

#[test]
fn self_merge_doubles_multiplicities_without_moving_ranks() {
    let mut rng = SplitMix64::seed_from_u64(5);
    let sample = latency_like_values(&mut rng, 128);
    let one = histogram_of(&sample);
    let doubled: Vec<u64> = sample.iter().chain(&sample).copied().collect();
    let mut merged = one.clone();
    merged.merge(&one);
    assert_eq!(merged, histogram_of(&doubled));
    for q in RANKS {
        assert_eq!(merged.percentile(q), one.percentile(q), "rank {q}");
    }
}

#[test]
#[should_panic(expected = "sub_bits")]
fn merge_rejects_mismatched_resolutions() {
    let mut a = LatencyHistogram::new(7);
    a.record(1);
    let mut b = LatencyHistogram::new(8);
    b.record(1);
    a.merge(&b);
}

/// The acceptance bar for the latency decomposition: merging the
/// per-tenant (and per-network) breakdowns of an overloaded run must
/// reconstruct the aggregate breakdown *bitwise*, and wait + service
/// must sum to the sojourn exactly in integer nanoseconds.
#[test]
fn per_population_breakdowns_recombine_into_the_aggregate() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let accel = AcceleratorConfig::new(Design::Oo, 4, 16);
    // Offered well past the OO fabric's capacity so the run sheds:
    // shed requests must not leak into any latency histogram.
    let config = ServeConfig::new(accel, 20.0, 600, 7);
    let (report, flight) = simulate_with_flightrec(&workload, &ctx, &config, 256);
    assert!(report.dropped > 0, "want an overloaded run");
    assert!(report.completed > 0);

    let mut from_tenants = LatencyBreakdown::default();
    for b in &flight.tenants {
        from_tenants.merge(b);
    }
    assert_eq!(from_tenants, flight.overall, "tenant merge diverged");

    let mut from_networks = LatencyBreakdown::default();
    for b in &flight.networks {
        from_networks.merge(b);
    }
    assert_eq!(from_networks, flight.overall, "network merge diverged");

    // Count and integer-sum identities of the decomposition.
    assert_eq!(flight.overall.count(), report.completed);
    assert_eq!(
        flight.overall.wait.sum() + flight.overall.service.sum(),
        flight.overall.sojourn.sum(),
    );
    // The recombined rank queries agree with the aggregate everywhere.
    for q in RANKS {
        assert_eq!(
            from_tenants.sojourn.percentile(q),
            flight.overall.sojourn.percentile(q),
            "rank {q}"
        );
    }
}

#[test]
fn simulation_conserves_requests_across_policies_and_loads() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    for design in Design::ALL {
        for rate in [0.3, 1.5, 40.0] {
            for shed in [ShedPolicy::DropNewest, ShedPolicy::DropOldest] {
                let mut config =
                    ServeConfig::new(AcceleratorConfig::new(design, 4, 16), rate, 500, 11);
                config.shed = shed;
                let report = simulate(&workload, &ctx, &config);
                assert_eq!(
                    report.completed + report.dropped,
                    report.arrivals,
                    "{design} rate {rate} {}",
                    shed.label()
                );
                let tenant_total: u64 = report.tenants.iter().map(|t| t.completed).sum();
                assert_eq!(tenant_total, report.completed, "tenant accounting");
            }
        }
    }
}

/// The acceptance bar for the serve artifact: the rendered sweep is
/// bitwise identical at `--jobs 1` and `--jobs 4`, and across repeated
/// runs at the same seed.
#[test]
fn saturation_sweep_is_bitwise_identical_across_worker_counts() {
    let workload = Workload::paper_mix();
    let mut spec = SweepSpec::artifact(99);
    spec.loads = vec![0.5, 0.95, 1.15];
    spec.requests = 800;
    let render = |jobs: usize| {
        let engine = SweepEngine::new(jobs);
        render_curves(
            &workload,
            &spec,
            &saturation_sweep(&engine, &workload, &spec),
        )
    };
    let serial = render(1);
    let parallel = render(4);
    let repeat = render(4);
    assert_eq!(serial, parallel, "worker count changed the artifact");
    assert_eq!(parallel, repeat, "repeated run changed the artifact");

    let mut other = spec.clone();
    other.seed = 100;
    let engine = SweepEngine::new(2);
    let reseeded = render_curves(
        &workload,
        &other,
        &saturation_sweep(&engine, &workload, &other),
    );
    assert_ne!(serial, reseeded, "seed must matter");
}
