//! Replay property of the extracted policy state machines: the
//! [`ServeMachine`] is pure over the instants it is fed, so replaying
//! the same logical event sequence through the simulator's virtual
//! clock and through a fake monotonic clock (same gaps, arbitrary
//! epoch) must produce identical decisions — admission verdicts, shed
//! victims, deadline fires, batch boundaries, and batch compositions.
//! This is the invariant that lets `pixel-served` reuse the
//! simulator's policy code unchanged.

use pixel_serve::{
    Admission, BatchPolicy, Clock, Decision, MachineConfig, Request, ServeMachine, ShedPolicy,
    VirtualClock,
};
use pixel_units::rng::SplitMix64;
use pixel_units::{Energy, Time, VirtInstant};

/// One logical arrival: the gap after the previous arrival plus the
/// request's routing coordinates.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    gap: f64,
    tenant: usize,
    network: usize,
}

/// A seeded arrival sequence with bursty gaps, so queues build, the
/// drop-oldest shedder fires, and deadline holds both expire and get
/// pre-empted by arrivals.
fn arrival_sequence(seed: u64, n: usize) -> Vec<Arrival> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let gap = if rng.next_f64() < 0.75 {
                0.002 * rng.next_f64()
            } else {
                0.05 + 0.1 * rng.next_f64()
            };
            #[allow(clippy::cast_possible_truncation)]
            Arrival {
                gap,
                tenant: rng.range_u64(0, 2) as usize,
                network: rng.range_u64(0, 2) as usize,
            }
        })
        .collect()
}

fn config() -> MachineConfig {
    MachineConfig {
        policy: BatchPolicy::Dynamic {
            max_size: 4,
            deadline: Time::from_micros(20_000.0),
        },
        queue_capacity: 8,
        shed: ShedPolicy::DropOldest,
        window_width: Time::new(0.05),
        window_max_bins: 64,
        event_capacity: 0,
        tenants: 3,
        networks: 3,
    }
}

/// The synthetic batch cost both replays share: deterministic in
/// (network, batch size) only.
fn batch_cost(network: usize, batch: usize) -> Time {
    #[allow(clippy::cast_precision_loss)]
    Time::new(0.02 + 0.01 * (network as f64 + batch as f64))
}

/// Drives one full replay of `arrivals` against a fresh machine whose
/// instants come from `clock` (whatever epoch it currently sits at),
/// recording every decision the machine makes. Timestamps are
/// deliberately excluded from the trace: only the *decisions* must be
/// epoch-invariant.
fn replay(clock: &VirtualClock, arrivals: &[Arrival]) -> Vec<String> {
    let epoch = clock.now();
    let mut machine = ServeMachine::new(&config());
    let mut trace = Vec::new();

    let mut schedule = Vec::with_capacity(arrivals.len());
    let mut t = 0.0;
    for arrival in arrivals {
        t += arrival.gap;
        schedule.push((epoch + Time::new(t), arrival.tenant, arrival.network));
    }
    let mut next = 0usize;
    let mut in_flight: Option<VirtInstant> = None;

    let admit_next = |clock: &VirtualClock, machine: &mut ServeMachine, next: &mut usize| {
        let (at, tenant, network) = schedule[*next];
        clock.set(at);
        let request = Request {
            id: *next as u64,
            tenant,
            network,
            arrival: clock.now(),
        };
        *next += 1;
        match machine.admit(request) {
            Admission::Admitted => format!("admit {} -> admitted", request.id),
            Admission::ShedArrival => format!("admit {} -> shed-arrival", request.id),
            Admission::ShedOldest { victim } => {
                format!("admit {} -> shed-oldest victim={}", request.id, victim.id)
            }
        }
    };

    loop {
        if let Some(completes_at) = in_flight {
            // Service runs open-loop, the daemon's flavor: the driver
            // measures the completion instant itself.
            if next < schedule.len() && schedule[next].0 < completes_at {
                let entry = admit_next(clock, &mut machine, &mut next);
                trace.push(entry);
            } else {
                clock.set(completes_at);
                let served = machine.complete_measured(clock.now(), Energy::ZERO);
                let ids: Vec<String> = served.iter().map(|r| r.id.to_string()).collect();
                trace.push(format!("complete [{}]", ids.join(",")));
                in_flight = None;
            }
            continue;
        }
        match machine.decide() {
            Decision::Dispatch => {
                let open = machine.dispatch_open();
                in_flight = Some(machine.now() + batch_cost(open.network, open.size));
                trace.push(format!(
                    "dispatch batch={} network={} size={}",
                    open.batch, open.network, open.size
                ));
            }
            Decision::HoldUntil(expiry) => {
                if next < schedule.len() && schedule[next].0 < expiry {
                    let entry = admit_next(clock, &mut machine, &mut next);
                    trace.push(entry);
                } else {
                    clock.set(expiry);
                    machine.advance_to(clock.now());
                    trace.push("deadline".to_owned());
                }
            }
            Decision::Hold => {
                if next < schedule.len() {
                    let entry = admit_next(clock, &mut machine, &mut next);
                    trace.push(entry);
                } else {
                    assert!(machine.queue_is_empty(), "hold must mean an empty queue");
                    break;
                }
            }
        }
    }
    trace
}

/// The epochs a "fake monotonic clock" might start at: a process that
/// has been up for a while reads arbitrary large offsets.
const FAKE_EPOCHS: [f64; 3] = [1.0, 73_321.25, 4_194_304.0];

#[test]
fn replay_decisions_are_epoch_invariant() {
    for seed in [1u64, 7, 2026] {
        let arrivals = arrival_sequence(seed, 300);

        let sim_clock = VirtualClock::new();
        let sim_trace = replay(&sim_clock, &arrivals);

        for epoch in FAKE_EPOCHS {
            let fake_clock = VirtualClock::new();
            fake_clock.set(VirtInstant::from_secs(epoch));
            let fake_trace = replay(&fake_clock, &arrivals);
            assert_eq!(
                sim_trace, fake_trace,
                "seed {seed}: decisions diverged at epoch {epoch}"
            );
        }

        // The property must not hold vacuously: the sequence has to
        // exercise every decision class.
        let has = |needle: &str| sim_trace.iter().any(|e| e.contains(needle));
        assert!(has("shed-oldest"), "seed {seed}: no shed decisions");
        assert!(has("deadline"), "seed {seed}: no deadline fires");
        assert!(has("size=4"), "seed {seed}: no full batches");
        assert!(has("size=1"), "seed {seed}: no singleton batches");
    }
}

#[test]
fn replay_conserves_requests() {
    let arrivals = arrival_sequence(11, 200);
    let clock = VirtualClock::new();
    let trace = replay(&clock, &arrivals);
    let shed = trace.iter().filter(|e| e.contains("shed-")).count();
    let completed: usize = trace
        .iter()
        .filter(|e| e.starts_with("complete"))
        .map(|e| e.matches(',').count() + 1)
        .sum();
    assert_eq!(shed + completed, arrivals.len());
}
