//! Bounded FIFO admission queue with configurable load shedding.
//!
//! The queue is the serving system's only buffer: arrivals that cannot
//! be admitted are shed according to [`ShedPolicy`], and dispatches pop
//! strictly from the front, so admitted requests complete in admission
//! order (the FIFO invariant the property tests pin). Depth is tracked
//! both as a maximum and as a time-weighted mean, the queueing-theory
//! quantity comparable to `L` in Little's law.

use crate::arrivals::Request;
use pixel_units::VirtInstant;
use std::collections::VecDeque;

/// What to do with an arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the arriving request (classic bounded queue).
    DropNewest,
    /// Admit the arrival and evict the oldest waiting request.
    DropOldest,
}

impl ShedPolicy {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::DropNewest => "drop-newest",
            Self::DropOldest => "drop-oldest",
        }
    }
}

/// Bounded FIFO queue with shedding and depth accounting.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    shed: ShedPolicy,
    items: VecDeque<Request>,
    admitted: u64,
    shed_count: u64,
    max_depth: usize,
    depth_integral: f64,
    last_event: VirtInstant,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, shed: ShedPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            shed,
            items: VecDeque::with_capacity(capacity.min(4096)),
            admitted: 0,
            shed_count: 0,
            max_depth: 0,
            depth_integral: 0.0,
            last_event: VirtInstant::EPOCH,
        }
    }

    /// Advances the time-weighted depth integral to `now`.
    fn advance(&mut self, now: VirtInstant) {
        #[allow(clippy::cast_precision_loss)]
        let depth = self.items.len() as f64;
        self.depth_integral += depth * (now - self.last_event).value();
        self.last_event = now;
    }

    /// Offers an arrival at time `now`. Returns the request that was
    /// shed, if any — the offered one under [`ShedPolicy::DropNewest`],
    /// the oldest waiting one under [`ShedPolicy::DropOldest`].
    pub fn offer(&mut self, now: VirtInstant, request: Request) -> Option<Request> {
        self.advance(now);
        let shed = if self.items.len() == self.capacity {
            self.shed_count += 1;
            match self.shed {
                ShedPolicy::DropNewest => return Some(request),
                ShedPolicy::DropOldest => self.items.pop_front(),
            }
        } else {
            None
        };
        self.admitted += 1;
        self.items.push_back(request);
        self.max_depth = self.max_depth.max(self.items.len());
        shed
    }

    /// Pops the longest prefix of same-network requests, up to `max`
    /// (head-of-line batching: strict FIFO across the whole queue).
    pub fn take_batch(&mut self, now: VirtInstant, max: usize) -> Vec<Request> {
        self.advance(now);
        let mut batch = Vec::new();
        let Some(head) = self.items.front() else {
            return batch;
        };
        let network = head.network;
        while batch.len() < max {
            if self
                .items
                .front()
                .is_none_or(|next| next.network != network)
            {
                break;
            }
            if let Some(next) = self.items.pop_front() {
                batch.push(next);
            }
        }
        batch
    }

    /// Length of the head-of-line same-network prefix, capped at `max`.
    #[must_use]
    pub fn prefix_len(&self, max: usize) -> usize {
        let Some(head) = self.items.front() else {
            return 0;
        };
        self.items
            .iter()
            .take(max)
            .take_while(|r| r.network == head.network)
            .count()
    }

    /// Arrival instant of the oldest waiting request.
    #[must_use]
    pub fn head_arrival(&self) -> Option<VirtInstant> {
        self.items.front().map(|r| r.arrival)
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// True when no requests wait.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the next offer will shed.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Requests admitted so far (shed `DropOldest` victims included —
    /// they were admitted before eviction).
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far (either rejected or evicted).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed_count
    }

    /// Deepest the queue has been.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Time-weighted mean depth over `[epoch, now]`.
    #[must_use]
    pub fn mean_depth(&mut self, now: VirtInstant) -> f64 {
        self.advance(now);
        if now > VirtInstant::EPOCH {
            self.depth_integral / now.as_secs()
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: f64) -> VirtInstant {
        VirtInstant::from_secs(t)
    }

    fn req(id: u64, network: usize, arrival: f64) -> Request {
        Request {
            id,
            tenant: 0,
            network,
            arrival: at(arrival),
        }
    }

    #[test]
    fn fifo_order_and_same_network_prefix() {
        let mut q = AdmissionQueue::new(8, ShedPolicy::DropNewest);
        for (id, net) in [(0u64, 1usize), (1, 1), (2, 2), (3, 1)] {
            assert!(q.offer(at(0.0), req(id, net, 0.0)).is_none());
        }
        assert_eq!(q.prefix_len(8), 2);
        let batch = q.take_batch(at(1.0), 8);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        // Network 2 now heads the queue; network-1 request 3 waits behind.
        let batch = q.take_batch(at(2.0), 8);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
        let batch = q.take_batch(at(3.0), 8);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [3]);
        assert!(q.is_empty());
    }

    #[test]
    fn drop_newest_rejects_the_arrival() {
        let mut q = AdmissionQueue::new(2, ShedPolicy::DropNewest);
        assert!(q.offer(at(0.0), req(0, 0, 0.0)).is_none());
        assert!(q.offer(at(0.0), req(1, 0, 0.0)).is_none());
        let shed = q.offer(at(0.0), req(2, 0, 0.0)).unwrap();
        assert_eq!(shed.id, 2);
        assert_eq!(q.admitted(), 2);
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drop_oldest_evicts_the_head() {
        let mut q = AdmissionQueue::new(2, ShedPolicy::DropOldest);
        for id in 0..2 {
            assert!(q.offer(at(0.0), req(id, 0, 0.0)).is_none());
        }
        let shed = q.offer(at(0.0), req(2, 0, 0.0)).unwrap();
        assert_eq!(shed.id, 0);
        assert_eq!(q.admitted(), 3);
        assert_eq!(q.shed_count(), 1);
        assert_eq!(
            q.take_batch(at(1.0), 4).iter().map(|r| r.id).sum::<u64>(),
            3
        );
    }

    #[test]
    fn time_weighted_depth() {
        let mut q = AdmissionQueue::new(4, ShedPolicy::DropNewest);
        let _ = q.offer(at(0.0), req(0, 0, 0.0));
        let _ = q.offer(at(1.0), req(1, 0, 1.0));
        let _ = q.take_batch(at(2.0), 4);
        // Depth 1 over [0,1), 2 over [1,2), 0 over [2,4): integral 3.
        assert!((q.mean_depth(at(4.0)) - 0.75).abs() < 1e-12);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = AdmissionQueue::new(0, ShedPolicy::DropNewest);
    }
}
