//! Batching policies: when an idle server should form a batch.
//!
//! Dispatch decisions are only taken when the accelerator is idle —
//! while it is busy, arrivals accumulate in the admission queue and are
//! swept up by the next decision ("natural batching"). The policy then
//! chooses between dispatching the head-of-line same-network prefix now
//! or holding for more requests:
//!
//! * [`BatchPolicy::Fixed`] waits until a full same-network batch is
//!   available (classic fixed-size batching; the simulator flushes a
//!   final partial batch once the arrival stream ends).
//! * [`BatchPolicy::Dynamic`] dispatches as soon as the batch is full
//!   **or** the oldest waiting request has aged past the deadline. A
//!   zero deadline degenerates to greedy dispatch-on-idle, which keeps
//!   latency monotone in offered load.

use crate::queue::AdmissionQueue;
use pixel_units::{Time, VirtInstant};

/// A batch-formation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Dispatch only full `size`-request same-network batches.
    Fixed {
        /// Exact batch size.
        size: usize,
    },
    /// Dispatch up to `max_size` requests when full, or when the head
    /// request has waited `deadline`.
    Dynamic {
        /// Largest batch to form.
        max_size: usize,
        /// Longest the head-of-line request may wait before dispatch.
        deadline: Time,
    },
}

/// What an idle server should do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Form and dispatch a batch now.
    Dispatch,
    /// Hold until this instant, unless an arrival or a full batch
    /// triggers an earlier decision.
    HoldUntil(VirtInstant),
    /// Hold until the next arrival (no timer pending).
    Hold,
}

impl BatchPolicy {
    /// The largest batch this policy ever dispatches.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        match *self {
            Self::Fixed { size } => size,
            Self::Dynamic { max_size, .. } => max_size,
        }
    }

    /// Display label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Self::Fixed { size } => format!("fixed({size})"),
            Self::Dynamic { max_size, deadline } => {
                format!("dynamic(max {max_size}, {:.0} us)", deadline.as_micros())
            }
        }
    }

    /// Decides what an idle server facing `queue` should do at `now`.
    #[must_use]
    pub fn decide(&self, queue: &AdmissionQueue, now: VirtInstant) -> Decision {
        let Some(head_arrival) = queue.head_arrival() else {
            return Decision::Hold;
        };
        match *self {
            Self::Fixed { size } => {
                // A full queue can never grow the head-of-line prefix, so
                // holding would idle the server while shedding arrivals;
                // relieve pressure with a partial batch instead.
                if queue.prefix_len(size) >= size || queue.is_full() {
                    Decision::Dispatch
                } else {
                    Decision::Hold
                }
            }
            Self::Dynamic { max_size, deadline } => {
                if queue.prefix_len(max_size) >= max_size {
                    return Decision::Dispatch;
                }
                let expiry = head_arrival + deadline;
                if now >= expiry {
                    Decision::Dispatch
                } else {
                    Decision::HoldUntil(expiry)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Request;
    use crate::queue::ShedPolicy;

    fn at(t: f64) -> VirtInstant {
        VirtInstant::from_secs(t)
    }

    fn queue_with(nets: &[usize]) -> AdmissionQueue {
        let mut q = AdmissionQueue::new(64, ShedPolicy::DropNewest);
        for (id, &net) in nets.iter().enumerate() {
            let _ = q.offer(
                VirtInstant::EPOCH,
                Request {
                    id: id as u64,
                    tenant: 0,
                    network: net,
                    arrival: VirtInstant::EPOCH,
                },
            );
        }
        q
    }

    #[test]
    fn fixed_waits_for_a_full_same_network_batch() {
        let policy = BatchPolicy::Fixed { size: 3 };
        assert_eq!(policy.decide(&queue_with(&[1, 1]), at(5.0)), Decision::Hold);
        assert_eq!(
            policy.decide(&queue_with(&[1, 1, 1, 2]), at(5.0)),
            Decision::Dispatch
        );
        // A network boundary caps the prefix below the batch size.
        assert_eq!(
            policy.decide(&queue_with(&[1, 2, 1, 1]), at(5.0)),
            Decision::Hold
        );
    }

    #[test]
    fn dynamic_dispatches_on_full_batch_or_deadline() {
        let policy = BatchPolicy::Dynamic {
            max_size: 2,
            deadline: Time::from_micros(100.0),
        };
        assert_eq!(
            policy.decide(&queue_with(&[1, 1]), at(0.0)),
            Decision::Dispatch
        );
        match policy.decide(&queue_with(&[1]), at(0.0)) {
            Decision::HoldUntil(t) => assert!((t.as_secs() - 100e-6).abs() < 1e-12),
            other => panic!("expected HoldUntil, got {other:?}"),
        }
        assert_eq!(
            policy.decide(&queue_with(&[1]), at(1e-4)),
            Decision::Dispatch
        );
    }

    #[test]
    fn zero_deadline_is_greedy() {
        let policy = BatchPolicy::Dynamic {
            max_size: 8,
            deadline: Time::ZERO,
        };
        assert_eq!(
            policy.decide(&queue_with(&[4]), at(0.0)),
            Decision::Dispatch
        );
        assert_eq!(
            policy.decide(&queue_with(&[]), at(0.0)),
            Decision::Hold,
            "empty queue holds"
        );
    }

    #[test]
    fn labels_and_max_batch() {
        assert_eq!(BatchPolicy::Fixed { size: 8 }.label(), "fixed(8)");
        assert_eq!(BatchPolicy::Fixed { size: 8 }.max_batch(), 8);
        let dynamic = BatchPolicy::Dynamic {
            max_size: 4,
            deadline: Time::from_micros(250.0),
        };
        assert_eq!(dynamic.label(), "dynamic(max 4, 250 us)");
        assert_eq!(dynamic.max_batch(), 4);
    }
}
