//! The `pixel-served` wire protocol: length-prefixed flat-JSON frames.
//!
//! Every frame on the loopback socket is a 4-byte big-endian length
//! followed by exactly that many bytes of one flat JSON object (the
//! same single-level object shape `pixel-obs` JSONL uses, parsed with
//! [`pixel_obs::parse_flat_object`] — no nested values, no escapes
//! needed for the numeric/identifier payloads here). Schemas:
//!
//! * `pixel.serve.request` — client → daemon: one inference request
//!   (`id`, `tenant`, `network`).
//! * `pixel.serve.ctrl` — client → daemon: control (`op":"drain"` ends
//!   intake; the daemon flushes its queue and answers with stats).
//! * `pixel.serve.response` — daemon → client: one request's outcome
//!   (`served` with its `batch` and nanosecond wait/service split, or
//!   `shed`).
//! * `pixel.serve.stats` — daemon → client: the end-of-run summary.

use std::io::{Read, Write};

/// Upper bound on a sane frame (1 MiB): anything larger is a protocol
/// error, not a real message.
pub const MAX_FRAME: usize = 1 << 20;

/// One inference request on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-assigned request id (echoed back in the response).
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Network index.
    pub network: usize,
}

impl WireRequest {
    /// The request as a flat JSON frame body.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"pixel.serve.request\",\"id\":{},\"tenant\":{},\"network\":{}}}",
            self.id, self.tenant, self.network
        )
    }
}

/// What happened to one request, reported back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireResponse {
    /// The client-assigned request id.
    pub id: u64,
    /// Batch sequence number (`served` only; 0 for shed requests).
    pub batch: u64,
    /// True when the request was served, false when it was shed.
    pub served: bool,
    /// Queue wait \[ns\] on the daemon clock (`served` only).
    pub wait_ns: u64,
    /// Service time \[ns\] on the daemon clock (`served` only).
    pub service_ns: u64,
}

impl WireResponse {
    /// The response as a flat JSON frame body.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"pixel.serve.response\",\"id\":{},\"outcome\":\"{}\",\"batch\":{},\"wait_ns\":{},\"service_ns\":{}}}",
            self.id,
            if self.served { "served" } else { "shed" },
            self.batch,
            self.wait_ns,
            self.service_ns
        )
    }
}

/// A client → daemon frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// One inference request.
    Request(WireRequest),
    /// End of intake: flush, answer stats, shut the connection down.
    Drain,
}

/// Parses one client frame body. `None` on anything malformed — the
/// daemon drops such frames rather than crashing.
#[must_use]
pub fn parse_client_frame(body: &str) -> Option<ClientFrame> {
    let fields = pixel_obs::parse_flat_object(body)?;
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    match get("schema")? {
        "pixel.serve.request" => Some(ClientFrame::Request(WireRequest {
            id: get("id")?.parse().ok()?,
            tenant: get("tenant")?.parse().ok()?,
            network: get("network")?.parse().ok()?,
        })),
        "pixel.serve.ctrl" if get("op") == Some("drain") => Some(ClientFrame::Drain),
        _ => None,
    }
}

/// Parses one daemon → client response body (`None` for stats or
/// malformed frames).
#[must_use]
pub fn parse_response(body: &str) -> Option<WireResponse> {
    let fields = pixel_obs::parse_flat_object(body)?;
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    if get("schema")? != "pixel.serve.response" {
        return None;
    }
    Some(WireResponse {
        id: get("id")?.parse().ok()?,
        batch: get("batch")?.parse().ok()?,
        served: get("outcome")? == "served",
        wait_ns: get("wait_ns")?.parse().ok()?,
        service_ns: get("service_ns")?.parse().ok()?,
    })
}

/// The drain control frame body.
#[must_use]
pub fn drain_frame() -> String {
    "{\"schema\":\"pixel.serve.ctrl\",\"op\":\"drain\"}".to_owned()
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(writer: &mut impl Write, body: &str) -> std::io::Result<()> {
    let bytes = body.as_bytes();
    assert!(bytes.len() <= MAX_FRAME, "oversized frame");
    #[allow(clippy::cast_possible_truncation)]
    let len = (bytes.len() as u32).to_be_bytes();
    writer.write_all(&len)?;
    writer.write_all(bytes)
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates I/O errors; an oversized or non-UTF-8 frame is reported
/// as [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match reader.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        let request = WireRequest {
            id: 7,
            tenant: 1,
            network: 4,
        };
        write_frame(&mut buf, &request.to_json()).unwrap();
        write_frame(&mut buf, &drain_frame()).unwrap();
        let mut cursor = &buf[..];
        let first = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            parse_client_frame(&first),
            Some(ClientFrame::Request(request))
        );
        let second = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(parse_client_frame(&second), Some(ClientFrame::Drain));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn responses_roundtrip() {
        let response = WireResponse {
            id: 9,
            batch: 3,
            served: true,
            wait_ns: 1_000,
            service_ns: 2_000,
        };
        assert_eq!(parse_response(&response.to_json()), Some(response));
        let shed = WireResponse {
            id: 2,
            batch: 0,
            served: false,
            wait_ns: 0,
            service_ns: 0,
        };
        assert_eq!(parse_response(&shed.to_json()), Some(shed));
        assert_eq!(parse_response(&drain_frame()), None);
    }

    #[test]
    fn malformed_frames_parse_to_none() {
        assert_eq!(parse_client_frame("not json"), None);
        assert_eq!(
            parse_client_frame("{\"schema\":\"pixel.serve.ctrl\",\"op\":\"x\"}"),
            None
        );
        assert_eq!(
            parse_client_frame(
                "{\"schema\":\"pixel.serve.request\",\"id\":-1,\"tenant\":0,\"network\":0}"
            ),
            None
        );
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &oversized[..]).is_err());
    }
}
